//! Long-lived worker pool fronting an [`Engine`] for single-job submissions.
//!
//! [`Engine::adapt_batch`] is shaped for the CLI: hand it a whole directory
//! of jobs, get a `Vec` back, workers live for one batch. A server cannot
//! work that way — requests arrive one at a time, must be answerable with
//! *backpressure* when the machine is saturated, and completions must flow
//! back to whichever connection is waiting. [`EnginePool`] is that adapter:
//!
//! * a **bounded** submission queue ([`EnginePool::try_submit`]) that never
//!   blocks the caller — a full queue is reported as
//!   [`SubmitError::QueueFull`] so the admission layer can shed load
//!   (HTTP 429) instead of queueing unboundedly,
//! * long-lived workers calling [`Engine::adapt_one_with`], so the cache,
//!   metrics, and tracer of the shared engine serve every submission,
//! * per-task completion callbacks (invoked on the worker thread) instead
//!   of an ordered result vector,
//! * [`EnginePool::drain`]: close the queue, finish every task already
//!   accepted, and join the workers — the heart of graceful shutdown.

use crate::{AdaptJob, AdaptReport, Engine, JobPolicy};
use crossbeam::channel::{bounded, Sender, TrySendError};
use qca_hw::HardwareModel;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Completion callback invoked (on a worker thread) with the finished report.
pub type Completion = Box<dyn FnOnce(AdaptReport) + Send + 'static>;

/// A queued unit of work: runs on a worker thread with the shared engine.
type Task = Box<dyn FnOnce(&Engine) + Send + 'static>;

/// Why [`EnginePool::try_submit`] declined a job.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; try again later (HTTP 429).
    QueueFull,
    /// [`EnginePool::drain`] has closed the queue; no new work is accepted.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is full"),
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Bounded-queue worker pool over a shared [`Engine`]. See the module docs.
pub struct EnginePool {
    engine: Arc<Engine>,
    tx: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
    depth: Arc<AtomicUsize>,
}

impl fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnginePool")
            .field("workers", &self.workers.len())
            .field("capacity", &self.capacity)
            .field("queued", &self.queued())
            .field("draining", &self.tx.is_none())
            .finish()
    }
}

impl EnginePool {
    /// Starts `workers` threads (at least one) servicing a queue that holds
    /// at most `queue_capacity` (at least one) not-yet-started jobs.
    pub fn new(engine: Arc<Engine>, workers: usize, queue_capacity: usize) -> EnginePool {
        let capacity = queue_capacity.max(1);
        let (tx, rx) = bounded::<Task>(capacity);
        let depth = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let engine = engine.clone();
                let depth = depth.clone();
                std::thread::Builder::new()
                    .name(format!("qca-pool-{i}"))
                    .spawn(move || {
                        // `recv` errors only once every sender is gone *and*
                        // the queue is empty, so drain() naturally finishes
                        // accepted work before workers exit.
                        while let Ok(task) = rx.recv() {
                            depth.fetch_sub(1, Ordering::Relaxed);
                            task(&engine);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        EnginePool {
            engine,
            tx: Some(tx),
            workers: handles,
            capacity,
            depth,
        }
    }

    /// The shared engine behind the pool (cache, metrics, tracer).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Capacity of the submission queue (jobs accepted but not yet started).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting in the queue (accepted, not yet started).
    pub fn queued(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Submits one job without blocking. On success, `done` will be called
    /// exactly once, on a worker thread, with the finished report. On
    /// [`SubmitError`], `done` is dropped uninvoked and nothing was queued.
    pub fn try_submit(
        &self,
        hw: Arc<HardwareModel>,
        job: AdaptJob,
        policy: JobPolicy,
        done: impl FnOnce(AdaptReport) + Send + 'static,
    ) -> Result<(), SubmitError> {
        self.try_submit_task(move |engine| {
            done(engine.adapt_one_with(&hw, &job, policy));
        })
    }

    /// Submits a raw closure to run on a worker thread with the shared
    /// engine, under the same admission control as [`try_submit`]. This is
    /// the hook for callers that need per-task setup around the solve —
    /// e.g. `qca-serve` enters a request-scoped trace sink before calling
    /// [`Engine::adapt_one_with`], so the engine's spans land in that
    /// request's buffer.
    ///
    /// [`try_submit`]: EnginePool::try_submit
    pub fn try_submit_task(
        &self,
        task: impl FnOnce(&Engine) + Send + 'static,
    ) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::ShuttingDown)?;
        // Count before sending so `queued()` can never under-report a job a
        // worker has not yet picked up.
        self.depth.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(Box::new(task)) {
            Ok(()) => Ok(()),
            Err(err) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                match err {
                    TrySendError::Full(_) => Err(SubmitError::QueueFull),
                    TrySendError::Disconnected(_) => Err(SubmitError::ShuttingDown),
                }
            }
        }
    }

    /// Stops accepting new work, finishes every job already accepted, and
    /// joins the workers. Idempotent; also runs on drop.
    pub fn drain(&mut self) {
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use qca_circuit::{Circuit, Gate};
    use qca_hw::{spin_qubit_model, GateTimes};
    use std::sync::mpsc;

    fn job() -> AdaptJob {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        AdaptJob::new(c)
    }

    #[test]
    fn pool_runs_jobs_and_calls_completions() {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let pool = EnginePool::new(engine, 2, 8);
        let hw = Arc::new(spin_qubit_model(GateTimes::D0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            pool.try_submit(hw.clone(), job(), JobPolicy::default(), move |report| {
                tx.send(report).unwrap();
            })
            .unwrap();
        }
        for _ in 0..4 {
            let report = rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("completion");
            assert!(hw.supports_circuit(&report.circuit));
        }
    }

    #[test]
    fn full_queue_is_reported_not_blocked() {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let pool = EnginePool::new(engine, 1, 1);
        let hw = Arc::new(spin_qubit_model(GateTimes::D0));
        // Stall the single worker so follow-up submissions pile up: the
        // first job's completion blocks until we release it.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        pool.try_submit(hw.clone(), job(), JobPolicy::default(), move |_| {
            let _ = release_rx.recv();
        })
        .unwrap();
        // Fill the queue (capacity 1), then observe QueueFull without
        // blocking. The worker may briefly still be picking up the first
        // task, so allow one extra accepted submission before the Full.
        let mut accepted = 0;
        let mut full = false;
        for _ in 0..3 {
            match pool.try_submit(hw.clone(), job(), JobPolicy::default(), |_| {}) {
                Ok(()) => accepted += 1,
                Err(SubmitError::QueueFull) => {
                    full = true;
                    break;
                }
                Err(other) => panic!("unexpected: {other}"),
            }
        }
        assert!(full, "queue never reported full (accepted {accepted})");
        release_tx.send(()).unwrap();
    }

    #[test]
    fn drain_finishes_accepted_work_then_rejects() {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let mut pool = EnginePool::new(engine, 1, 4);
        let hw = Arc::new(spin_qubit_model(GateTimes::D0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            let tx = tx.clone();
            pool.try_submit(hw.clone(), job(), JobPolicy::default(), move |report| {
                tx.send(report.status).unwrap();
            })
            .unwrap();
        }
        pool.drain();
        // Every accepted job completed before drain returned.
        assert_eq!(rx.try_iter().count(), 3);
        assert_eq!(
            pool.try_submit(hw, job(), JobPolicy::default(), |_| {}),
            Err(SubmitError::ShuttingDown)
        );
    }
}
