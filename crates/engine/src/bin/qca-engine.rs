//! `qca-engine` — batch-adapt a directory of OpenQASM circuits in parallel.
//!
//! ```text
//! qca-engine [OPTIONS] <QASM_DIR>
//!
//! Options:
//!   --workers N          worker threads (default: one per CPU)
//!   --objective NAME     fidelity | idle | combined   (default: fidelity)
//!   --times COL          d0 | d1                       (default: d0)
//!   --coupling TOPO      line | ring | star | starmon5 | all  (default:
//!                        none — the paper's all-to-all assumption); sized
//!                        per job from the circuit's qubit count (starmon5
//!                        is fixed at 5 qubits)
//!   --budget N           per-job total SAT conflict cap
//!   --timeout-ms N       per-job wall-clock deadline (nondeterministic)
//!   --cache-capacity N   cached adaptations (default: 256)
//!   --repeat N           submit the batch N times (shows cache hits)
//!   --out-dir DIR        write adapted circuits as QASM into DIR
//!   --metrics-out FILE   write the metrics JSON to FILE (default: stdout)
//!   --trace FILE         stream the span/event trace as JSONL into FILE
//!   --trace-report       print a per-phase time breakdown and span tree
//!   --verify             certify every solve and audit every report with
//!                        the independent qca-verify checker
//!   --lint               run the qca-lint preflight before each solve and
//!                        reject statically infeasible jobs
//!   --deny-warnings      like --lint, but escalate warnings to errors
//!   --portfolio N        race N diverse solver configs on spare workers
//!                        when a job escalates (2..=4; default: off)
//!   --recalibrate        after the batch, re-check every cached optimum
//!                        against the (optionally perturbed) fidelity table
//!   --perturb F          scale all gate infidelities by F for the
//!                        recalibration pass (default: 1.0, i.e. unchanged)
//! ```
//!
//! With `--coupling`, each adapted job line gains a `routed=N` marker
//! counting the SWAP-insertion substitutions the solver chose.
//!
//! Prints one line per job (`file status cache objective wall`) and the
//! engine metrics as JSON. With `--trace-report` alone the trace is kept in
//! memory; combined with `--trace FILE` the report is rebuilt by re-parsing
//! the JSONL file, so the written trace is validated in the same run.
//! With `--verify`, each job line gains an audit verdict and the process
//! exits 1 when any audit failed. With `--lint`/`--deny-warnings`, each job
//! line gains a lint summary (`lint=ok`, `lint=N warn`, or `lint=rejected`)
//! and the process exits 1 when any job was rejected by preflight.
//!
//! A file that cannot be read (missing, unreadable, non-UTF-8) or fails to
//! parse does **not** abort the batch: it is listed as a per-job `error`
//! line, the remaining circuits are adapted normally, and the process exits
//! 1 at the end.

use qca_adapt::{AdaptOptions, Objective};
use qca_circuit::qasm;
use qca_engine::{AdaptJob, Engine, EngineConfig};
use qca_hw::{spin_qubit_model, CouplingMap, GateTimes};
use qca_trace::{jsonl, report, JsonlSink, MemorySink, Tracer};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    dir: PathBuf,
    workers: usize,
    objective: Objective,
    times: GateTimes,
    coupling: Option<CouplingKind>,
    budget: Option<u64>,
    timeout_ms: Option<u64>,
    cache_capacity: usize,
    repeat: usize,
    out_dir: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace: Option<PathBuf>,
    trace_report: bool,
    verify: bool,
    lint: bool,
    deny_warnings: bool,
    portfolio: usize,
    recalibrate: bool,
    perturb: f64,
}

fn usage() -> &'static str {
    "usage: qca-engine [--workers N] [--objective fidelity|idle|combined] \
     [--times d0|d1] [--coupling line|ring|star|starmon5|all] [--budget N] [--timeout-ms N] [--cache-capacity N] \
     [--repeat N] [--out-dir DIR] [--metrics-out FILE] [--trace FILE] \
     [--trace-report] [--verify] [--lint] [--deny-warnings] [--portfolio N] \
     [--recalibrate] [--perturb F] <QASM_DIR>"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: PathBuf::new(),
        workers: 0,
        objective: Objective::Fidelity,
        times: GateTimes::D0,
        coupling: None,
        budget: None,
        timeout_ms: None,
        cache_capacity: 256,
        repeat: 1,
        out_dir: None,
        metrics_out: None,
        trace: None,
        trace_report: false,
        verify: false,
        lint: false,
        deny_warnings: false,
        portfolio: 0,
        recalibrate: false,
        perturb: 1.0,
    };
    let mut dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--objective" => {
                args.objective = match value("--objective")?.as_str() {
                    "fidelity" => Objective::Fidelity,
                    "idle" => Objective::IdleTime,
                    "combined" => Objective::Combined,
                    other => return Err(format!("unknown objective '{other}'")),
                }
            }
            "--times" => {
                args.times = match value("--times")?.as_str() {
                    "d0" | "D0" => GateTimes::D0,
                    "d1" | "D1" => GateTimes::D1,
                    other => return Err(format!("unknown times column '{other}'")),
                }
            }
            "--coupling" => {
                args.coupling = Some(match value("--coupling")?.as_str() {
                    "line" => CouplingKind::Line,
                    "ring" => CouplingKind::Ring,
                    "star" => CouplingKind::Star,
                    "starmon5" => CouplingKind::Starmon5,
                    "all" => CouplingKind::AllToAll,
                    other => return Err(format!("unknown coupling topology '{other}'")),
                })
            }
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                )
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                )
            }
            "--cache-capacity" => {
                args.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?
            }
            "--out-dir" => args.out_dir = Some(PathBuf::from(value("--out-dir")?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--trace-report" => args.trace_report = true,
            "--verify" => args.verify = true,
            "--lint" => args.lint = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--portfolio" => {
                args.portfolio = value("--portfolio")?
                    .parse()
                    .map_err(|e| format!("--portfolio: {e}"))?
            }
            "--recalibrate" => args.recalibrate = true,
            "--perturb" => {
                let f: f64 = value("--perturb")?
                    .parse()
                    .map_err(|e| format!("--perturb: {e}"))?;
                if !f.is_finite() || f < 0.0 {
                    return Err(format!("--perturb must be a finite factor >= 0, got {f}"));
                }
                args.perturb = f;
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            other => {
                if dir.replace(PathBuf::from(other)).is_some() {
                    return Err("only one input directory allowed".into());
                }
            }
        }
    }
    args.dir = dir.ok_or("missing input directory")?;
    if args.repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    Ok(args)
}

/// A named coupling-topology family, sized per job from the circuit's
/// qubit count (Starmon-5 is a fixed 5-qubit device).
#[derive(Clone, Copy)]
enum CouplingKind {
    Line,
    Ring,
    Star,
    Starmon5,
    AllToAll,
}

impl CouplingKind {
    fn build(self, num_qubits: usize) -> CouplingMap {
        match self {
            CouplingKind::Line => CouplingMap::line(num_qubits),
            CouplingKind::Ring => CouplingMap::ring(num_qubits),
            CouplingKind::Star => CouplingMap::star(num_qubits),
            CouplingKind::Starmon5 => CouplingMap::starmon5(),
            CouplingKind::AllToAll => CouplingMap::all_to_all(num_qubits),
        }
    }
}

/// One input file: its display name and either a loaded job or the
/// per-file load/parse error.
type NamedJob = (String, Result<AdaptJob, String>);

/// Loads every `.qasm` file in the input directory. A file that cannot be
/// read (missing, unreadable, not UTF-8) or fails to parse becomes a
/// per-file `Err` entry — one bad file must not abort the rest of the batch.
fn load_jobs(args: &Args) -> Result<Vec<NamedJob>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(&args.dir)
        .map_err(|e| format!("cannot read {}: {e}", args.dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "qasm"))
        .collect();
    // Sort by file name so job indices (and thus the output order) are
    // reproducible regardless of directory enumeration order.
    files.sort();
    if files.is_empty() {
        return Err(format!("no .qasm files in {}", args.dir.display()));
    }
    let mut jobs = Vec::with_capacity(files.len());
    for path in files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let job = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|src| qasm::parse_qasm(&src).map_err(|e| e.to_string()))
            .map(|circuit| {
                let coupling = args.coupling.map(|k| k.build(circuit.num_qubits()));
                let mut job = AdaptJob::with_objective(circuit, args.objective);
                job.options = AdaptOptions {
                    coupling,
                    ..job.options
                };
                job
            });
        jobs.push((name, job));
    }
    Ok(jobs)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let named_jobs = load_jobs(&args)?;
    let hw = spin_qubit_model(args.times);

    // Trace destination: JSONL file when requested, in-memory only when the
    // report alone is wanted, disabled otherwise.
    let mut memory: Option<Arc<MemorySink>> = None;
    let tracer = match (&args.trace, args.trace_report) {
        (Some(path), _) => {
            Tracer::new(Arc::new(JsonlSink::create(path).map_err(|e| {
                format!("cannot create trace file {}: {e}", path.display())
            })?))
        }
        (None, true) => {
            let (tracer, sink) = Tracer::to_memory();
            memory = Some(sink);
            tracer
        }
        (None, false) => Tracer::disabled(),
    };

    let mut config = EngineConfig::builder()
        .workers(args.workers)
        .cache_capacity(args.cache_capacity)
        .verify(args.verify)
        .lint(args.lint)
        .deny_warnings(args.deny_warnings)
        .portfolio_members(args.portfolio)
        .tracer(tracer);
    if let Some(budget) = args.budget {
        config = config.job_conflict_budget(budget);
    }
    if let Some(ms) = args.timeout_ms {
        config = config.job_timeout(Duration::from_millis(ms));
    }
    let engine = Engine::new(config.try_build()?);
    let jobs: Vec<AdaptJob> = named_jobs
        .iter()
        .filter_map(|(_, j)| j.as_ref().ok().cloned())
        .collect();
    let load_errors = named_jobs.iter().filter(|(_, j)| j.is_err()).count();

    println!(
        "# adapting {} circuits on {} workers ({} pass(es))",
        jobs.len(),
        engine.effective_workers().min(jobs.len()).max(1),
        args.repeat,
    );
    let mut audit_failures = 0u64;
    let mut lint_rejections = 0u64;
    for pass in 0..args.repeat {
        let reports = engine.adapt_batch(&hw, &jobs);
        if args.repeat > 1 {
            println!("# pass {}", pass + 1);
        }
        // Good jobs pair with batch reports in order; load failures keep
        // their slot in the listing as a per-job error line.
        let mut report_iter = reports.iter();
        for (name, loaded) in named_jobs.iter() {
            let report = match loaded {
                Ok(_) => report_iter.next().expect("one report per job"),
                Err(msg) => {
                    println!("{name:30} {:8} {:5} error={msg}", "error", "-");
                    continue;
                }
            };
            let audit = match &report.audit {
                None => String::new(),
                Some(qca_engine::AuditOutcome::Passed) => " audit=ok".to_string(),
                Some(qca_engine::AuditOutcome::Failed(msg)) => {
                    audit_failures += 1;
                    format!(" audit=FAIL({msg})")
                }
            };
            let lint = if args.lint || args.deny_warnings {
                if matches!(report.error, Some(qca_adapt::AdaptError::Rejected(_))) {
                    lint_rejections += 1;
                    " lint=rejected".to_string()
                } else if report.diagnostics.is_empty() {
                    " lint=ok".to_string()
                } else {
                    format!(" lint={} warn", report.diagnostics.len())
                }
            } else {
                String::new()
            };
            let routed = if args.coupling.is_some() {
                let n = report
                    .adaptation
                    .as_deref()
                    .map_or(0, |a| a.chosen.iter().filter(|s| s.route.is_some()).count());
                format!(" routed={n}")
            } else {
                String::new()
            };
            println!(
                "{name:30} {status:8} {cache:5} obj={obj:>12} wall={wall:.1}ms{audit}{lint}{routed}",
                status = report.status.to_string(),
                cache = if report.cache_hit { "hit" } else { "miss" },
                obj = report
                    .objective_value
                    .map_or_else(|| "-".to_string(), |v| v.to_string()),
                wall = report.wall.as_secs_f64() * 1e3,
            );
            // Diagnostics explain a `lint=rejected`/`lint=N warn` verdict;
            // only print them once even when the batch is repeated.
            if pass == 0 {
                for diag in &report.diagnostics {
                    eprintln!("{}", qca_lint::render_human(Some(name), diag));
                }
            }
        }
        if pass + 1 == args.repeat {
            if let Some(out_dir) = &args.out_dir {
                std::fs::create_dir_all(out_dir)
                    .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
                let good = named_jobs.iter().filter(|(_, j)| j.is_ok());
                for ((name, _), report) in good.zip(&reports) {
                    let path = out_dir.join(name);
                    std::fs::write(&path, qasm::to_qasm(&report.circuit))
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                }
            }
        }
    }

    let mut recalib_failures = 0usize;
    if args.recalibrate {
        let drifted = hw.with_scaled_infidelity(args.perturb);
        let report = engine.recalibrate(&drifted);
        recalib_failures = report.failed;
        println!(
            "recalib: entries={} reused={} resolved={} failed={}",
            report.entries, report.reused, report.resolved, report.failed
        );
    }

    let json = engine.metrics().to_json();
    match &args.metrics_out {
        Some(path) => std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => println!("{json}"),
    }

    if args.trace_report {
        // Prefer re-parsing the JSONL file over the in-memory events: that
        // validates the written trace end to end in the same run.
        let events = match (&args.trace, &memory) {
            (Some(path), _) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read trace file {}: {e}", path.display()))?;
                jsonl::parse_jsonl(&text).map_err(|e| format!("trace file corrupt: {e}"))?
            }
            (None, Some(sink)) => sink.take(),
            (None, None) => unreachable!("--trace-report without a sink"),
        };
        if let Err(e) = report::validate_forest(&events) {
            eprintln!("qca-engine: warning: trace is not a well-formed forest: {e}");
        }
        println!("{}", report::Report::from_events(&events).render());
    }
    if audit_failures > 0 {
        eprintln!("qca-engine: {audit_failures} audit failure(s)");
        return Ok(ExitCode::FAILURE);
    }
    if lint_rejections > 0 {
        eprintln!("qca-engine: {lint_rejections} job(s) rejected by lint preflight");
        return Ok(ExitCode::FAILURE);
    }
    if recalib_failures > 0 {
        eprintln!("qca-engine: {recalib_failures} recalibration failure(s)");
        return Ok(ExitCode::FAILURE);
    }
    if load_errors > 0 {
        eprintln!("qca-engine: {load_errors} file(s) could not be loaded");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("qca-engine: {msg}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
