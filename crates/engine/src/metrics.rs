//! Engine metrics: lock-free counters and log-scale histograms.
//!
//! The registry is a [`TraceSink`]: the engine tees its tracer into it, and
//! every `engine.*`, `verify.*`, and `lint.*` counter event lands in the matching atomic (other
//! events — spans, SAT gauges, OMT counters — pass through untouched, so
//! the same stream can feed a JSONL file and the registry at once).
//! Workers record into shared atomics while solving; nothing blocks on a
//! metrics write. [`MetricsRegistry::to_json`] renders a snapshot as a
//! self-contained JSON object (hand-rolled — the build environment has no
//! serde) for the `qca-engine` CLI's `--metrics-out`.

use qca_trace::{TraceEvent, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets in a [`Histogram`].
const NUM_BUCKETS: usize = 40;

/// A fixed-bucket log₂ histogram over `u64` samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` (bucket 0 also takes 0).
/// Forty buckets cover more than 12 orders of magnitude — enough for
/// nanosecond wall times and conflict counts alike.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket.min(NUM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower edge of the bucket
    /// containing the q-th sample (log₂ resolution).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max()
    }

    /// Renders `{"count":..,"sum":..,"mean":..,"max":..,"p50":..,"p90":..,
    /// "p95":..,"p99":..}`. The percentiles are bucket lower edges — see
    /// [`Histogram::quantile`].
    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
            self.count(),
            self.sum(),
            self.mean(),
            self.max(),
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

/// Shared counters and histograms for one [`Engine`](crate::Engine).
///
/// All fields are updated with relaxed atomics; totals are exact once the
/// batch has been collected (the engine joins its workers before reporting).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Jobs handed to workers.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished (any status).
    pub jobs_completed: AtomicU64,
    /// Jobs answered from the cache.
    pub cache_hits: AtomicU64,
    /// Jobs that had to be solved.
    pub cache_misses: AtomicU64,
    /// Jobs that finished with a proven-optimal result.
    pub optimal: AtomicU64,
    /// Jobs that finished feasible but not proven optimal.
    pub feasible: AtomicU64,
    /// Jobs that degraded to a baseline adaptation.
    pub fallbacks: AtomicU64,
    /// Jobs whose worker panicked and was demoted to an error report.
    pub jobs_panicked: AtomicU64,
    /// Reports audited by the independent verifier.
    pub verify_audits: AtomicU64,
    /// Audits that confirmed the report.
    pub verify_passed: AtomicU64,
    /// Audits that found a discrepancy.
    pub verify_failures: AtomicU64,
    /// Error-severity findings from the preflight lint stage.
    pub lint_errors: AtomicU64,
    /// Warning-severity findings from the preflight lint stage.
    pub lint_warnings: AtomicU64,
    /// Jobs rejected by preflight (degraded to a baseline result).
    pub lint_rejections: AtomicU64,
    /// Corpus entries visited by recalibration.
    pub recalib_entries: AtomicU64,
    /// Recalibrated entries whose cached optimum still held (no re-solve).
    pub recalib_reused: AtomicU64,
    /// Recalibrated entries that needed a warm-started re-solve.
    pub recalib_resolved: AtomicU64,
    /// Recalibrated entries whose re-check or re-solve errored.
    pub recalib_failed: AtomicU64,
    /// Solver-portfolio races launched by budget-exhausted probes.
    pub portfolio_races: AtomicU64,
    /// Unit clauses fixed by the pre-race formula preprocessor.
    pub pre_units: AtomicU64,
    /// Pure literals eliminated by the preprocessor.
    pub pre_pures: AtomicU64,
    /// Clauses removed as subsumed (duplicates included) by the
    /// preprocessor.
    pub pre_subsumed: AtomicU64,
    /// Variables removed by bounded variable elimination.
    pub pre_eliminated: AtomicU64,
    /// Jobs answered from the persistent store after missing the LRU.
    pub store_hits: AtomicU64,
    /// Lookups that missed both the LRU and the persistent store.
    pub store_misses: AtomicU64,
    /// Records replayed from the persistent store on warm restart.
    pub store_replays: AtomicU64,
    /// Snapshot compactions performed by the persistent store.
    pub store_compactions: AtomicU64,
    /// Concurrent identical jobs coalesced onto one in-flight solve.
    pub singleflight_coalesced: AtomicU64,
    /// Total SAT conflicts across all solved jobs.
    pub sat_conflicts: AtomicU64,
    /// Total SAT restarts across all solved jobs.
    pub sat_restarts: AtomicU64,
    /// Total learnt clauses across all solved jobs.
    pub sat_learnt_clauses: AtomicU64,
    /// Total SAT decisions across all solved jobs.
    pub sat_decisions: AtomicU64,
    /// Total SAT propagations across all solved jobs.
    pub sat_propagations: AtomicU64,
    /// Per-job solve wall time in microseconds (cache hits excluded).
    pub solve_wall_us: Histogram,
    /// Per-job SAT conflicts (cache hits excluded).
    pub conflicts_per_job: Histogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Cache hit rate over completed lookups (0.0 when nothing ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let total = hits + self.cache_misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Renders the registry as a JSON object.
    pub fn to_json(&self) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\n",
                "  \"jobs_submitted\": {},\n",
                "  \"jobs_completed\": {},\n",
                "  \"cache_hits\": {},\n",
                "  \"cache_misses\": {},\n",
                "  \"cache_hit_rate\": {:.4},\n",
                "  \"optimal\": {},\n",
                "  \"feasible\": {},\n",
                "  \"fallbacks\": {},\n",
                "  \"jobs_panicked\": {},\n",
                "  \"verify_audits\": {},\n",
                "  \"verify_passed\": {},\n",
                "  \"verify_failures\": {},\n",
                "  \"lint_errors\": {},\n",
                "  \"lint_warnings\": {},\n",
                "  \"lint_rejections\": {},\n",
                "  \"recalib_entries\": {},\n",
                "  \"recalib_reused\": {},\n",
                "  \"recalib_resolved\": {},\n",
                "  \"recalib_failed\": {},\n",
                "  \"portfolio_races\": {},\n",
                "  \"pre_units\": {},\n",
                "  \"pre_pures\": {},\n",
                "  \"pre_subsumed\": {},\n",
                "  \"pre_eliminated\": {},\n",
                "  \"store_hits\": {},\n",
                "  \"store_misses\": {},\n",
                "  \"store_replays\": {},\n",
                "  \"store_compactions\": {},\n",
                "  \"singleflight_coalesced\": {},\n",
                "  \"sat_conflicts\": {},\n",
                "  \"sat_restarts\": {},\n",
                "  \"sat_learnt_clauses\": {},\n",
                "  \"sat_decisions\": {},\n",
                "  \"sat_propagations\": {},\n",
                "  \"solve_wall_us\": {},\n",
                "  \"conflicts_per_job\": {}\n",
                "}}"
            ),
            load(&self.jobs_submitted),
            load(&self.jobs_completed),
            load(&self.cache_hits),
            load(&self.cache_misses),
            self.cache_hit_rate(),
            load(&self.optimal),
            load(&self.feasible),
            load(&self.fallbacks),
            load(&self.jobs_panicked),
            load(&self.verify_audits),
            load(&self.verify_passed),
            load(&self.verify_failures),
            load(&self.lint_errors),
            load(&self.lint_warnings),
            load(&self.lint_rejections),
            load(&self.recalib_entries),
            load(&self.recalib_reused),
            load(&self.recalib_resolved),
            load(&self.recalib_failed),
            load(&self.portfolio_races),
            load(&self.pre_units),
            load(&self.pre_pures),
            load(&self.pre_subsumed),
            load(&self.pre_eliminated),
            load(&self.store_hits),
            load(&self.store_misses),
            load(&self.store_replays),
            load(&self.store_compactions),
            load(&self.singleflight_coalesced),
            load(&self.sat_conflicts),
            load(&self.sat_restarts),
            load(&self.sat_learnt_clauses),
            load(&self.sat_decisions),
            load(&self.sat_propagations),
            self.solve_wall_us.to_json(),
            self.conflicts_per_job.to_json(),
        )
    }
}

/// Counter-event names the engine emits, mapped onto registry fields. The
/// registry ignores every other event (spans, gauges, foreign counters), so
/// it can sit on the same fanout as a JSONL sink.
impl TraceSink for MetricsRegistry {
    fn record(&self, event: &TraceEvent) {
        let TraceEvent::Counter { name, value, .. } = event else {
            return;
        };
        match name.as_ref() {
            "engine.jobs_submitted" => &self.jobs_submitted,
            "engine.job_completed" => &self.jobs_completed,
            "engine.cache_hit" => &self.cache_hits,
            "engine.cache_miss" => &self.cache_misses,
            "engine.status.optimal" => &self.optimal,
            "engine.status.feasible" => &self.feasible,
            "engine.status.fallback" => &self.fallbacks,
            "engine.job_panicked" => &self.jobs_panicked,
            "verify.audits" => &self.verify_audits,
            "verify.passed" => &self.verify_passed,
            "verify.failures" => &self.verify_failures,
            "lint.errors" => &self.lint_errors,
            "lint.warnings" => &self.lint_warnings,
            "lint.rejections" => &self.lint_rejections,
            "recalib.entries" => &self.recalib_entries,
            "recalib.reused" => &self.recalib_reused,
            "recalib.resolved" => &self.recalib_resolved,
            "recalib.failed" => &self.recalib_failed,
            "portfolio.races" => &self.portfolio_races,
            "sat.pre.units" => &self.pre_units,
            "sat.pre.pures" => &self.pre_pures,
            "sat.pre.subsumed" => &self.pre_subsumed,
            "sat.pre.eliminated" => &self.pre_eliminated,
            "store.hits" => &self.store_hits,
            "store.misses" => &self.store_misses,
            "store.replays" => &self.store_replays,
            "store.compactions" => &self.store_compactions,
            "singleflight.coalesced" => &self.singleflight_coalesced,
            "engine.sat_conflicts" => {
                self.conflicts_per_job.record(*value);
                &self.sat_conflicts
            }
            "engine.sat_restarts" => &self.sat_restarts,
            "engine.sat_learnt_clauses" => &self.sat_learnt_clauses,
            "engine.sat_decisions" => &self.sat_decisions,
            "engine.sat_propagations" => &self.sat_propagations,
            "engine.solve_wall_us" => {
                self.solve_wall_us.record(*value);
                return;
            }
            _ => return,
        }
        .fetch_add(*value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1024, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_030);
        assert_eq!(h.max(), 1_000_000);
        assert!(h.mean() > 0.0);
        // p50 falls in the small buckets, p90+ near the top sample.
        assert!(h.quantile(0.5) <= 4);
        assert!(h.quantile(1.0) >= 1 << 19);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new();
        // Every percentile of an empty histogram is 0, as are the moments.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let json = h.to_json();
        assert!(json.contains("\"p50\":0"), "{json}");
        assert!(json.contains("\"p99\":0"), "{json}");
    }

    #[test]
    fn quantiles_of_single_sample_all_answer_its_bucket() {
        let h = Histogram::new();
        h.record(1000);
        // With one sample every percentile has rank 1: the lower edge of
        // the sample's bucket ([512, 1024) for 1000).
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 512, "q={q}");
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1000);
        // A single zero sample lands in bucket 0, whose lower edge is 0.
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.5), 0);
        assert_eq!(z.quantile(0.99), 0);
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn quantiles_of_constant_samples_are_that_bucket_everywhere() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(300);
        }
        // All mass in one bucket ([256, 512)): p50, p95, and p99 must
        // agree exactly, and the moments are exact.
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 256, "q={q}");
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 300_000);
        assert_eq!(h.mean(), 300.0);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let h = Histogram::new();
        h.record(5);
        // q outside [0, 1] is clamped, not a panic or an out-of-range
        // rank.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn percentiles_pinned_on_known_distribution() {
        // Samples 1..=100 land in log₂ buckets with cumulative counts
        // 1, 3, 7, 15, 31, 63, 100; quantile() answers the containing
        // bucket's lower edge. Pin the exact values so a regression in the
        // rank math or bucket indexing shows up as a concrete number.
        let h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 32); // rank 50 → bucket [32, 64)
        assert_eq!(h.quantile(0.9), 64); // rank 90 → bucket [64, 128)
        assert_eq!(h.quantile(0.95), 64);
        assert_eq!(h.quantile(0.99), 64);
        assert_eq!(h.quantile(1.0), 64);
        let json = h.to_json();
        assert!(json.contains("\"p50\":32"), "{json}");
        assert!(json.contains("\"p95\":64"), "{json}");
        assert!(json.contains("\"p99\":64"), "{json}");
    }

    #[test]
    fn hit_rate_and_json_shape() {
        let m = MetricsRegistry::new();
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hit_rate\": 0.7500"));
        assert!(json.contains("\"solve_wall_us\""));
    }

    #[test]
    fn counter_events_accumulate_totals() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let tracer = qca_trace::Tracer::new(m.clone());
        for wall in [500u64, 700] {
            tracer.counter("engine.solve_wall_us", wall);
            tracer.counter("engine.sat_conflicts", 10);
            tracer.counter("engine.sat_restarts", 2);
            tracer.counter("engine.job_completed", 1);
        }
        assert_eq!(m.sat_conflicts.load(Ordering::Relaxed), 20);
        assert_eq!(m.sat_restarts.load(Ordering::Relaxed), 4);
        assert_eq!(m.jobs_completed.load(Ordering::Relaxed), 2);
        assert_eq!(m.solve_wall_us.count(), 2);
        assert_eq!(m.conflicts_per_job.count(), 2);
    }

    #[test]
    fn preprocessor_counters_land_in_the_registry() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let tracer = qca_trace::Tracer::new(m.clone());
        tracer.counter("sat.pre.units", 3);
        tracer.counter("sat.pre.pures", 2);
        tracer.counter("sat.pre.subsumed", 5);
        tracer.counter("sat.pre.eliminated", 1);
        assert_eq!(m.pre_units.load(Ordering::Relaxed), 3);
        assert_eq!(m.pre_pures.load(Ordering::Relaxed), 2);
        assert_eq!(m.pre_subsumed.load(Ordering::Relaxed), 5);
        assert_eq!(m.pre_eliminated.load(Ordering::Relaxed), 1);
        let json = m.to_json();
        assert!(json.contains("\"pre_units\": 3"), "{json}");
        assert!(json.contains("\"pre_eliminated\": 1"), "{json}");
    }

    #[test]
    fn store_and_singleflight_counters_land_in_the_registry() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let tracer = qca_trace::Tracer::new(m.clone());
        tracer.counter("store.hits", 4);
        tracer.counter("store.misses", 2);
        tracer.counter("store.replays", 9);
        tracer.counter("store.compactions", 1);
        tracer.counter("singleflight.coalesced", 3);
        assert_eq!(m.store_hits.load(Ordering::Relaxed), 4);
        assert_eq!(m.store_misses.load(Ordering::Relaxed), 2);
        assert_eq!(m.store_replays.load(Ordering::Relaxed), 9);
        assert_eq!(m.store_compactions.load(Ordering::Relaxed), 1);
        assert_eq!(m.singleflight_coalesced.load(Ordering::Relaxed), 3);
        let json = m.to_json();
        assert!(json.contains("\"store_replays\": 9"), "{json}");
        assert!(json.contains("\"singleflight_coalesced\": 3"), "{json}");
    }

    #[test]
    fn foreign_events_are_ignored() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let tracer = qca_trace::Tracer::new(m.clone());
        tracer.counter("sat.restart", 1);
        tracer.gauge("engine.sat_conflicts", 5);
        let _span = tracer.span("engine.job");
        drop(_span);
        assert_eq!(m.sat_conflicts.load(Ordering::Relaxed), 0);
        assert_eq!(m.sat_restarts.load(Ordering::Relaxed), 0);
        assert_eq!(m.conflicts_per_job.count(), 0);
    }
}
