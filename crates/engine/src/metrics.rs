//! Engine metrics: lock-free counters and log-scale histograms.
//!
//! Workers record into shared atomics while solving; nothing blocks on a
//! metrics write. [`MetricsRegistry::to_json`] renders a snapshot as a
//! self-contained JSON object (hand-rolled — the build environment has no
//! serde) for the `qca-engine` CLI's `--metrics-out`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets in a [`Histogram`].
const NUM_BUCKETS: usize = 40;

/// A fixed-bucket log₂ histogram over `u64` samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` (bucket 0 also takes 0).
/// Forty buckets cover more than 12 orders of magnitude — enough for
/// nanosecond wall times and conflict counts alike.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket.min(NUM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower edge of the bucket
    /// containing the q-th sample (log₂ resolution).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max()
    }

    /// Renders `{"count":..,"sum":..,"mean":..,"max":..,"p50":..,"p90":..}`.
    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"max\":{},\"p50\":{},\"p90\":{}}}",
            self.count(),
            self.sum(),
            self.mean(),
            self.max(),
            self.quantile(0.5),
            self.quantile(0.9),
        )
    }
}

/// Shared counters and histograms for one [`Engine`](crate::Engine).
///
/// All fields are updated with relaxed atomics; totals are exact once the
/// batch has been collected (the engine joins its workers before reporting).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Jobs handed to workers.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished (any status).
    pub jobs_completed: AtomicU64,
    /// Jobs answered from the cache.
    pub cache_hits: AtomicU64,
    /// Jobs that had to be solved.
    pub cache_misses: AtomicU64,
    /// Jobs that finished with a proven-optimal result.
    pub optimal: AtomicU64,
    /// Jobs that finished feasible but not proven optimal.
    pub feasible: AtomicU64,
    /// Jobs that degraded to a baseline adaptation.
    pub fallbacks: AtomicU64,
    /// Total SAT conflicts across all solved jobs.
    pub sat_conflicts: AtomicU64,
    /// Total SAT restarts across all solved jobs.
    pub sat_restarts: AtomicU64,
    /// Total learnt clauses across all solved jobs.
    pub sat_learnt_clauses: AtomicU64,
    /// Total SAT decisions across all solved jobs.
    pub sat_decisions: AtomicU64,
    /// Total SAT propagations across all solved jobs.
    pub sat_propagations: AtomicU64,
    /// Per-job solve wall time in microseconds (cache hits excluded).
    pub solve_wall_us: Histogram,
    /// Per-job SAT conflicts (cache hits excluded).
    pub conflicts_per_job: Histogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one solved (non-cached) job's cost.
    pub fn record_solve(&self, wall: Duration, stats: &qca_sat::SolverStats) {
        self.solve_wall_us.record(wall.as_micros() as u64);
        self.conflicts_per_job.record(stats.conflicts);
        self.sat_conflicts
            .fetch_add(stats.conflicts, Ordering::Relaxed);
        self.sat_restarts
            .fetch_add(stats.restarts, Ordering::Relaxed);
        self.sat_learnt_clauses
            .fetch_add(stats.learnt_clauses, Ordering::Relaxed);
        self.sat_decisions
            .fetch_add(stats.decisions, Ordering::Relaxed);
        self.sat_propagations
            .fetch_add(stats.propagations, Ordering::Relaxed);
    }

    /// Cache hit rate over completed lookups (0.0 when nothing ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let total = hits + self.cache_misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Renders the registry as a JSON object.
    pub fn to_json(&self) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\n",
                "  \"jobs_submitted\": {},\n",
                "  \"jobs_completed\": {},\n",
                "  \"cache_hits\": {},\n",
                "  \"cache_misses\": {},\n",
                "  \"cache_hit_rate\": {:.4},\n",
                "  \"optimal\": {},\n",
                "  \"feasible\": {},\n",
                "  \"fallbacks\": {},\n",
                "  \"sat_conflicts\": {},\n",
                "  \"sat_restarts\": {},\n",
                "  \"sat_learnt_clauses\": {},\n",
                "  \"sat_decisions\": {},\n",
                "  \"sat_propagations\": {},\n",
                "  \"solve_wall_us\": {},\n",
                "  \"conflicts_per_job\": {}\n",
                "}}"
            ),
            load(&self.jobs_submitted),
            load(&self.jobs_completed),
            load(&self.cache_hits),
            load(&self.cache_misses),
            self.cache_hit_rate(),
            load(&self.optimal),
            load(&self.feasible),
            load(&self.fallbacks),
            load(&self.sat_conflicts),
            load(&self.sat_restarts),
            load(&self.sat_learnt_clauses),
            load(&self.sat_decisions),
            load(&self.sat_propagations),
            self.solve_wall_us.to_json(),
            self.conflicts_per_job.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1024, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_030);
        assert_eq!(h.max(), 1_000_000);
        assert!(h.mean() > 0.0);
        // p50 falls in the small buckets, p90+ near the top sample.
        assert!(h.quantile(0.5) <= 4);
        assert!(h.quantile(1.0) >= 1 << 19);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn hit_rate_and_json_shape() {
        let m = MetricsRegistry::new();
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hit_rate\": 0.7500"));
        assert!(json.contains("\"solve_wall_us\""));
    }

    #[test]
    fn record_solve_accumulates_totals() {
        let m = MetricsRegistry::new();
        let stats = qca_sat::SolverStats {
            conflicts: 10,
            restarts: 2,
            learnt_clauses: 7,
            decisions: 40,
            propagations: 100,
            ..Default::default()
        };
        m.record_solve(Duration::from_micros(500), &stats);
        m.record_solve(Duration::from_micros(700), &stats);
        assert_eq!(m.sat_conflicts.load(Ordering::Relaxed), 20);
        assert_eq!(m.solve_wall_us.count(), 2);
        assert_eq!(m.conflicts_per_job.count(), 2);
    }
}
