//! Property and crash-recovery tests for the persistent store.
//!
//! Adaptations are generated structurally (arbitrary circuits, routed
//! substitutions, audit bundles, optimality certificates) rather than by
//! running the solver, so the codec is exercised over a far wider space
//! than real solves produce. "Bit-identical" is checked by re-encoding:
//! `encode(decode(bytes)) == bytes` holds exactly when every field —
//! including IEEE-754 bit patterns — survived the round trip.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use qca_adapt::{
    Adaptation, Route, SmtAdaptation, Substitution, SubstitutionKind, VerificationData,
};
use qca_circuit::{Circuit, Gate};
use qca_sat::dimacs::Cnf;
use qca_sat::proof::ProofStep;
use qca_sat::{Lit, SolverStats};
use qca_smt::omt::OptimalityCertificate;
use qca_smt::record::{AuditBundle, RecordedConstraint};
use qca_smt::{IntExpr, SmtModel};
use qca_store::{decode_adaptation, encode_adaptation, Store, StoreOptions, WAL_FILE};

/// Fresh scratch directory per call, cleaned up by the OS tempdir reaper.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qca-store-test-{}-{tag}-{n}", std::process::id()))
}

// ----------------------------------------------------------- strategies

fn arb_gate() -> impl Strategy<Value = Gate> {
    let angle = -7.0..7.0f64;
    prop_oneof![
        Just(Gate::I),
        Just(Gate::X),
        Just(Gate::H),
        Just(Gate::Sdg),
        Just(Gate::Sx),
        angle.clone().prop_map(Gate::Rx),
        angle.clone().prop_map(Gate::Rz),
        angle.clone().prop_map(Gate::Phase),
        (angle.clone(), angle.clone(), angle.clone()).prop_map(|(t, p, l)| Gate::U3(t, p, l)),
        Just(Gate::Cx),
        Just(Gate::Cz),
        Just(Gate::CzDiabatic),
        angle.clone().prop_map(Gate::CPhase),
        angle.prop_map(Gate::CRot),
        Just(Gate::Swap),
        Just(Gate::SwapDiabatic),
        Just(Gate::SwapComposite),
        Just(Gate::ISwapDg),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..6).prop_flat_map(|n| {
        collection::vec((arb_gate(), 0usize..n, 1usize..n), 0..12).prop_map(move |instrs| {
            let mut c = Circuit::new(n);
            for (gate, q0, dq) in instrs {
                match gate.num_qubits() {
                    1 => c.push(gate, &[q0]),
                    2 => {
                        let q1 = (q0 + dq) % n;
                        if q1 != q0 {
                            c.push(gate, &[q0, q1]);
                        }
                    }
                    _ => {}
                }
            }
            c
        })
    })
}

fn arb_kind() -> impl Strategy<Value = SubstitutionKind> {
    prop_oneof![
        Just(SubstitutionKind::KakCz),
        Just(SubstitutionKind::KakCzDiabatic),
        Just(SubstitutionKind::ConditionalRotation),
        Just(SubstitutionKind::SwapDiabatic),
        Just(SubstitutionKind::SwapComposite),
        Just(SubstitutionKind::RouteSwapDiabatic),
        Just(SubstitutionKind::RouteSwapComposite),
    ]
}

fn arb_route() -> impl Strategy<Value = Option<Route>> {
    prop_oneof![
        Just(None),
        (collection::vec(0usize..8, 2..5), arb_gate())
            .prop_map(|(path, gate)| Some(Route { path, gate })),
    ]
}

fn arb_substitution() -> impl Strategy<Value = Substitution> {
    (
        (
            0usize..64,
            arb_kind(),
            0usize..8,
            collection::vec(0usize..32, 0..4),
        ),
        arb_circuit(),
        arb_route(),
        (-4.0..4.0f64, -4.0..4.0f64),
    )
        .prop_map(
            |((id, kind, block, ops), replacement, route, (dd, df))| Substitution {
                id,
                kind,
                block,
                ops,
                replacement,
                route,
                delta_duration: dd,
                delta_log_fidelity: df,
            },
        )
}

fn arb_lit(num_vars: usize) -> impl Strategy<Value = Lit> {
    (0usize..2 * num_vars.max(1)).prop_map(Lit::from_code)
}

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    (1usize..12).prop_flat_map(|num_vars| {
        collection::vec(collection::vec(arb_lit(num_vars), 0..5), 0..8)
            .prop_map(move |clauses| Cnf { num_vars, clauses })
    })
}

fn arb_int_expr(num_vars: usize) -> impl Strategy<Value = IntExpr> {
    (
        collection::vec(arb_lit(num_vars), 0..5),
        -100i64..100,
        -100i64..0,
        0i64..100,
    )
        .prop_map(|(bits, offset, lo, hi)| IntExpr::from_parts(bits, offset, lo, hi))
}

fn arb_constraint(num_vars: usize) -> impl Strategy<Value = RecordedConstraint> {
    prop_oneof![
        collection::vec(arb_lit(num_vars), 0..5).prop_map(RecordedConstraint::Clause),
        arb_int_expr(num_vars).prop_map(|out| RecordedConstraint::IntVar { out }),
        (
            arb_int_expr(num_vars),
            arb_int_expr(num_vars),
            arb_int_expr(num_vars)
        )
            .prop_map(|(out, a, b)| RecordedConstraint::Add { out, a, b }),
        (
            arb_int_expr(num_vars),
            -50i64..50,
            collection::vec((-10i64..10, arb_lit(num_vars)), 0..4)
        )
            .prop_map(|(out, base, terms)| RecordedConstraint::PbSum { out, base, terms }),
        (arb_int_expr(num_vars), arb_int_expr(num_vars), -10i64..10)
            .prop_map(|(out, a, k)| RecordedConstraint::MulConst { out, a, k }),
        (arb_int_expr(num_vars), -50i64..50, arb_int_expr(num_vars))
            .prop_map(|(out, c, e)| RecordedConstraint::SubFromConst { out, c, e }),
        (arb_int_expr(num_vars), arb_int_expr(num_vars))
            .prop_map(|(a, b)| RecordedConstraint::Ge { a, b }),
        (
            arb_lit(num_vars),
            arb_int_expr(num_vars),
            arb_int_expr(num_vars)
        )
            .prop_map(|(lit, a, b)| RecordedConstraint::GeReified { lit, a, b }),
        (
            arb_int_expr(num_vars),
            arb_lit(num_vars),
            arb_int_expr(num_vars),
            arb_int_expr(num_vars)
        )
            .prop_map(|(out, cond, a, b)| RecordedConstraint::Ite { out, cond, a, b }),
        (
            arb_int_expr(num_vars),
            collection::vec(arb_int_expr(num_vars), 0..3)
        )
            .prop_map(|(out, exprs)| RecordedConstraint::MaxOf { out, exprs }),
    ]
}

fn arb_model() -> impl Strategy<Value = SmtModel> {
    collection::vec(
        prop_oneof![Just(None), Just(Some(false)), Just(Some(true))],
        0..16,
    )
    .prop_map(SmtModel::from_raw_values)
}

fn arb_proof_step(num_vars: usize) -> impl Strategy<Value = ProofStep> {
    prop_oneof![
        collection::vec(arb_lit(num_vars), 0..4).prop_map(ProofStep::Add),
        collection::vec(arb_lit(num_vars), 0..4).prop_map(ProofStep::Delete),
    ]
}

fn arb_certificate() -> impl Strategy<Value = OptimalityCertificate> {
    (arb_cnf(), -100i64..100).prop_flat_map(|(cnf, refuted_bound)| {
        let nv = cnf.num_vars;
        collection::vec(arb_proof_step(nv), 0..6).prop_map(move |steps| OptimalityCertificate {
            cnf: cnf.clone(),
            steps,
            refuted_bound,
        })
    })
}

fn arb_verification() -> impl Strategy<Value = Option<VerificationData>> {
    prop_oneof![
        Just(None),
        (
            arb_cnf(),
            arb_model(),
            prop_oneof![Just(None), arb_certificate().prop_map(Some)]
        )
            .prop_flat_map(|(cnf, model, certificate)| {
                let nv = cnf.num_vars;
                collection::vec(arb_constraint(nv), 0..6).prop_map(move |constraints| {
                    Some(VerificationData {
                        bundle: AuditBundle {
                            constraints,
                            cnf: cnf.clone(),
                            model: model.clone(),
                        },
                        certificate: certificate.clone(),
                    })
                })
            }),
    ]
}

fn arb_solver_stats() -> impl Strategy<Value = SolverStats> {
    (
        (0u64..9999, 0u64..9999, 0u64..9999, 0u64..9999),
        (0u64..999, 0u64..999, 0u64..999),
    )
        .prop_map(|((d, p, c, r), (l, del, min))| SolverStats {
            decisions: d,
            propagations: p,
            conflicts: c,
            restarts: r,
            learnt_clauses: l,
            deleted_clauses: del,
            minimized_literals: min,
        })
}

fn arb_adaptation() -> impl Strategy<Value = Adaptation> {
    (
        (arb_circuit(), arb_circuit()),
        collection::vec(arb_substitution(), 0..4),
        (0usize..256, collection::vec(0usize..64, 0..5)),
        (-1000i64..1000, 0u64..50, 0usize..500, any::<bool>()),
        arb_solver_stats(),
        arb_verification(),
    )
        .prop_map(
            |(
                (circuit, reference),
                chosen,
                (catalog_size, solver_chosen),
                (objective_value, queries, sat_vars, optimal),
                solver_stats,
                verification,
            )| Adaptation {
                circuit,
                reference,
                chosen,
                catalog_size,
                solver: SmtAdaptation {
                    chosen: solver_chosen,
                    objective_value,
                    queries,
                    sat_vars,
                    optimal,
                    solver_stats,
                    verification,
                },
            },
        )
}

// ------------------------------------------------------- property tests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn codec_round_trips_bit_identically(a in arb_adaptation()) {
        let bytes = encode_adaptation(&a);
        let back = decode_adaptation(&bytes).expect("decode");
        prop_assert_eq!(bytes, encode_adaptation(&back));
    }

    #[test]
    fn store_round_trips_through_wal_and_snapshot(batch in collection::vec(arb_adaptation(), 1..5)) {
        let dir = scratch_dir("roundtrip");
        let originals: Vec<Vec<u8>> = batch.iter().map(encode_adaptation).collect();
        {
            let store = Store::open_with(
                &dir,
                StoreOptions { compact_after: 10_000, fsync: false },
            ).unwrap();
            for (i, a) in batch.iter().enumerate() {
                store.append(i as u64, a).unwrap();
            }
            // Read back while records live in the WAL.
            for (i, want) in originals.iter().enumerate() {
                let got = store.get(i as u64).expect("wal get");
                prop_assert_eq!(want, &encode_adaptation(&got));
            }
            store.compact().unwrap();
            // And again once they live in the snapshot.
            for (i, want) in originals.iter().enumerate() {
                let got = store.get(i as u64).expect("snapshot get");
                prop_assert_eq!(want, &encode_adaptation(&got));
            }
        }
        // Cold restart: replay must surface the same bytes.
        let store = Store::open(&dir).unwrap();
        let mut replayed = vec![None; batch.len()];
        store.replay(|k, a| replayed[k as usize] = Some(encode_adaptation(&a)));
        for (want, got) in originals.iter().zip(&replayed) {
            prop_assert_eq!(Some(want), got.as_ref());
        }
        prop_assert_eq!(store.stats().replays as usize, batch.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ------------------------------------------------------ recovery tests

fn sample_adaptation(seed: u64) -> Adaptation {
    let mut rng = TestRng::from_seed(seed);
    arb_adaptation().new_value(&mut rng)
}

#[test]
fn truncated_tail_drops_only_the_damaged_suffix() {
    let dir = scratch_dir("trunc");
    let a = sample_adaptation(1);
    let b = sample_adaptation(2);
    let c = sample_adaptation(3);
    {
        let store = Store::open(&dir).unwrap();
        store.append(1, &a).unwrap();
        store.append(2, &b).unwrap();
        store.append(3, &c).unwrap();
    }
    // Simulate a torn write: chop bytes off the WAL tail mid-frame.
    let wal = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);

    let store = Store::open(&dir).unwrap();
    let stats = store.stats();
    assert!(stats.recovered_dropped_bytes > 0, "tail should be dropped");
    assert_eq!(store.len(), 2, "only the torn record is lost");
    assert_eq!(
        encode_adaptation(&store.get(1).expect("key 1 survives")),
        encode_adaptation(&a)
    );
    assert_eq!(
        encode_adaptation(&store.get(2).expect("key 2 survives")),
        encode_adaptation(&b)
    );
    assert!(store.get(3).is_none(), "torn record must not resurrect");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_checksum_drops_the_damaged_record() {
    let dir = scratch_dir("bitflip");
    let a = sample_adaptation(4);
    let b = sample_adaptation(5);
    {
        let store = Store::open(&dir).unwrap();
        store.append(10, &a).unwrap();
        store.append(11, &b).unwrap();
    }
    // Flip one bit inside the *second* frame's payload. Frame 1 starts at
    // the 12-byte header; its length prefix tells us where frame 2 lives.
    let wal = dir.join(WAL_FILE);
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&wal)
        .unwrap();
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).unwrap();
    let frame1_payload = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as u64;
    let frame2_start = 12 + 12 + frame1_payload;
    let target = frame2_start + 12 + 9; // somewhere inside frame 2's payload
    f.seek(SeekFrom::Start(target)).unwrap();
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte).unwrap();
    f.seek(SeekFrom::Start(target)).unwrap();
    f.write_all(&[byte[0] ^ 0x10]).unwrap();
    drop(f);

    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 1, "damaged suffix dropped, prefix kept");
    assert_eq!(
        encode_adaptation(&store.get(10).expect("undamaged record survives")),
        encode_adaptation(&a)
    );
    assert!(store.get(11).is_none());
    assert!(store.stats().recovered_dropped_bytes > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_write_then_restart_serves_fsynced_entries() {
    let dir = scratch_dir("killwrite");
    let a = sample_adaptation(6);
    let b = sample_adaptation(7);
    {
        let store = Store::open(&dir).unwrap();
        store.append(100, &a).unwrap();
        store.append(101, &b).unwrap();
    }
    // A kill -9 mid-append leaves a partial frame: emulate by appending
    // a prefix of a valid frame (length prefix promises more bytes than
    // were ever written).
    let wal = dir.join(WAL_FILE);
    let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
    let garbage_frame = {
        let c = sample_adaptation(8);
        let full = qca_store::encode_adaptation(&c);
        let mut frame = (full.len() as u32 + 8).to_le_bytes().to_vec();
        frame.extend_from_slice(&0xdeadbeefu64.to_le_bytes()); // bogus checksum
        frame.extend_from_slice(&102u64.to_le_bytes());
        frame.extend_from_slice(&full[..full.len() / 2]); // torn payload
        frame
    };
    f.write_all(&garbage_frame).unwrap();
    drop(f);

    // No panic, damaged tail dropped, fsynced entries bit-identical.
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(
        encode_adaptation(&store.get(100).unwrap()),
        encode_adaptation(&a)
    );
    assert_eq!(
        encode_adaptation(&store.get(101).unwrap()),
        encode_adaptation(&b)
    );
    assert_eq!(
        store.stats().recovered_dropped_bytes,
        garbage_frame.len() as u64
    );

    // The truncation is persistent: appends after recovery extend a clean
    // file and survive another restart.
    let c = sample_adaptation(9);
    store.append(102, &c).unwrap();
    drop(store);
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 3);
    assert_eq!(store.stats().recovered_dropped_bytes, 0);
    assert_eq!(
        encode_adaptation(&store.get(102).unwrap()),
        encode_adaptation(&c)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_shrinks_the_wal_and_keeps_newest_versions() {
    let dir = scratch_dir("compact");
    let old = sample_adaptation(10);
    let new = sample_adaptation(11);
    let store = Store::open_with(
        &dir,
        StoreOptions {
            compact_after: 4,
            fsync: false,
        },
    )
    .unwrap();
    // Same key three times, then another key: the 4th append triggers
    // compaction, which must keep only the *latest* version per key.
    store.append(7, &old).unwrap();
    store.append(7, &old).unwrap();
    store.append(7, &new).unwrap();
    store.append(8, &old).unwrap();
    let stats = store.stats();
    assert_eq!(stats.compactions, 1);
    assert_eq!(stats.wal_records, 0, "WAL reset after compaction");
    assert_eq!(stats.live_records, 2);
    assert_eq!(
        encode_adaptation(&store.get(7).unwrap()),
        encode_adaptation(&new),
        "compaction must keep the newest version"
    );
    drop(store);
    // Restart reads from the snapshot.
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(
        encode_adaptation(&store.get(7).unwrap()),
        encode_adaptation(&new)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn leftover_snapshot_tmp_is_discarded_on_open() {
    let dir = scratch_dir("tmpfile");
    let a = sample_adaptation(12);
    {
        let store = Store::open(&dir).unwrap();
        store.append(1, &a).unwrap();
    }
    // Crash between writing snapshot.tmp and the rename.
    std::fs::write(dir.join("snapshot.tmp"), b"half-written snapshot").unwrap();
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 1);
    assert!(!dir.join("snapshot.tmp").exists());
    std::fs::remove_dir_all(&dir).ok();
}
