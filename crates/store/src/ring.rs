//! Consistent-hash shard ring: several qca-serve nodes presenting one
//! logical cache.
//!
//! Each node contributes `vnodes` points on a 64-bit ring, placed at
//! `Fnv64(node_id, vnode_index)`; a cache key is owned by the node whose
//! point is the first at or after the key (wrapping at the top of the
//! range). Because placement depends only on `(node_id, vnode_index)`,
//! every node that knows the same member list computes the *same* ring —
//! no coordination, no gossip, just arithmetic.
//!
//! Virtual nodes smooth the load split: with the default 64 points per
//! node, a two-node ring lands within a few percent of 50/50. Adding or
//! removing a node moves only the keys in that node's arcs, which is the
//! whole point of consistent hashing.

use qca_circuit::hash::Fnv64;

/// Default virtual nodes per member.
pub const DEFAULT_VNODES: usize = 64;

/// Deterministic consistent-hash ring over node indices `0..n`.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(point, node)` sorted by point.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl ShardRing {
    /// Builds a ring for `nodes` members with [`DEFAULT_VNODES`] points
    /// each. A ring of zero or one node owns everything locally.
    pub fn new(nodes: usize) -> ShardRing {
        ShardRing::with_vnodes(nodes, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count.
    pub fn with_vnodes(nodes: usize, vnodes: usize) -> ShardRing {
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for vnode in 0..vnodes {
                let mut h = Fnv64::new();
                h.write_u64(node as u64);
                h.write_u64(vnode as u64);
                points.push((h.finish(), node));
            }
        }
        // Sort by point; break the (astronomically unlikely) point
        // collision by node index so all members agree on the winner.
        points.sort_unstable();
        ShardRing { points, nodes }
    }

    /// Number of member nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node that owns `key`. Keys are already 64-bit hashes
    /// (`AdaptCache::key`), so they are used directly as ring positions.
    pub fn owner(&self, key: u64) -> usize {
        if self.points.is_empty() {
            return 0;
        }
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_owns_everything() {
        let ring = ShardRing::new(1);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(ring.owner(key), 0);
        }
        let empty = ShardRing::new(0);
        assert_eq!(empty.owner(42), 0);
    }

    #[test]
    fn every_member_computes_the_same_ring() {
        let a = ShardRing::new(3);
        let b = ShardRing::new(3);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn vnodes_spread_load_roughly_evenly() {
        let ring = ShardRing::new(2);
        let mut counts = [0usize; 2];
        for i in 0..100_000u64 {
            // Hash the trial index so positions are uniform, like real keys.
            let mut h = Fnv64::new();
            h.write_u64(i);
            counts[ring.owner(h.finish())] += 1;
        }
        let share = counts[0] as f64 / 100_000.0;
        assert!(
            (0.3..=0.7).contains(&share),
            "two-node split too lopsided: {counts:?}"
        );
    }

    #[test]
    fn growing_the_ring_moves_only_some_keys() {
        let two = ShardRing::new(2);
        let three = ShardRing::new(3);
        let mut moved = 0usize;
        const N: u64 = 10_000;
        for i in 0..N {
            let mut h = Fnv64::new();
            h.write_u64(i);
            let key = h.finish();
            if two.owner(key) != three.owner(key) {
                moved += 1;
            }
        }
        // Consistent hashing moves ~1/3 of keys when going 2 → 3 nodes;
        // naive modulo hashing would move ~2/3.
        assert!(
            moved < (N as usize) / 2,
            "{moved}/{N} keys moved — not consistent"
        );
    }
}
