//! # qca-store — persistent cache tier for adaptation results
//!
//! OMT solves are expensive; their results are tiny. This crate makes them
//! durable: a [`Store`] persists `(cache key → Adaptation)` records in an
//! append-only, checksummed write-ahead log with periodic compacted
//! snapshots, so a restarted `qca-serve` node warms its in-memory LRU from
//! disk instead of re-solving its whole working set.
//!
//! Three independent pieces, no external dependencies:
//!
//! * [`Store`] — WAL + snapshot with crash-safe truncated-tail recovery
//!   and bit-identical round-trips (floats travel as IEEE-754 bit
//!   patterns). See [`wal`] for the framing and recovery rules.
//! * [`SingleFlight`] — stampede protection: N concurrent identical
//!   requests produce exactly one solve, with panic-safe leader handoff
//!   and cancellation-aware followers.
//! * [`ShardRing`] — a deterministic consistent-hash ring (virtual nodes)
//!   that lets several serve nodes split one logical cache and forward
//!   misses to the owning peer.
//!
//! ```
//! use qca_store::{Store, StoreOptions};
//! # use qca_adapt::{Adaptation, SmtAdaptation};
//! # use qca_circuit::{Circuit, Gate};
//! # fn demo(adaptation: &Adaptation) -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join("qca-store-demo");
//! let store = Store::open(&dir)?;
//! store.append(0xfeed, adaptation)?;
//! drop(store);
//! // ... process restarts ...
//! let store = Store::open(&dir)?;
//! assert!(store.get(0xfeed).is_some()); // served without re-solving
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ring;
pub mod singleflight;
pub mod store;
pub mod wal;
pub mod wire;

pub use ring::{ShardRing, DEFAULT_VNODES};
pub use singleflight::{Flight, LeaderGuard, SingleFlight};
pub use store::{Store, StoreOptions, StoreStats, SNAPSHOT_FILE, WAL_FILE};
pub use wire::{decode_adaptation, encode_adaptation, WireError};
