//! Binary codec for the on-disk record payloads.
//!
//! Encodes the full [`Adaptation`] tree — circuits, chosen substitutions
//! (including SWAP-insertion routes), solver statistics, and the optional
//! verification data (audit bundle + optimality certificate) — into a
//! self-contained little-endian byte string, and decodes it back
//! **bit-identically**: floating-point fields travel as their IEEE-754 bit
//! patterns, so a decoded adaptation compares equal to the original down to
//! the sign of zero.
//!
//! The format is deliberately dumb: fixed-width little-endian integers,
//! length-prefixed sequences, one tag byte per enum variant. No
//! self-description, no varints, no alignment games — corruption detection
//! is the *frame* checksum's job (see [`crate::wal`]), and schema evolution
//! is the frame version's job. Decoders never panic on malformed input;
//! every failure surfaces as a [`WireError`].

use qca_adapt::{
    Adaptation, Route, SmtAdaptation, Substitution, SubstitutionKind, VerificationData,
};
use qca_circuit::{Circuit, Gate};
use qca_sat::dimacs::Cnf;
use qca_sat::proof::ProofStep;
use qca_sat::{Lit, SolverStats};
use qca_smt::omt::OptimalityCertificate;
use qca_smt::record::{AuditBundle, RecordedConstraint};
use qca_smt::{IntExpr, SmtModel};

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset the decoder had reached.
    pub offset: usize,
    /// What went wrong there.
    pub reason: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a byte buffer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            buf: Vec::with_capacity(256),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern: exact round-trip, `NaN` payloads included.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Sequence length prefix (`u32`: two billion elements is corruption,
    /// not data).
    fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Cursor-based decoder over a byte slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DResult<T> = Result<T, WireError>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn fail<T>(&self, reason: &'static str) -> DResult<T> {
        Err(WireError {
            offset: self.pos,
            reason,
        })
    }

    fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.fail("truncated payload");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> DResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> DResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> DResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).or_else(|_| self.fail("usize overflow"))
    }

    /// Sequence length, sanity-bounded by the bytes actually remaining so a
    /// corrupt length cannot trigger a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> DResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.buf.len() - self.pos {
            return self.fail("length prefix exceeds payload");
        }
        Ok(n)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------- gates

/// One tag byte per variant; parameterized gates append their angles.
fn enc_gate(e: &mut Enc, g: &Gate) {
    match g {
        Gate::I => e.u8(0),
        Gate::X => e.u8(1),
        Gate::Y => e.u8(2),
        Gate::Z => e.u8(3),
        Gate::H => e.u8(4),
        Gate::S => e.u8(5),
        Gate::Sdg => e.u8(6),
        Gate::T => e.u8(7),
        Gate::Tdg => e.u8(8),
        Gate::Sx => e.u8(9),
        Gate::Rx(a) => {
            e.u8(10);
            e.f64(*a);
        }
        Gate::Ry(a) => {
            e.u8(11);
            e.f64(*a);
        }
        Gate::Rz(a) => {
            e.u8(12);
            e.f64(*a);
        }
        Gate::Phase(a) => {
            e.u8(13);
            e.f64(*a);
        }
        Gate::U3(t, p, l) => {
            e.u8(14);
            e.f64(*t);
            e.f64(*p);
            e.f64(*l);
        }
        Gate::Cx => e.u8(15),
        Gate::Cz => e.u8(16),
        Gate::CzDiabatic => e.u8(17),
        Gate::CPhase(a) => {
            e.u8(18);
            e.f64(*a);
        }
        Gate::CRot(a) => {
            e.u8(19);
            e.f64(*a);
        }
        Gate::Swap => e.u8(20),
        Gate::SwapDiabatic => e.u8(21),
        Gate::SwapComposite => e.u8(22),
        Gate::ISwap => e.u8(23),
        Gate::ISwapDg => e.u8(24),
    }
}

fn dec_gate(d: &mut Dec) -> DResult<Gate> {
    Ok(match d.u8()? {
        0 => Gate::I,
        1 => Gate::X,
        2 => Gate::Y,
        3 => Gate::Z,
        4 => Gate::H,
        5 => Gate::S,
        6 => Gate::Sdg,
        7 => Gate::T,
        8 => Gate::Tdg,
        9 => Gate::Sx,
        10 => Gate::Rx(d.f64()?),
        11 => Gate::Ry(d.f64()?),
        12 => Gate::Rz(d.f64()?),
        13 => Gate::Phase(d.f64()?),
        14 => Gate::U3(d.f64()?, d.f64()?, d.f64()?),
        15 => Gate::Cx,
        16 => Gate::Cz,
        17 => Gate::CzDiabatic,
        18 => Gate::CPhase(d.f64()?),
        19 => Gate::CRot(d.f64()?),
        20 => Gate::Swap,
        21 => Gate::SwapDiabatic,
        22 => Gate::SwapComposite,
        23 => Gate::ISwap,
        24 => Gate::ISwapDg,
        _ => return d.fail("unknown gate tag"),
    })
}

// ------------------------------------------------------------- circuits

fn enc_circuit(e: &mut Enc, c: &Circuit) {
    e.usize(c.num_qubits());
    e.len(c.len());
    for instr in c.instrs() {
        enc_gate(e, &instr.gate);
        e.len(instr.qubits.len());
        for &q in &instr.qubits {
            e.usize(q);
        }
    }
}

fn dec_circuit(d: &mut Dec) -> DResult<Circuit> {
    let num_qubits = d.usize()?;
    let n = d.len(1)?;
    let mut c = Circuit::new(num_qubits);
    for _ in 0..n {
        let gate = dec_gate(d)?;
        let nq = d.len(8)?;
        let mut qubits = Vec::with_capacity(nq);
        for _ in 0..nq {
            let q = d.usize()?;
            if q >= num_qubits {
                return d.fail("qubit index out of range");
            }
            qubits.push(q);
        }
        if qubits.len() != gate.num_qubits() {
            return d.fail("operand count does not match gate arity");
        }
        c.push(gate, &qubits);
    }
    Ok(c)
}

// ------------------------------------------------------- SAT-level types

fn enc_lit(e: &mut Enc, l: Lit) {
    e.u32(l.code() as u32);
}

fn dec_lit(d: &mut Dec) -> DResult<Lit> {
    Ok(Lit::from_code(d.u32()? as usize))
}

fn enc_lits(e: &mut Enc, lits: &[Lit]) {
    e.len(lits.len());
    for &l in lits {
        enc_lit(e, l);
    }
}

fn dec_lits(d: &mut Dec) -> DResult<Vec<Lit>> {
    let n = d.len(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_lit(d)?);
    }
    Ok(out)
}

fn enc_cnf(e: &mut Enc, cnf: &Cnf) {
    e.usize(cnf.num_vars);
    e.len(cnf.clauses.len());
    for clause in &cnf.clauses {
        enc_lits(e, clause);
    }
}

fn dec_cnf(d: &mut Dec) -> DResult<Cnf> {
    let num_vars = d.usize()?;
    let n = d.len(4)?;
    let mut clauses = Vec::with_capacity(n);
    for _ in 0..n {
        clauses.push(dec_lits(d)?);
    }
    Ok(Cnf { num_vars, clauses })
}

fn enc_solver_stats(e: &mut Enc, s: &SolverStats) {
    e.u64(s.decisions);
    e.u64(s.propagations);
    e.u64(s.conflicts);
    e.u64(s.restarts);
    e.u64(s.learnt_clauses);
    e.u64(s.deleted_clauses);
    e.u64(s.minimized_literals);
}

fn dec_solver_stats(d: &mut Dec) -> DResult<SolverStats> {
    Ok(SolverStats {
        decisions: d.u64()?,
        propagations: d.u64()?,
        conflicts: d.u64()?,
        restarts: d.u64()?,
        learnt_clauses: d.u64()?,
        deleted_clauses: d.u64()?,
        minimized_literals: d.u64()?,
    })
}

fn enc_proof_step(e: &mut Enc, step: &ProofStep) {
    match step {
        ProofStep::Add(lits) => {
            e.u8(0);
            enc_lits(e, lits);
        }
        ProofStep::Delete(lits) => {
            e.u8(1);
            enc_lits(e, lits);
        }
    }
}

fn dec_proof_step(d: &mut Dec) -> DResult<ProofStep> {
    Ok(match d.u8()? {
        0 => ProofStep::Add(dec_lits(d)?),
        1 => ProofStep::Delete(dec_lits(d)?),
        _ => return d.fail("unknown proof step tag"),
    })
}

// ------------------------------------------------------- SMT-level types

fn enc_int_expr(e: &mut Enc, x: &IntExpr) {
    enc_lits(e, x.bits());
    e.i64(x.offset());
    e.i64(x.lo);
    e.i64(x.hi);
}

fn dec_int_expr(d: &mut Dec) -> DResult<IntExpr> {
    let bits = dec_lits(d)?;
    let offset = d.i64()?;
    let lo = d.i64()?;
    let hi = d.i64()?;
    Ok(IntExpr::from_parts(bits, offset, lo, hi))
}

fn enc_model(e: &mut Enc, m: &SmtModel) {
    let values = m.values();
    e.len(values.len());
    for v in values {
        e.u8(match v {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }
}

fn dec_model(d: &mut Dec) -> DResult<SmtModel> {
    let n = d.len(1)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(match d.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return d.fail("unknown model value tag"),
        });
    }
    Ok(SmtModel::from_raw_values(values))
}

fn enc_constraint(e: &mut Enc, c: &RecordedConstraint) {
    match c {
        RecordedConstraint::Clause(lits) => {
            e.u8(0);
            enc_lits(e, lits);
        }
        RecordedConstraint::IntVar { out } => {
            e.u8(1);
            enc_int_expr(e, out);
        }
        RecordedConstraint::Add { out, a, b } => {
            e.u8(2);
            enc_int_expr(e, out);
            enc_int_expr(e, a);
            enc_int_expr(e, b);
        }
        RecordedConstraint::PbSum { out, base, terms } => {
            e.u8(3);
            enc_int_expr(e, out);
            e.i64(*base);
            e.len(terms.len());
            for (w, l) in terms {
                e.i64(*w);
                enc_lit(e, *l);
            }
        }
        RecordedConstraint::MulConst { out, a, k } => {
            e.u8(4);
            enc_int_expr(e, out);
            enc_int_expr(e, a);
            e.i64(*k);
        }
        RecordedConstraint::SubFromConst { out, c, e: expr } => {
            e.u8(5);
            enc_int_expr(e, out);
            e.i64(*c);
            enc_int_expr(e, expr);
        }
        RecordedConstraint::Ge { a, b } => {
            e.u8(6);
            enc_int_expr(e, a);
            enc_int_expr(e, b);
        }
        RecordedConstraint::GeReified { lit, a, b } => {
            e.u8(7);
            enc_lit(e, *lit);
            enc_int_expr(e, a);
            enc_int_expr(e, b);
        }
        RecordedConstraint::Ite { out, cond, a, b } => {
            e.u8(8);
            enc_int_expr(e, out);
            enc_lit(e, *cond);
            enc_int_expr(e, a);
            enc_int_expr(e, b);
        }
        RecordedConstraint::MaxOf { out, exprs } => {
            e.u8(9);
            enc_int_expr(e, out);
            e.len(exprs.len());
            for x in exprs {
                enc_int_expr(e, x);
            }
        }
    }
}

fn dec_constraint(d: &mut Dec) -> DResult<RecordedConstraint> {
    Ok(match d.u8()? {
        0 => RecordedConstraint::Clause(dec_lits(d)?),
        1 => RecordedConstraint::IntVar {
            out: dec_int_expr(d)?,
        },
        2 => RecordedConstraint::Add {
            out: dec_int_expr(d)?,
            a: dec_int_expr(d)?,
            b: dec_int_expr(d)?,
        },
        3 => {
            let out = dec_int_expr(d)?;
            let base = d.i64()?;
            let n = d.len(12)?;
            let mut terms = Vec::with_capacity(n);
            for _ in 0..n {
                let w = d.i64()?;
                terms.push((w, dec_lit(d)?));
            }
            RecordedConstraint::PbSum { out, base, terms }
        }
        4 => RecordedConstraint::MulConst {
            out: dec_int_expr(d)?,
            a: dec_int_expr(d)?,
            k: d.i64()?,
        },
        5 => RecordedConstraint::SubFromConst {
            out: dec_int_expr(d)?,
            c: d.i64()?,
            e: dec_int_expr(d)?,
        },
        6 => RecordedConstraint::Ge {
            a: dec_int_expr(d)?,
            b: dec_int_expr(d)?,
        },
        7 => RecordedConstraint::GeReified {
            lit: dec_lit(d)?,
            a: dec_int_expr(d)?,
            b: dec_int_expr(d)?,
        },
        8 => RecordedConstraint::Ite {
            out: dec_int_expr(d)?,
            cond: dec_lit(d)?,
            a: dec_int_expr(d)?,
            b: dec_int_expr(d)?,
        },
        9 => {
            let out = dec_int_expr(d)?;
            let n = d.len(28)?;
            let mut exprs = Vec::with_capacity(n);
            for _ in 0..n {
                exprs.push(dec_int_expr(d)?);
            }
            RecordedConstraint::MaxOf { out, exprs }
        }
        _ => return d.fail("unknown constraint tag"),
    })
}

fn enc_verification(e: &mut Enc, v: &VerificationData) {
    e.len(v.bundle.constraints.len());
    for c in &v.bundle.constraints {
        enc_constraint(e, c);
    }
    enc_cnf(e, &v.bundle.cnf);
    enc_model(e, &v.bundle.model);
    match &v.certificate {
        None => e.u8(0),
        Some(cert) => {
            e.u8(1);
            enc_cnf(e, &cert.cnf);
            e.len(cert.steps.len());
            for s in &cert.steps {
                enc_proof_step(e, s);
            }
            e.i64(cert.refuted_bound);
        }
    }
}

fn dec_verification(d: &mut Dec) -> DResult<VerificationData> {
    let n = d.len(1)?;
    let mut constraints = Vec::with_capacity(n);
    for _ in 0..n {
        constraints.push(dec_constraint(d)?);
    }
    let cnf = dec_cnf(d)?;
    let model = dec_model(d)?;
    let certificate = match d.u8()? {
        0 => None,
        1 => {
            let cnf = dec_cnf(d)?;
            let n = d.len(5)?;
            let mut steps = Vec::with_capacity(n);
            for _ in 0..n {
                steps.push(dec_proof_step(d)?);
            }
            let refuted_bound = d.i64()?;
            Some(OptimalityCertificate {
                cnf,
                steps,
                refuted_bound,
            })
        }
        _ => return d.fail("unknown certificate tag"),
    };
    Ok(VerificationData {
        bundle: AuditBundle {
            constraints,
            cnf,
            model,
        },
        certificate,
    })
}

// ------------------------------------------------------------ adaptation

fn enc_substitution_kind(e: &mut Enc, k: SubstitutionKind) {
    e.u8(match k {
        SubstitutionKind::KakCz => 0,
        SubstitutionKind::KakCzDiabatic => 1,
        SubstitutionKind::ConditionalRotation => 2,
        SubstitutionKind::SwapDiabatic => 3,
        SubstitutionKind::SwapComposite => 4,
        SubstitutionKind::RouteSwapDiabatic => 5,
        SubstitutionKind::RouteSwapComposite => 6,
    });
}

fn dec_substitution_kind(d: &mut Dec) -> DResult<SubstitutionKind> {
    Ok(match d.u8()? {
        0 => SubstitutionKind::KakCz,
        1 => SubstitutionKind::KakCzDiabatic,
        2 => SubstitutionKind::ConditionalRotation,
        3 => SubstitutionKind::SwapDiabatic,
        4 => SubstitutionKind::SwapComposite,
        5 => SubstitutionKind::RouteSwapDiabatic,
        6 => SubstitutionKind::RouteSwapComposite,
        _ => return d.fail("unknown substitution kind tag"),
    })
}

fn enc_substitution(e: &mut Enc, s: &Substitution) {
    e.usize(s.id);
    enc_substitution_kind(e, s.kind);
    e.usize(s.block);
    e.len(s.ops.len());
    for &op in &s.ops {
        e.usize(op);
    }
    enc_circuit(e, &s.replacement);
    match &s.route {
        None => e.u8(0),
        Some(route) => {
            e.u8(1);
            e.len(route.path.len());
            for &q in &route.path {
                e.usize(q);
            }
            enc_gate(e, &route.gate);
        }
    }
    e.f64(s.delta_duration);
    e.f64(s.delta_log_fidelity);
}

fn dec_substitution(d: &mut Dec) -> DResult<Substitution> {
    let id = d.usize()?;
    let kind = dec_substitution_kind(d)?;
    let block = d.usize()?;
    let n = d.len(8)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(d.usize()?);
    }
    let replacement = dec_circuit(d)?;
    let route = match d.u8()? {
        0 => None,
        1 => {
            let n = d.len(8)?;
            let mut path = Vec::with_capacity(n);
            for _ in 0..n {
                path.push(d.usize()?);
            }
            let gate = dec_gate(d)?;
            Some(Route { path, gate })
        }
        _ => return d.fail("unknown route tag"),
    };
    let delta_duration = d.f64()?;
    let delta_log_fidelity = d.f64()?;
    Ok(Substitution {
        id,
        kind,
        block,
        ops,
        replacement,
        route,
        delta_duration,
        delta_log_fidelity,
    })
}

fn enc_smt_adaptation(e: &mut Enc, s: &SmtAdaptation) {
    e.len(s.chosen.len());
    for &c in &s.chosen {
        e.usize(c);
    }
    e.i64(s.objective_value);
    e.u64(s.queries);
    e.usize(s.sat_vars);
    e.u8(s.optimal as u8);
    enc_solver_stats(e, &s.solver_stats);
    match &s.verification {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            enc_verification(e, v);
        }
    }
}

fn dec_smt_adaptation(d: &mut Dec) -> DResult<SmtAdaptation> {
    let n = d.len(8)?;
    let mut chosen = Vec::with_capacity(n);
    for _ in 0..n {
        chosen.push(d.usize()?);
    }
    let objective_value = d.i64()?;
    let queries = d.u64()?;
    let sat_vars = d.usize()?;
    let optimal = match d.u8()? {
        0 => false,
        1 => true,
        _ => return d.fail("unknown optimal flag"),
    };
    let solver_stats = dec_solver_stats(d)?;
    let verification = match d.u8()? {
        0 => None,
        1 => Some(dec_verification(d)?),
        _ => return d.fail("unknown verification tag"),
    };
    Ok(SmtAdaptation {
        chosen,
        objective_value,
        queries,
        sat_vars,
        optimal,
        solver_stats,
        verification,
    })
}

/// Encodes one adaptation as a self-contained payload.
pub fn encode_adaptation(a: &Adaptation) -> Vec<u8> {
    let mut e = Enc::new();
    enc_circuit(&mut e, &a.circuit);
    enc_circuit(&mut e, &a.reference);
    e.len(a.chosen.len());
    for s in &a.chosen {
        enc_substitution(&mut e, s);
    }
    e.usize(a.catalog_size);
    enc_smt_adaptation(&mut e, &a.solver);
    e.buf
}

/// Decodes a payload produced by [`encode_adaptation`].
///
/// # Errors
///
/// Returns a [`WireError`] on any truncation, unknown tag, out-of-range
/// index, or trailing garbage; the decoder never panics on bad input.
pub fn decode_adaptation(buf: &[u8]) -> Result<Adaptation, WireError> {
    let mut d = Dec::new(buf);
    let circuit = dec_circuit(&mut d)?;
    let reference = dec_circuit(&mut d)?;
    let n = d.len(1)?;
    let mut chosen = Vec::with_capacity(n);
    for _ in 0..n {
        chosen.push(dec_substitution(&mut d)?);
    }
    let catalog_size = d.usize()?;
    let solver = dec_smt_adaptation(&mut d)?;
    if !d.done() {
        return d.fail("trailing bytes after adaptation");
    }
    Ok(Adaptation {
        circuit,
        reference,
        chosen,
        catalog_size,
        solver,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_tags_round_trip() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rx(0.25),
            Gate::Ry(-0.5),
            Gate::Rz(std::f64::consts::PI),
            Gate::Phase(1e-300),
            Gate::U3(0.1, -0.2, 0.3),
            Gate::Cx,
            Gate::Cz,
            Gate::CzDiabatic,
            Gate::CPhase(-0.0),
            Gate::CRot(std::f64::consts::PI),
            Gate::Swap,
            Gate::SwapDiabatic,
            Gate::SwapComposite,
            Gate::ISwap,
            Gate::ISwapDg,
        ];
        for g in gates {
            let mut e = Enc::new();
            enc_gate(&mut e, &g);
            let mut d = Dec::new(&e.buf);
            let back = dec_gate(&mut d).unwrap();
            assert!(d.done());
            // Bit-level comparison: -0.0 must stay -0.0.
            let mut ea = Enc::new();
            enc_gate(&mut ea, &g);
            let mut eb = Enc::new();
            enc_gate(&mut eb, &back);
            assert_eq!(ea.buf, eb.buf, "gate {g:?} did not round-trip exactly");
        }
    }

    #[test]
    fn unknown_tags_are_errors_not_panics() {
        assert!(dec_gate(&mut Dec::new(&[200])).is_err());
        assert!(dec_proof_step(&mut Dec::new(&[9])).is_err());
        assert!(dec_substitution_kind(&mut Dec::new(&[7])).is_err());
        assert!(dec_constraint(&mut Dec::new(&[77])).is_err());
        assert!(decode_adaptation(&[1, 2, 3]).is_err());
        assert!(decode_adaptation(&[]).is_err());
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocation() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // absurd clause count
        let mut d = Dec::new(&e.buf);
        assert_eq!(
            d.len(4).unwrap_err().reason,
            "length prefix exceeds payload"
        );
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.5), &[2]);
        let a = Adaptation {
            circuit: c.clone(),
            reference: c,
            chosen: Vec::new(),
            catalog_size: 0,
            solver: SmtAdaptation {
                chosen: vec![1, 2],
                objective_value: -7,
                queries: 3,
                sat_vars: 11,
                optimal: true,
                solver_stats: SolverStats::default(),
                verification: None,
            },
        };
        let bytes = encode_adaptation(&a);
        assert!(decode_adaptation(&bytes).is_ok());
        for cut in 0..bytes.len() {
            assert!(
                decode_adaptation(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }
}
