//! Single-flight deduplication: N concurrent requests for the same key
//! produce exactly one unit of work.
//!
//! The first caller to [`SingleFlight::join`] for a key becomes the
//! *leader* and receives a [`LeaderGuard`]; it performs the expensive solve
//! and publishes the result with [`LeaderGuard::complete`]. Every other
//! caller becomes a *follower* and blocks until the leader publishes —
//! periodically re-checking its own cancellation flag so a cancelled
//! request never waits out another job's solve.
//!
//! The guard completes with `None` on drop, so a panicking leader releases
//! its followers instead of wedging them; a follower that receives `None`
//! simply does the work itself.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How often a blocked follower re-checks its cancellation flag.
const FOLLOWER_POLL: Duration = Duration::from_millis(10);

struct FlightState<V> {
    slot: Mutex<(bool, Option<V>)>,
    ready: Condvar,
}

/// Outcome of [`SingleFlight::join`].
pub enum Flight<V> {
    /// This caller must do the work and publish via the guard.
    Leader(LeaderGuard<V>),
    /// Another caller did the work; `None` means it failed or panicked.
    Follower(Option<V>),
    /// The caller's cancellation flag tripped while waiting.
    Cancelled,
}

/// Deduplicates concurrent work per `u64` key.
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<u64, Arc<FlightState<V>>>>,
}

impl<V> std::fmt::Debug for SingleFlight<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl<V> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<V> SingleFlight<V> {
    /// Creates an empty table.
    pub fn new() -> SingleFlight<V> {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Number of in-flight keys (for tests and metrics).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().unwrap().len()
    }
}

impl<V: Clone> SingleFlight<V> {
    /// Joins the flight for `key`. `cancelled` is polled while blocked; it
    /// should be cheap (an atomic load).
    pub fn join(self: &Arc<Self>, key: u64, cancelled: impl Fn() -> bool) -> Flight<V> {
        let state = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get(&key) {
                Some(state) => Arc::clone(state),
                None => {
                    let state = Arc::new(FlightState {
                        slot: Mutex::new((false, None)),
                        ready: Condvar::new(),
                    });
                    flights.insert(key, Arc::clone(&state));
                    return Flight::Leader(LeaderGuard {
                        table: Arc::clone(self),
                        key,
                        state,
                        published: false,
                    });
                }
            }
        };
        let mut slot = state.slot.lock().unwrap();
        loop {
            if slot.0 {
                return Flight::Follower(slot.1.clone());
            }
            if cancelled() {
                return Flight::Cancelled;
            }
            let (guard, _timeout) = state.ready.wait_timeout(slot, FOLLOWER_POLL).unwrap();
            slot = guard;
        }
    }

    fn finish(&self, key: u64, state: &Arc<FlightState<V>>, value: Option<V>) {
        {
            let mut slot = state.slot.lock().unwrap();
            slot.0 = true;
            slot.1 = value;
        }
        state.ready.notify_all();
        let mut flights = self.flights.lock().unwrap();
        // Only remove our own flight: a follower that re-joins after this
        // point starts a fresh flight, which is correct.
        if let Some(current) = flights.get(&key) {
            if Arc::ptr_eq(current, state) {
                flights.remove(&key);
            }
        }
    }
}

/// Held by the leader; publishing (or dropping) releases the followers.
pub struct LeaderGuard<V> {
    table: Arc<SingleFlight<V>>,
    key: u64,
    state: Arc<FlightState<V>>,
    published: bool,
}

impl<V: Clone> LeaderGuard<V> {
    /// Publishes the result (`None` = the work failed; followers retry on
    /// their own) and retires the flight.
    pub fn complete(mut self, value: Option<V>) {
        self.published = true;
        self.table.finish(self.key, &self.state, value);
    }
}

impl<V> Drop for LeaderGuard<V> {
    fn drop(&mut self) {
        if !self.published {
            // Leader panicked or bailed: wake followers with "no result".
            {
                let mut slot = self.state.slot.lock().unwrap();
                slot.0 = true;
                slot.1 = None;
            }
            self.state.ready.notify_all();
            let mut flights = self.table.flights.lock().unwrap();
            if let Some(current) = flights.get(&self.key) {
                if Arc::ptr_eq(current, &self.state) {
                    flights.remove(&self.key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn one_leader_many_followers() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let solves = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sf = Arc::clone(&sf);
            let solves = Arc::clone(&solves);
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                match sf.join(42, || false) {
                    Flight::Leader(guard) => {
                        solves.fetch_add(1, Ordering::SeqCst);
                        thread::sleep(Duration::from_millis(30));
                        guard.complete(Some(7));
                        7
                    }
                    Flight::Follower(v) => v.expect("leader published"),
                    Flight::Cancelled => unreachable!(),
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn panicking_leader_releases_followers_with_none() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let sf2 = Arc::clone(&sf);
        let leader = thread::spawn(move || {
            let Flight::Leader(_guard) = sf2.join(1, || false) else {
                panic!("expected leadership");
            };
            panic!("solve blew up");
        });
        // Wait until the flight exists, then join as follower.
        while sf.in_flight() == 0 {
            thread::yield_now();
        }
        let got = match sf.join(1, || false) {
            Flight::Follower(v) => v,
            Flight::Leader(g) => {
                // Leader already unwound; we become the retry leader.
                g.complete(None);
                None
            }
            Flight::Cancelled => unreachable!(),
        };
        assert_eq!(got, None);
        assert!(leader.join().is_err());
    }

    #[test]
    fn cancelled_follower_stops_waiting() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let Flight::Leader(guard) = sf.join(9, || false) else {
            panic!("expected leadership");
        };
        let cancel = Arc::new(AtomicBool::new(false));
        let sf2 = Arc::clone(&sf);
        let cancel2 = Arc::clone(&cancel);
        let follower = thread::spawn(move || {
            matches!(
                sf2.join(9, move || cancel2.load(Ordering::SeqCst)),
                Flight::Cancelled
            )
        });
        thread::sleep(Duration::from_millis(20));
        cancel.store(true, Ordering::SeqCst);
        assert!(
            follower.join().unwrap(),
            "follower should observe cancellation"
        );
        guard.complete(Some(1));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let Flight::Leader(a) = sf.join(1, || false) else {
            panic!()
        };
        let Flight::Leader(b) = sf.join(2, || false) else {
            panic!()
        };
        assert_eq!(sf.in_flight(), 2);
        a.complete(Some(1));
        b.complete(Some(2));
        assert_eq!(sf.in_flight(), 0);
    }
}
