//! The persistent store: append-only WAL + periodically compacted snapshot.
//!
//! A [`Store`] owns a directory with two files:
//!
//! * `wal.qcs` — the write-ahead log; every [`Store::append`] adds one frame
//!   and (by default) fsyncs before returning, so an acknowledged write
//!   survives `kill -9`.
//! * `snapshot.qcs` — a compacted rewrite holding one frame per live key.
//!
//! When the WAL accumulates [`StoreOptions::compact_after`] records, the
//! store rewrites all live records into `snapshot.tmp`, fsyncs it, renames
//! it over `snapshot.qcs`, and truncates the WAL back to a bare header —
//! the rename is the atomic commit point, so a crash at any step leaves
//! either the old or the new snapshot fully intact.
//!
//! [`Store::open`] recovers both files with the rules in [`crate::wal`]:
//! the longest intact prefix of frames wins, a torn tail is truncated away,
//! and a damaged header resets that file. Recovery never fails the open —
//! a cache must come up even if the disk ate its homework.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qca_adapt::Adaptation;

use crate::wal::{
    frame_bytes, read_value_at, scan, write_header, FrameLoc, HEADER_LEN, MAGIC_SNAP, MAGIC_WAL,
};
use crate::wire::{decode_adaptation, encode_adaptation};

/// WAL file name inside the store directory.
pub const WAL_FILE: &str = "wal.qcs";
/// Snapshot file name inside the store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.qcs";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Tuning knobs for [`Store::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Rewrite the snapshot once this many WAL records accumulate.
    pub compact_after: usize,
    /// Fsync the WAL after every append. Turning this off trades crash
    /// durability of the newest writes for latency; recovery still drops
    /// only the torn tail.
    pub fsync: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            compact_after: 1024,
            fsync: true,
        }
    }
}

/// Point-in-time counters and sizes, surfaced in `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records served from disk (missed the in-memory cache, found here).
    pub hits: u64,
    /// Lookups that missed both the memory cache and the store.
    pub misses: u64,
    /// Records replayed into the in-memory cache on warm restart.
    pub replays: u64,
    /// Snapshot compactions performed since open.
    pub compactions: u64,
    /// Torn-tail bytes dropped during recovery at open.
    pub recovered_dropped_bytes: u64,
    /// Live keys currently indexed.
    pub live_records: u64,
    /// Records sitting in the WAL (not yet compacted).
    pub wal_records: u64,
    /// WAL file length in bytes.
    pub wal_bytes: u64,
}

/// Where the newest frame for a key lives.
#[derive(Debug, Clone, Copy)]
struct Loc {
    in_wal: bool,
    frame: FrameLoc,
}

struct Inner {
    dir: PathBuf,
    wal: File,
    snapshot: File,
    /// Newest location per key; WAL entries shadow snapshot entries.
    index: HashMap<u64, Loc>,
    wal_len: u64,
    wal_records: u64,
    opts: StoreOptions,
}

/// Persistent, crash-safe map of cache key → [`Adaptation`].
///
/// All methods take `&self`; file access is serialized behind one mutex
/// (reads are rare — they only happen on memory-cache misses), counters are
/// lock-free atomics.
pub struct Store {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    replays: AtomicU64,
    compactions: AtomicU64,
    recovered_dropped_bytes: u64,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Store").field("stats", &stats).finish()
    }
}

/// Opens (or repairs) one framed file, truncating any torn tail.
fn open_framed(path: &Path, magic: [u8; 8]) -> io::Result<(File, Vec<FrameLoc>, u64, u64)> {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    let r = scan(&bytes, magic);
    if r.bad_header {
        f.set_len(0)?;
        f.seek(SeekFrom::Start(0))?;
        write_header(&mut f, magic)?;
        f.sync_all()?;
        return Ok((f, Vec::new(), HEADER_LEN, r.dropped_bytes));
    }
    if r.dropped_bytes > 0 {
        f.set_len(r.good_len)?;
        f.sync_all()?;
    }
    f.seek(SeekFrom::Start(r.good_len))?;
    Ok((f, r.frames, r.good_len, r.dropped_bytes))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Durable rename needs the directory entry flushed too.
    File::open(dir)?.sync_all()
}

impl Store {
    /// Opens the store in `dir` (created if missing) with default options.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        Store::open_with(dir, StoreOptions::default())
    }

    /// Opens the store in `dir` with explicit [`StoreOptions`].
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // A crash between writing snapshot.tmp and the rename leaves the
        // tmp file behind; it was never committed, so discard it.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));

        let (snapshot, snap_frames, _, snap_dropped) =
            open_framed(&dir.join(SNAPSHOT_FILE), MAGIC_SNAP)?;
        let (wal, wal_frames, wal_len, wal_dropped) = open_framed(&dir.join(WAL_FILE), MAGIC_WAL)?;

        let mut index = HashMap::new();
        for frame in &snap_frames {
            index.insert(
                frame.key,
                Loc {
                    in_wal: false,
                    frame: *frame,
                },
            );
        }
        for frame in &wal_frames {
            index.insert(
                frame.key,
                Loc {
                    in_wal: true,
                    frame: *frame,
                },
            );
        }
        Ok(Store {
            inner: Mutex::new(Inner {
                dir,
                wal,
                snapshot,
                index,
                wal_len,
                wal_records: wal_frames.len() as u64,
                opts,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            recovered_dropped_bytes: snap_dropped + wal_dropped,
        })
    }

    /// Looks up one adaptation by cache key, decoding it from disk.
    pub fn get(&self, key: u64) -> Option<Arc<Adaptation>> {
        let mut inner = self.inner.lock().unwrap();
        let Some(loc) = inner.index.get(&key).copied() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let file = if loc.in_wal {
            &mut inner.wal
        } else {
            &mut inner.snapshot
        };
        let value = read_value_at(file, loc.frame).ok().flatten();
        drop(inner);
        match value.and_then(|v| decode_adaptation(&v).ok()) {
            Some(a) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(a))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Appends one record to the WAL (fsynced per [`StoreOptions::fsync`])
    /// and compacts when the WAL is due.
    pub fn append(&self, key: u64, value: &Adaptation) -> io::Result<()> {
        let bytes = frame_bytes(key, &encode_adaptation(value));
        let mut inner = self.inner.lock().unwrap();
        let offset = inner.wal_len;
        inner.wal.seek(SeekFrom::Start(offset))?;
        inner.wal.write_all(&bytes)?;
        if inner.opts.fsync {
            inner.wal.sync_data()?;
        }
        inner.wal_len += bytes.len() as u64;
        inner.wal_records += 1;
        inner.index.insert(
            key,
            Loc {
                in_wal: true,
                frame: FrameLoc {
                    key,
                    offset,
                    len: bytes.len() as u64,
                },
            },
        );
        if inner.wal_records >= inner.opts.compact_after as u64 {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Rewrites all live records into a fresh snapshot and empties the WAL.
    pub fn compact(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> io::Result<()> {
        // Collect live values in deterministic (key-sorted) order. Reads go
        // through the index so WAL versions shadow snapshot versions.
        let mut keys: Vec<u64> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        let mut records = Vec::with_capacity(keys.len());
        for key in keys {
            let loc = inner.index[&key];
            let file = if loc.in_wal {
                &mut inner.wal
            } else {
                &mut inner.snapshot
            };
            if let Some(value) = read_value_at(file, loc.frame)? {
                records.push((key, value));
            }
        }

        let tmp_path = inner.dir.join(SNAPSHOT_TMP);
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        write_header(&mut tmp, MAGIC_SNAP)?;
        let mut offset = HEADER_LEN;
        let mut new_index = HashMap::with_capacity(records.len());
        for (key, value) in &records {
            let bytes = frame_bytes(*key, value);
            tmp.write_all(&bytes)?;
            new_index.insert(
                *key,
                Loc {
                    in_wal: false,
                    frame: FrameLoc {
                        key: *key,
                        offset,
                        len: bytes.len() as u64,
                    },
                },
            );
            offset += bytes.len() as u64;
        }
        tmp.sync_all()?;
        // Atomic commit point: after this rename the new snapshot is the
        // durable truth and the WAL contents are redundant.
        fs::rename(&tmp_path, inner.dir.join(SNAPSHOT_FILE))?;
        sync_dir(&inner.dir)?;

        inner.snapshot = tmp;
        inner.index = new_index;
        inner.wal.set_len(HEADER_LEN)?;
        inner.wal.sync_all()?;
        inner.wal.seek(SeekFrom::Start(HEADER_LEN))?;
        inner.wal_len = HEADER_LEN;
        inner.wal_records = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Replays every live record in deterministic order — snapshot frames
    /// first, then WAL frames, both oldest-first — so an LRU fed by this
    /// ends up with the newest writes as most-recently-used. Counts each
    /// record as a replay.
    pub fn replay(&self, mut f: impl FnMut(u64, Arc<Adaptation>)) {
        let mut inner = self.inner.lock().unwrap();
        let mut locs: Vec<Loc> = inner.index.values().copied().collect();
        locs.sort_by_key(|l| (l.in_wal, l.frame.offset));
        for loc in locs {
            let file = if loc.in_wal {
                &mut inner.wal
            } else {
                &mut inner.snapshot
            };
            if let Some(value) = read_value_at(file, loc.frame).ok().flatten() {
                if let Ok(a) = decode_adaptation(&value) {
                    self.replays.fetch_add(1, Ordering::Relaxed);
                    f(loc.frame.key, Arc::new(a));
                }
            }
        }
    }

    /// Forces any buffered WAL bytes to disk; used by graceful drain.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.wal.flush()?;
        inner.wal.sync_data()
    }

    /// Current counters and sizes.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap();
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            recovered_dropped_bytes: self.recovered_dropped_bytes,
            live_records: inner.index.len() as u64,
            wal_records: inner.wal_records,
            wal_bytes: inner.wal_len,
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().index.len()
    }

    /// True when no live keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
