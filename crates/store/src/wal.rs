//! Checksummed, length-prefixed record framing for the WAL and snapshot
//! files.
//!
//! Both files share one layout:
//!
//! ```text
//! [8-byte magic][u32 version]                  — file header, 12 bytes
//! [u32 len][u64 fnv64(payload)][payload] ...   — zero or more frames
//! payload = [u64 cache key][encoded Adaptation]
//! ```
//!
//! All integers are little-endian. The only difference between the WAL and
//! a snapshot is the magic (`qcawal01` vs `qcasnp01`) — snapshots are just
//! a WAL that was rewritten with one frame per live key.
//!
//! # Recovery rules
//!
//! [`scan`] walks frames from the header forward and accepts the longest
//! *prefix* of intact frames. A frame is damaged when its length prefix is
//! short, implausibly large, or runs past end-of-file; when its checksum
//! does not match the payload; or when the payload fails to decode. The
//! first damaged frame ends the scan — everything before it is durable,
//! everything from it onward is a torn tail from an interrupted write and
//! is reported as `dropped_bytes` for the caller to truncate away. A bad
//! or short header rejects the whole file.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};

use qca_circuit::hash::Fnv64;

use crate::wire::{decode_adaptation, WireError};

/// Magic for write-ahead log files.
pub const MAGIC_WAL: [u8; 8] = *b"qcawal01";
/// Magic for compacted snapshot files.
pub const MAGIC_SNAP: [u8; 8] = *b"qcasnp01";
/// On-disk format version, bumped on incompatible layout changes.
pub const VERSION: u32 = 1;
/// Bytes of file header preceding the first frame.
pub const HEADER_LEN: u64 = 12;
/// Per-frame overhead: `u32` length + `u64` checksum.
pub const FRAME_OVERHEAD: u64 = 12;
/// Upper bound on a single payload; larger length prefixes are corruption.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Checksum over a frame payload (key bytes included).
fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(payload);
    h.finish()
}

/// Writes a fresh file header. The caller positions the file.
pub fn write_header(f: &mut File, magic: [u8; 8]) -> io::Result<()> {
    f.write_all(&magic)?;
    f.write_all(&VERSION.to_le_bytes())
}

/// Serializes one frame (length prefix, checksum, payload) for `key`.
pub fn frame_bytes(key: u64, value: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + value.len());
    payload.extend_from_slice(&key.to_le_bytes());
    payload.extend_from_slice(value);
    let mut out = Vec::with_capacity(FRAME_OVERHEAD as usize + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// One intact frame found by [`scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLoc {
    /// Cache key stored in the frame.
    pub key: u64,
    /// File offset of the frame's length prefix.
    pub offset: u64,
    /// Total frame size including the 12-byte overhead.
    pub len: u64,
}

/// Result of walking a WAL or snapshot file.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Intact frames in file order (oldest first).
    pub frames: Vec<FrameLoc>,
    /// File length up to and including the last intact frame; the file
    /// should be truncated here if `dropped_bytes > 0`.
    pub good_len: u64,
    /// Bytes of torn tail past the last intact frame.
    pub dropped_bytes: u64,
    /// True when the header itself was missing or damaged, in which case
    /// the whole file is discarded (`good_len` covers just a fresh header).
    pub bad_header: bool,
}

/// Walks every frame in `bytes` (the full file contents) and applies the
/// recovery rules above.
pub fn scan(bytes: &[u8], magic: [u8; 8]) -> ScanResult {
    let mut r = ScanResult {
        good_len: HEADER_LEN,
        ..ScanResult::default()
    };
    if bytes.len() < HEADER_LEN as usize
        || bytes[..8] != magic
        || bytes[8..12] != VERSION.to_le_bytes()
    {
        r.bad_header = true;
        r.dropped_bytes = bytes.len() as u64;
        return r;
    }
    let mut pos = HEADER_LEN as usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let Some(frame) = check_frame(rest) else {
            break;
        };
        r.frames.push(FrameLoc {
            key: frame.0,
            offset: pos as u64,
            len: frame.1,
        });
        pos += frame.1 as usize;
    }
    r.good_len = pos as u64;
    r.dropped_bytes = (bytes.len() - pos) as u64;
    r
}

/// Validates the frame at the start of `rest`; returns `(key, frame_len)`
/// when intact.
fn check_frame(rest: &[u8]) -> Option<(u64, u64)> {
    if rest.len() < FRAME_OVERHEAD as usize {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if !(8..=MAX_PAYLOAD).contains(&len) {
        return None;
    }
    let total = FRAME_OVERHEAD as usize + len as usize;
    if rest.len() < total {
        return None;
    }
    let want = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let payload = &rest[12..total];
    if checksum(payload) != want {
        return None;
    }
    let key = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    // A frame whose checksum matches but whose payload does not decode was
    // written by a future or foreign producer; treat it as damage too.
    if decode_adaptation(&payload[8..]).is_err() {
        return None;
    }
    Some((key, total as u64))
}

/// Reads the value bytes of the frame at `offset` (checksum re-verified, so
/// a record damaged *after* recovery is caught at read time too).
pub fn read_value_at(f: &mut File, loc: FrameLoc) -> io::Result<Option<Vec<u8>>> {
    f.seek(SeekFrom::Start(loc.offset))?;
    let mut frame = vec![0u8; loc.len as usize];
    if f.read_exact(&mut frame).is_err() {
        return Ok(None);
    }
    match check_frame(&frame) {
        Some((key, _)) if key == loc.key => Ok(Some(frame[20..].to_vec())),
        _ => Ok(None),
    }
}

/// Decode error type re-exported for store-level error reporting.
pub type DecodeError = WireError;

#[cfg(test)]
mod tests {
    use super::*;
    use qca_adapt::{Adaptation, SmtAdaptation};
    use qca_circuit::{Circuit, Gate};
    use qca_sat::SolverStats;

    fn tiny_adaptation() -> Adaptation {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        Adaptation {
            circuit: c.clone(),
            reference: c,
            chosen: Vec::new(),
            catalog_size: 3,
            solver: SmtAdaptation {
                chosen: vec![0],
                objective_value: 5,
                queries: 1,
                sat_vars: 4,
                optimal: true,
                solver_stats: SolverStats::default(),
                verification: None,
            },
        }
    }

    fn file_with_frames(n: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_WAL);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        let value = crate::wire::encode_adaptation(&tiny_adaptation());
        for k in 0..n {
            bytes.extend_from_slice(&frame_bytes(k as u64, &value));
        }
        bytes
    }

    #[test]
    fn scan_accepts_intact_files() {
        let bytes = file_with_frames(3);
        let r = scan(&bytes, MAGIC_WAL);
        assert!(!r.bad_header);
        assert_eq!(r.frames.len(), 3);
        assert_eq!(r.good_len, bytes.len() as u64);
        assert_eq!(r.dropped_bytes, 0);
        assert_eq!(r.frames[2].key, 2);
    }

    #[test]
    fn torn_tail_drops_only_the_damaged_suffix() {
        let bytes = file_with_frames(3);
        let full = bytes.len();
        // Cut mid-way through the last frame.
        let r = scan(&bytes[..full - 5], MAGIC_WAL);
        assert_eq!(r.frames.len(), 2);
        assert!(r.dropped_bytes > 0);
        assert_eq!(r.good_len + r.dropped_bytes, (full - 5) as u64);
    }

    #[test]
    fn bit_flip_in_payload_drops_that_frame_onward() {
        let mut bytes = file_with_frames(3);
        let r0 = scan(&bytes, MAGIC_WAL);
        // Flip one bit inside the second frame's payload.
        let target = (r0.frames[1].offset + FRAME_OVERHEAD + 10) as usize;
        bytes[target] ^= 0x40;
        let r = scan(&bytes, MAGIC_WAL);
        assert_eq!(r.frames.len(), 1);
        assert_eq!(r.frames[0].key, 0);
        assert!(r.dropped_bytes > 0);
    }

    #[test]
    fn wrong_magic_rejects_the_file() {
        let bytes = file_with_frames(1);
        let r = scan(&bytes, MAGIC_SNAP);
        assert!(r.bad_header);
        assert_eq!(r.good_len, HEADER_LEN);
    }

    #[test]
    fn empty_and_header_only_files_are_clean() {
        let r = scan(&[], MAGIC_WAL);
        assert!(r.bad_header);
        let bytes = file_with_frames(0);
        let r = scan(&bytes, MAGIC_WAL);
        assert!(!r.bad_header);
        assert!(r.frames.is_empty());
        assert_eq!(r.dropped_bytes, 0);
    }
}
