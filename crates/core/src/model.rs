//! SMT model construction and solving (paper §IV-C).
//!
//! Variables: choice Booleans `c_s` per substitution, block start times
//! `e_b`, block durations `d_b` (linear pseudo-Boolean sums, Eq. 3), block
//! log-fidelities folded into one linear sum (Eq. 5), and the total duration
//! `D`. Constraints: substitution conflicts (Eq. 1) and block dependencies
//! (Eq. 2). Objectives: fidelity (Eq. 8), qubit idle time (Eq. 9), or the
//! combined success exponent (Eq. 10), maximized by the OMT engine.
//!
//! All quantities are fixed-point integers: durations in nanoseconds,
//! log-fidelities in units of `1e-6` (the paper's log-domain trick keeps
//! everything linear).

use crate::context::AdaptContext;
use crate::error::AdaptError;
use crate::preprocess::Preprocessed;
use crate::rules::Substitution;
use qca_hw::HardwareModel;
use qca_smt::omt::OptimalityCertificate;
use qca_smt::{omt, AuditBundle, IntExpr, SmtSolver};
use std::time::Duration;

/// Default per-probe conflict budget for the OMT search. The scheduling
/// objectives produce arithmetic-heavy UNSAT probes that plain clause
/// learning handles poorly (resolution cannot count); capping each probe
/// keeps adaptation fast while `SmtAdaptation::optimal` reports whether the
/// search was exact.
pub const DEFAULT_PROBE_BUDGET: u64 = 2_000;

/// Fixed-point scale for log-fidelities. Chosen as `10 * T2` so the
/// idle-time exponent weight per nanosecond is exactly `K = 10`: small
/// integer weights keep the bit-blasted adders narrow (the dominant factor
/// in OMT solve time) while the log-fidelity resolution (3.4e-5) stays well
/// below any per-gate delta.
///
/// Public because it defines the unit of [`SmtAdaptation::objective_value`]:
/// auditors (`qca-verify`) recompute objective values from the hardware gate
/// tables and must convert into the same fixed-point frame.
pub const LOG_SCALE: f64 = 29_000.0;

/// Optimization objective (paper Eqs. 8–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// `SAT F`: maximize the summed block log-fidelity (Eq. 8).
    #[default]
    Fidelity,
    /// `SAT R`: minimize aggregate qubit idle time (Eq. 9).
    IdleTime,
    /// `SAT P`: maximize log-fidelity minus the idle-time decay exponent
    /// (Eq. 10).
    Combined,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::Fidelity => write!(f, "SAT F"),
            Objective::IdleTime => write!(f, "SAT R"),
            Objective::Combined => write!(f, "SAT P"),
        }
    }
}

/// Result of solving the adaptation model.
#[derive(Debug, Clone)]
pub struct SmtAdaptation {
    /// Ids of the chosen substitutions (`c_s = true`).
    pub chosen: Vec<usize>,
    /// Optimal objective value in fixed-point units.
    pub objective_value: i64,
    /// Number of SAT queries issued by the OMT search.
    pub queries: u64,
    /// Number of SAT variables in the bit-blasted model.
    pub sat_vars: usize,
    /// `true` when the OMT search proved optimality (no probe hit its
    /// conflict budget).
    pub optimal: bool,
    /// SAT solver statistics accumulated over the whole OMT search (the
    /// solver is fresh per call, so these are exact per-adaptation counts).
    pub solver_stats: qca_sat::SolverStats,
    /// Audit bundle and optimality certificate, present when the context
    /// requested certification ([`crate::AdaptOptions::certify`]).
    pub verification: Option<VerificationData>,
}

/// Everything an independent checker (`qca-verify`) needs to re-validate a
/// solve without trusting the solver stack.
#[derive(Debug, Clone)]
pub struct VerificationData {
    /// Recorded constraints, shadow formula, and the returned model.
    pub bundle: AuditBundle,
    /// DRAT refutation of `objective >= value + 1`; only present when the
    /// search proved optimality.
    pub certificate: Option<OptimalityCertificate>,
}

/// Resource limits for a model solve, driven by the batch engine's per-job
/// budgets. Cooperative cancellation lives on
/// [`AdaptContext::cancel`](crate::AdaptContext) alongside these limits.
#[derive(Debug, Clone, Default)]
pub struct AdaptLimits {
    /// Cap on the *total* SAT conflicts across the whole OMT search
    /// (all probes combined); `None` for unlimited. Tripping the cap
    /// degrades to the best incumbent, or [`AdaptError::Cancelled`] if
    /// none exists yet.
    pub total_conflicts: Option<u64>,
}

impl AdaptLimits {
    /// Conservative default conflict rate used by
    /// [`AdaptLimits::for_deadline`]: well below what the CDCL solver
    /// sustains on this workload's arithmetic-heavy models, so a
    /// deadline-derived budget trips *before* the wall clock on any
    /// reasonable machine and the result stays deterministic.
    pub const CONFLICTS_PER_MS: u64 = 500;

    /// Maps a wall-clock budget onto a deterministic total-conflict cap at
    /// `conflicts_per_ms` (see [`AdaptLimits::CONFLICTS_PER_MS`]).
    ///
    /// The conversion is intentionally a *limit*, not a promise: conflict
    /// counts are machine-independent, so the same deadline always degrades
    /// at the same point in the search, while an actual wall-clock
    /// guarantee additionally needs a [`crate::deadline::Watchdog`] flag
    /// armed on the
    /// [`AdaptContext`]. Sub-millisecond deadlines
    /// round up to a one-conflict budget rather than an unsatisfiable zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use qca_adapt::AdaptLimits;
    /// use std::time::Duration;
    ///
    /// let limits = AdaptLimits::for_deadline(Duration::from_millis(20), None);
    /// assert_eq!(limits.total_conflicts, Some(20 * AdaptLimits::CONFLICTS_PER_MS));
    /// ```
    pub fn for_deadline(deadline: Duration, conflicts_per_ms: Option<u64>) -> AdaptLimits {
        let rate = conflicts_per_ms.unwrap_or(Self::CONFLICTS_PER_MS).max(1);
        let budget = (deadline.as_millis() as u64).saturating_mul(rate).max(1);
        AdaptLimits {
            total_conflicts: Some(budget),
        }
    }
}

/// Integer cost data shared between the SMT encoding and the greedy warm
/// start, so both compute bit-identical objective values.
struct CostData {
    /// Per-substitution scaled log-fidelity delta.
    fid_w: Vec<i64>,
    /// Per-substitution duration delta (ns).
    dur_w: Vec<i64>,
    /// Per-substitution busy-time delta (scaled).
    busy_w: Vec<i64>,
    /// Scaled reference log-fidelity sum.
    fid_base: i64,
    /// Per-block reference durations (ns).
    dur_base: Vec<i64>,
    /// Scaled reference busy time.
    busy_base: i64,
    /// Idle weight per nanosecond (scaled).
    k: i64,
    /// Number of qubits.
    q: i64,
}

impl CostData {
    fn new(pre: &Preprocessed, hw: &HardwareModel, catalog: &[Substitution]) -> CostData {
        let scaled = |x: f64| (x * LOG_SCALE).round() as i64;
        let k = (LOG_SCALE / hw.t2()).round() as i64;
        let nblocks = pre.partition.blocks.len();
        let fid_w = catalog
            .iter()
            .map(|s| scaled(s.delta_log_fidelity))
            .collect();
        let dur_w: Vec<i64> = catalog
            .iter()
            .map(|s| s.delta_duration.round() as i64)
            .collect();
        let busy_w = catalog
            .iter()
            .zip(&dur_w)
            .map(|(s, &d)| k * pre.partition.blocks[s.block].qubits.len() as i64 * d)
            .collect();
        let dur_base: Vec<i64> = (0..nblocks)
            .map(|b| pre.cost[b].duration.round() as i64)
            .collect();
        let busy_base = (0..nblocks)
            .map(|b| k * pre.partition.blocks[b].qubits.len() as i64 * dur_base[b])
            .sum();
        CostData {
            fid_w,
            dur_w,
            busy_w,
            fid_base: scaled(pre.reference_log_fidelity()),
            dur_base,
            busy_base,
            k,
            q: pre.source.num_qubits() as i64,
        }
    }

    /// Evaluates the exact model objective of a concrete selection.
    fn evaluate(
        &self,
        pre: &Preprocessed,
        catalog: &[Substitution],
        selection: &[bool],
        objective: Objective,
    ) -> i64 {
        let fid: i64 = self.fid_base
            + selection
                .iter()
                .zip(&self.fid_w)
                .filter(|&(&s, _)| s)
                .map(|(_, &w)| w)
                .sum::<i64>();
        if objective == Objective::Fidelity {
            return fid;
        }
        let nblocks = pre.partition.blocks.len();
        let mut dur = self.dur_base.clone();
        let mut busy = self.busy_base;
        for (i, s) in catalog.iter().enumerate() {
            if selection[i] {
                dur[s.block] += self.dur_w[i];
                busy += self.busy_w[i];
            }
        }
        // ASAP longest path over the (topologically ordered) block DAG.
        let mut lp = vec![0i64; nblocks];
        for &(before, after) in &pre.partition.edges {
            lp[after] = lp[after].max(lp[before] + dur[before]);
        }
        let total = (0..nblocks).map(|b| lp[b] + dur[b]).max().unwrap_or(0);
        let idle = busy - self.k * self.q * total;
        match objective {
            Objective::IdleTime => idle,
            Objective::Combined => fid + idle,
            Objective::Fidelity => unreachable!(),
        }
    }
}

/// Sound upper bound on the positive objective part: for each block, the
/// best conflict-free subset of its substitutions (exhaustive for small
/// blocks, sum-of-positives otherwise), summed over blocks.
fn block_subset_upper_bound(
    pre: &Preprocessed,
    catalog: &[Substitution],
    cost: &CostData,
    objective: Objective,
) -> i64 {
    let weight = |i: usize| -> i64 {
        match objective {
            Objective::IdleTime => cost.busy_w[i],
            Objective::Combined => cost.busy_w[i] + cost.fid_w[i],
            Objective::Fidelity => cost.fid_w[i],
        }
    };
    let base = match objective {
        Objective::IdleTime => cost.busy_base,
        Objective::Combined => cost.busy_base + cost.fid_base,
        Objective::Fidelity => cost.fid_base,
    };
    let mut ub = base;
    for block in &pre.partition.blocks {
        let members: Vec<usize> = (0..catalog.len())
            .filter(|&i| catalog[i].block == block.id)
            .collect();
        if members.is_empty() {
            continue;
        }
        if members.len() <= 16 {
            let mut best = 0i64;
            'subset: for mask in 0u32..(1 << members.len()) {
                let mut total = 0i64;
                for (ai, &a) in members.iter().enumerate() {
                    if (mask >> ai) & 1 == 0 {
                        continue;
                    }
                    for (bi, &b) in members.iter().enumerate().skip(ai + 1) {
                        if (mask >> bi) & 1 == 1 && catalog[a].conflicts_with(&catalog[b]) {
                            continue 'subset;
                        }
                    }
                    total += weight(a);
                }
                best = best.max(total);
            }
            ub += best;
        } else {
            ub += members.iter().map(|&i| weight(i).max(0)).sum::<i64>();
        }
    }
    ub
}

/// Per-block routing-choice literals: for every block that carries routing
/// substitutions, the literals of those choices (ascending block id).
fn routing_choices(
    catalog: &[Substitution],
    choice: &[qca_sat::Lit],
) -> Vec<(usize, Vec<qca_sat::Lit>)> {
    let mut groups: std::collections::BTreeMap<usize, Vec<qca_sat::Lit>> =
        std::collections::BTreeMap::new();
    for (i, s) in catalog.iter().enumerate() {
        if s.route.is_some() {
            groups.entry(s.block).or_default().push(choice[i]);
        }
    }
    groups.into_iter().collect()
}

/// Greedy warm start: repeatedly accept the substitution with the best
/// marginal objective improvement (skipping conflicts) until no candidate
/// improves. Returns the selection and its exact model objective value.
///
/// Routed blocks are seeded with their best routing variant first: the
/// all-false selection is infeasible when routing clauses demand a choice
/// per routed block, and the asserted warm-start lower bound must come from
/// a feasible selection.
fn greedy_selection(
    pre: &Preprocessed,
    catalog: &[Substitution],
    cost: &CostData,
    objective: Objective,
) -> (Vec<bool>, i64) {
    let n = catalog.len();
    let mut selection = vec![false; n];
    let weight = |i: usize| -> i64 {
        match objective {
            Objective::IdleTime => cost.busy_w[i],
            Objective::Combined => cost.busy_w[i] + cost.fid_w[i],
            Objective::Fidelity => cost.fid_w[i],
        }
    };
    let mut route_best: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    for (i, s) in catalog.iter().enumerate() {
        if s.route.is_some() {
            route_best
                .entry(s.block)
                .and_modify(|best| {
                    if weight(i) > weight(*best) {
                        *best = i;
                    }
                })
                .or_insert(i);
        }
    }
    for &i in route_best.values() {
        selection[i] = true;
    }
    let mut best = cost.evaluate(pre, catalog, &selection, objective);
    loop {
        let mut improved: Option<(usize, i64)> = None;
        'cand: for i in 0..n {
            if selection[i] {
                continue;
            }
            for j in 0..n {
                if selection[j] && catalog[i].conflicts_with(&catalog[j]) {
                    continue 'cand;
                }
            }
            selection[i] = true;
            let v = cost.evaluate(pre, catalog, &selection, objective);
            selection[i] = false;
            if v > best && improved.is_none_or(|(_, bv)| v > bv) {
                improved = Some((i, v));
            }
        }
        match improved {
            Some((i, v)) => {
                selection[i] = true;
                best = v;
            }
            None => break,
        }
    }
    (selection, best)
}

/// Builds and solves the SMT model, returning the optimal substitution
/// selection. The context supplies the objective, the OMT strategy, the
/// probe budget (unbudgeted when `ctx.options.exact`), engine-driven limits
/// and cancellation, and the tracer.
///
/// # Errors
///
/// Returns [`AdaptError::Infeasible`] if the model is unsatisfiable (cannot
/// happen for a well-formed catalog: the empty selection reproduces the
/// reference adaptation), or [`AdaptError::Cancelled`] when a limit or the
/// cancellation flag trips before any incumbent exists. A limit tripping
/// *after* the warm start produced an incumbent degrades to the best value
/// found (`SmtAdaptation::optimal == false`) instead.
pub fn solve_model(
    pre: &Preprocessed,
    hw: &HardwareModel,
    catalog: &[Substitution],
    ctx: &AdaptContext,
) -> Result<SmtAdaptation, AdaptError> {
    let budget = if ctx.options.exact {
        None
    } else {
        Some(DEFAULT_PROBE_BUDGET)
    };
    solve_model_with_budget(pre, hw, catalog, ctx, budget)
}

/// The bit-blasted adaptation model, ready to search: the solver with every
/// constraint asserted, the per-substitution choice literals, the objective
/// expression, and the integer cost tables behind them.
struct EncodedModel {
    smt: SmtSolver,
    choice: Vec<qca_sat::Lit>,
    objective_expr: IntExpr,
    cost: CostData,
}

/// Encodes the adaptation model (Eqs. 1–9) into a fresh SMT solver wired
/// with the context's run controls, certificate recording, and tracer.
fn encode_model(
    pre: &Preprocessed,
    hw: &HardwareModel,
    catalog: &[Substitution],
    ctx: &AdaptContext,
) -> EncodedModel {
    let objective = ctx.options.objective;
    let mut smt = SmtSolver::new();
    smt.set_control(ctx.solve_control());
    if ctx.options.certify {
        smt.enable_recording();
    }
    let encode_span = ctx.tracer.span_with("smt.encode", || {
        format!("objective={objective} catalog={}", catalog.len())
    });
    let choice: Vec<_> = catalog.iter().map(|_| smt.new_bool()).collect();

    // Eq. 1: conflicting substitutions are mutually exclusive.
    for (i, a) in catalog.iter().enumerate() {
        for (jj, b) in catalog.iter().enumerate().skip(i + 1) {
            if a.conflicts_with(b) {
                smt.add_clause(&[!choice[i], !choice[jj]]);
            }
        }
    }

    // Topology routing: a block whose operand pair is uncoupled carries
    // routing substitutions, and must select at least one of them (the
    // pairwise conflicts above already forbid picking two). Catalogs built
    // without a coupling map have no routing entries, so this adds nothing
    // and the encoding stays bit-identical to the topology-free model.
    for (block, lits) in routing_choices(catalog, &choice) {
        debug_assert!(!lits.is_empty(), "routed block {block} has no choices");
        smt.add_clause(&lits);
    }

    let nblocks = pre.partition.blocks.len();
    let cost = CostData::new(pre, hw, catalog);

    // Fidelity sum (Eqs. 5–6, aggregated): base + Σ 𝔽(s)·c_s.
    let fid_terms: Vec<(i64, qca_sat::Lit)> = cost
        .fid_w
        .iter()
        .zip(&choice)
        .map(|(&w, &l)| (w, l))
        .collect();
    let fid_base = cost.fid_base;
    let fidelity = smt.pb_sum(fid_base, &fid_terms);

    let objective_expr: IntExpr = match objective {
        Objective::Fidelity => fidelity,
        Objective::IdleTime | Objective::Combined => {
            // Per-block duration expressions (Eq. 3), plus per-block
            // min/max durations for bound tightening.
            let mut dur_exprs: Vec<IntExpr> = Vec::with_capacity(nblocks);
            let mut d_min = vec![0i64; nblocks];
            let mut d_max = vec![0i64; nblocks];
            for b in 0..nblocks {
                let base = cost.dur_base[b];
                let terms: Vec<(i64, qca_sat::Lit)> = catalog
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.block == b)
                    .map(|(i, _)| (cost.dur_w[i], choice[i]))
                    .collect();
                d_min[b] = (base + terms.iter().map(|&(w, _)| w.min(0)).sum::<i64>()).max(0);
                d_max[b] = base + terms.iter().map(|&(w, _)| w.max(0)).sum::<i64>();
                dur_exprs.push(smt.pb_sum(base, &terms));
            }
            // Tight per-block start-time windows from longest-path analysis:
            // the optimum is always attained by an ASAP schedule, so start
            // times never need to exceed the max-duration longest path.
            let longest_paths = |durs: &[i64]| -> Vec<i64> {
                let mut lp = vec![0i64; nblocks];
                // Block ids are topologically ordered by construction.
                for &(before, after) in &pre.partition.edges {
                    lp[after] = lp[after].max(lp[before] + durs[before]);
                }
                lp
            };
            let e_lo = longest_paths(&d_min);
            let e_hi = longest_paths(&d_max);
            let total_lo = (0..nblocks).map(|b| e_lo[b] + d_min[b]).max().unwrap_or(0);
            let total_hi = (0..nblocks)
                .map(|b| e_hi[b] + d_max[b])
                .max()
                .unwrap_or(0)
                .max(total_lo)
                .max(1);
            // Functionally-determined ASAP schedule: every start time is
            // the max over predecessor end times (Eq. 2 with equality, which
            // preserves the optimum because the objective improves when D
            // shrinks). This keeps the whole model a deterministic circuit
            // of the choice Booleans — the SAT solver only ever decides
            // `c_s`, and unit propagation derives all arithmetic.
            let preds = pre.partition.predecessors();
            let mut starts: Vec<IntExpr> = Vec::with_capacity(nblocks);
            let mut ends: Vec<IntExpr> = Vec::with_capacity(nblocks);
            for b in 0..nblocks {
                let pred_ends: Vec<IntExpr> = preds[b].iter().map(|&p| ends[p].clone()).collect();
                let start = if pred_ends.is_empty() {
                    smt.int_const(0)
                } else {
                    smt.max_of(&pred_ends)
                };
                let end = smt.add(&start, &dur_exprs[b]);
                starts.push(start);
                ends.push(end);
            }
            let total = smt.max_of(&ends);
            // The interval upper bound of the ASAP circuit coincides with
            // the max-duration longest path. (No analogous claim holds for
            // `total.lo`: duration-delta sums ignore substitution conflicts,
            // so a block's interval lower bound may dip below zero even
            // though no admissible selection realizes it.)
            debug_assert!(total.hi <= total_hi, "{} > {}", total.hi, total_hi);
            let horizon = total_hi;
            // Busy time with per-block qubit weights (see DESIGN.md): the
            // paper's Eq. 9 uses Σ d_b; we weight by the block's qubit count
            // so the modeled idle time matches the measured metric.
            let k = cost.k;
            let q = cost.q;
            let busy_terms: Vec<(i64, qca_sat::Lit)> = cost
                .busy_w
                .iter()
                .zip(&choice)
                .map(|(&w, &l)| (w, l))
                .collect();
            let busy_base: i64 = cost.busy_base;
            let pos = match objective {
                Objective::IdleTime => smt.pb_sum(busy_base, &busy_terms),
                Objective::Combined => {
                    let mut terms = busy_terms.clone();
                    for (t, f) in terms.iter_mut().zip(&fid_terms) {
                        t.0 += f.0;
                    }
                    smt.pb_sum(busy_base + fid_base, &terms)
                }
                Objective::Fidelity => unreachable!(),
            };
            // objective = pos - k*q*D. Subtraction is computed directly
            // (pos + k*q*(horizon - D), a constant shift) so the objective
            // stays a deterministic function of the choice Booleans.
            let kq = k * q;
            let slack = smt.sub_from_const(horizon, &total);
            let scaled_slack = smt.mul_const(&slack, kq);
            let j = smt.add(&pos, &scaled_slack);
            // Report values in the natural `pos - kq*D` frame.
            let mut j = j.shifted(-kq * horizon);
            // Tighten the OMT bracket with a sound combinatorial upper
            // bound: per-block best conflict-free subset of the positive
            // objective part, minus the minimum possible makespan term.
            let ub = block_subset_upper_bound(pre, catalog, &cost, objective) - kq * total_lo;
            j.hi = j.hi.min(ub);
            j
        }
    };

    drop(encode_span);
    ctx.tracer.gauge("smt.sat_vars", smt.num_sat_vars() as i64);
    EncodedModel {
        smt,
        choice,
        objective_expr,
        cost,
    }
}

/// [`solve_model`] with an explicit per-probe conflict budget (`None` for an
/// exact, unbudgeted search), overriding what `ctx.options.exact` implies.
///
/// # Errors
///
/// As [`solve_model`].
pub fn solve_model_with_budget(
    pre: &Preprocessed,
    hw: &HardwareModel,
    catalog: &[Substitution],
    ctx: &AdaptContext,
    probe_budget: Option<u64>,
) -> Result<SmtAdaptation, AdaptError> {
    let objective = ctx.options.objective;
    let strategy = ctx.options.strategy;
    let EncodedModel {
        mut smt,
        choice,
        objective_expr,
        cost,
    } = encode_model(pre, hw, catalog, ctx);

    // Warm start: the context's hint (a known-good selection, when still
    // valid for this catalog) or the greedy selection — whichever scores
    // better — seeds the solver's phases, and its objective value is
    // asserted as a sound lower bound so the OMT search only explores the
    // region above it.
    let mut warm_span = ctx.tracer.span("warm_start");
    let (warm, warm_value, warm_source) = {
        let hinted = ctx
            .warm_hint
            .as_deref()
            .and_then(|ids| selection_from_ids(catalog, ids))
            .map(|sel| {
                let v = cost.evaluate(pre, catalog, &sel, objective);
                (sel, v)
            });
        let (greedy, greedy_value) = greedy_selection(pre, catalog, &cost, objective);
        match hinted {
            Some((sel, v)) if v >= greedy_value => (sel, v, "hint"),
            _ => (greedy, greedy_value, "greedy"),
        }
    };
    let mut hint: Vec<qca_sat::Lit> = Vec::with_capacity(choice.len());
    for (i, &sel) in warm.iter().enumerate() {
        smt.sat_mut().set_phase(choice[i].var(), sel);
        hint.push(if sel { choice[i] } else { !choice[i] });
    }
    let warm_bound = smt.int_const(warm_value);
    smt.assert_ge(&objective_expr, &warm_bound);
    warm_span.set_note(format!("value={warm_value} source={warm_source}"));
    drop(warm_span);

    // Size-adaptive search effort: bigger bit-blasted models get smaller
    // probe budgets and a coarser gap — the warm start already pins the
    // incumbent, so late probes only chase small refinements.
    let nblocks = pre.partition.blocks.len();
    let relative_gap = if probe_budget.is_none() {
        0.0
    } else if nblocks > 16 {
        0.05
    } else {
        0.02
    };
    let adaptive_budget = probe_budget.map(|b| if nblocks > 16 { b / 4 } else { b });
    let omt_options = omt::OmtOptions {
        probe_conflict_budget: adaptive_budget,
        relative_gap,
        certify: ctx.options.certify,
        portfolio: ctx.portfolio,
    };
    let best = omt::maximize_with(&mut smt, &objective_expr, strategy, omt_options, &hint)
        .ok_or_else(|| {
            // `None` from the OMT search means the very first check failed.
            // Under an interrupt that is a cancellation, not a proof of
            // infeasibility (the model with its warm start is feasible by
            // construction).
            let interrupted = ctx.cancelled()
                || ctx
                    .limits
                    .total_conflicts
                    .is_some_and(|cap| smt.stats().conflicts >= cap);
            if interrupted {
                AdaptError::Cancelled
            } else {
                AdaptError::Infeasible
            }
        })?;
    let chosen = choice
        .iter()
        .enumerate()
        .filter(|&(_, &lit)| best.model.lit_is_true(lit))
        .map(|(i, _)| i)
        .collect();
    let verification = if ctx.options.certify {
        smt.audit_bundle(best.model.clone())
            .map(|bundle| VerificationData {
                bundle,
                certificate: best.certificate.clone(),
            })
    } else {
        None
    };
    Ok(SmtAdaptation {
        chosen,
        objective_value: best.value,
        queries: best.queries,
        sat_vars: smt.num_sat_vars(),
        optimal: best.optimal,
        solver_stats: smt.stats().clone(),
        verification,
    })
}

/// Converts catalog ids into a selection mask, rejecting stale hints: ids
/// out of range, a selection violating a conflict constraint, or a routed
/// block left without a routing choice (e.g. a hint computed before a
/// coupling map was configured) yield `None`.
fn selection_from_ids(catalog: &[Substitution], ids: &[usize]) -> Option<Vec<bool>> {
    let mut selection = vec![false; catalog.len()];
    for &i in ids {
        if i >= catalog.len() {
            return None;
        }
        selection[i] = true;
    }
    for (i, a) in catalog.iter().enumerate() {
        if !selection[i] {
            continue;
        }
        for (j, b) in catalog.iter().enumerate().skip(i + 1) {
            if selection[j] && a.conflicts_with(b) {
                return None;
            }
        }
    }
    let mut routed_blocks: Vec<usize> = catalog
        .iter()
        .filter(|s| s.route.is_some())
        .map(|s| s.block)
        .collect();
    routed_blocks.sort_unstable();
    routed_blocks.dedup();
    for block in routed_blocks {
        let chosen_route = catalog
            .iter()
            .enumerate()
            .any(|(i, s)| selection[i] && s.block == block && s.route.is_some());
        if !chosen_route {
            return None;
        }
    }
    Some(selection)
}

/// Evaluates the exact fixed-point objective of a concrete substitution
/// selection (catalog ids) under `hw` — the same integer arithmetic the SMT
/// encoding bit-blasts. Recalibration uses this to re-score a cached
/// optimum under a drifted fidelity table without re-solving; ids out of
/// range are ignored.
pub fn evaluate_selection(
    pre: &Preprocessed,
    hw: &HardwareModel,
    catalog: &[Substitution],
    chosen: &[usize],
    objective: Objective,
) -> i64 {
    let cost = CostData::new(pre, hw, catalog);
    let mut selection = vec![false; catalog.len()];
    for &i in chosen {
        if i < selection.len() {
            selection[i] = true;
        }
    }
    cost.evaluate(pre, catalog, &selection, objective)
}

/// Outcome of [`recheck_optimum`].
#[derive(Debug)]
pub enum RecheckOutcome {
    /// The probe for a strictly better value was refuted: the cached
    /// selection is still optimal under this hardware model. Carries the
    /// refreshed solve result (re-scored objective value, fresh
    /// verification data when certifying).
    StillOptimal(Box<SmtAdaptation>),
    /// The cached selection is stale (invalid for the re-evaluated
    /// catalog), a strictly better selection exists, or the re-check budget
    /// ran out before a verdict: a full warm-started re-solve is needed.
    Changed,
}

/// Re-checks a cached optimum under (possibly drifted) hardware data
/// without a full OMT search: re-encodes the model, re-scores `chosen`,
/// anchors the search at that value, and runs one linear-search step. When
/// the cached selection is still optimal this costs exactly two SAT queries
/// — the hinted model, then the refuted `objective >= value + 1` probe,
/// which doubles as the optimality certificate when certifying.
///
/// # Errors
///
/// [`AdaptError::Cancelled`] when a limit or the cancellation flag trips
/// before a verdict.
pub fn recheck_optimum(
    pre: &Preprocessed,
    hw: &HardwareModel,
    catalog: &[Substitution],
    ctx: &AdaptContext,
    chosen: &[usize],
    recheck_budget: Option<u64>,
) -> Result<RecheckOutcome, AdaptError> {
    let objective = ctx.options.objective;
    let Some(selection) = selection_from_ids(catalog, chosen) else {
        return Ok(RecheckOutcome::Changed);
    };
    let EncodedModel {
        mut smt,
        choice,
        objective_expr,
        cost,
    } = encode_model(pre, hw, catalog, ctx);
    let expected = cost.evaluate(pre, catalog, &selection, objective);
    // Anchor at the incumbent: sound because `selection` realizes it.
    let anchor = smt.int_const(expected);
    smt.assert_ge(&objective_expr, &anchor);
    let mut hint: Vec<qca_sat::Lit> = Vec::with_capacity(choice.len());
    for (i, &sel) in selection.iter().enumerate() {
        smt.sat_mut().set_phase(choice[i].var(), sel);
        hint.push(if sel { choice[i] } else { !choice[i] });
    }
    let omt_options = omt::OmtOptions {
        probe_conflict_budget: recheck_budget,
        relative_gap: 0.0,
        certify: ctx.options.certify,
        portfolio: ctx.portfolio,
    };
    let best = omt::maximize_with(
        &mut smt,
        &objective_expr,
        omt::Strategy::LinearSearch,
        omt_options,
        &hint,
    )
    // The anchored model with its hint is feasible by construction, so
    // `None` can only mean the search was interrupted before a model.
    .ok_or(AdaptError::Cancelled)?;
    if !best.optimal || best.value != expected {
        return Ok(RecheckOutcome::Changed);
    }
    let chosen_now: Vec<usize> = choice
        .iter()
        .enumerate()
        .filter(|&(_, &lit)| best.model.lit_is_true(lit))
        .map(|(i, _)| i)
        .collect();
    let verification = if ctx.options.certify {
        smt.audit_bundle(best.model.clone())
            .map(|bundle| VerificationData {
                bundle,
                certificate: best.certificate.clone(),
            })
    } else {
        None
    };
    Ok(RecheckOutcome::StillOptimal(Box::new(SmtAdaptation {
        chosen: chosen_now,
        objective_value: best.value,
        queries: best.queries,
        sat_vars: smt.num_sat_vars(),
        optimal: true,
        solver_stats: smt.stats().clone(),
        verification,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use crate::rules::{evaluate_substitutions, RuleOptions};
    use qca_circuit::{Circuit, Gate};
    use qca_hw::{spin_qubit_model, GateTimes};

    fn setup(c: &Circuit) -> (Preprocessed, Vec<Substitution>, HardwareModel) {
        let hw = spin_qubit_model(GateTimes::D0);
        let pre = preprocess(c, &hw).unwrap();
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        (pre, subs, hw)
    }

    #[test]
    fn fidelity_objective_picks_beneficial_subs() {
        // Swap pattern: swap_c improves fidelity (0.999 vs 0.999^3 · H's).
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, subs, hw) = setup(&c);
        let r = solve_model(
            &pre,
            &hw,
            &subs,
            &AdaptContext::with_objective(Objective::Fidelity),
        )
        .unwrap();
        assert!(!r.chosen.is_empty());
        // The chosen set must contain a fidelity-improving substitution.
        let gain: f64 = r.chosen.iter().map(|&i| subs[i].delta_log_fidelity).sum();
        assert!(gain > 0.0, "gain {gain}");
    }

    #[test]
    fn objective_value_matches_selection_fidelity() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, subs, hw) = setup(&c);
        let r = solve_model(
            &pre,
            &hw,
            &subs,
            &AdaptContext::with_objective(Objective::Fidelity),
        )
        .unwrap();
        let expect = pre.reference_log_fidelity()
            + r.chosen
                .iter()
                .map(|&i| subs[i].delta_log_fidelity)
                .sum::<f64>();
        let got = r.objective_value as f64 / 29_000.0;
        assert!((got - expect).abs() < 1e-3, "got {got} expect {expect}");
    }

    #[test]
    fn warm_hint_preserves_answer_and_survives_stale_ids() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, subs, hw) = setup(&c);
        let base = solve_model(
            &pre,
            &hw,
            &subs,
            &AdaptContext::with_objective(Objective::Fidelity),
        )
        .unwrap();
        let mut ctx = AdaptContext::with_objective(Objective::Fidelity);
        ctx.warm_hint = Some(base.chosen.clone());
        let hinted = solve_model(&pre, &hw, &subs, &ctx).unwrap();
        assert_eq!(hinted.objective_value, base.objective_value);
        // An out-of-range hint falls back to the greedy warm start.
        ctx.warm_hint = Some(vec![subs.len() + 7]);
        let fallback = solve_model(&pre, &hw, &subs, &ctx).unwrap();
        assert_eq!(fallback.objective_value, base.objective_value);
    }

    #[test]
    fn evaluate_selection_matches_solver_objective() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, subs, hw) = setup(&c);
        for obj in [
            Objective::Fidelity,
            Objective::IdleTime,
            Objective::Combined,
        ] {
            let r = solve_model(&pre, &hw, &subs, &AdaptContext::with_objective(obj)).unwrap();
            assert_eq!(
                evaluate_selection(&pre, &hw, &subs, &r.chosen, obj),
                r.objective_value,
                "{obj}"
            );
        }
    }

    #[test]
    fn recheck_confirms_optimum_in_two_queries_and_flags_suboptimal() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, subs, hw) = setup(&c);
        let ctx = AdaptContext::with_objective(Objective::Fidelity);
        let best = solve_model(&pre, &hw, &subs, &ctx).unwrap();
        match recheck_optimum(&pre, &hw, &subs, &ctx, &best.chosen, None).unwrap() {
            RecheckOutcome::StillOptimal(r) => {
                assert_eq!(r.objective_value, best.objective_value);
                assert!(r.optimal);
                assert_eq!(r.chosen, best.chosen);
                // One query when the interval upper bound already pins the
                // optimum, two when an explicit refutation probe is needed.
                assert!(r.queries <= 2, "recheck took {} queries", r.queries);
            }
            RecheckOutcome::Changed => panic!("optimal selection reported as changed"),
        }
        // The (suboptimal) empty selection is detected as changed, as is a
        // selection with out-of-range ids.
        assert!(matches!(
            recheck_optimum(&pre, &hw, &subs, &ctx, &[], None).unwrap(),
            RecheckOutcome::Changed
        ));
        assert!(matches!(
            recheck_optimum(&pre, &hw, &subs, &ctx, &[usize::MAX], None).unwrap(),
            RecheckOutcome::Changed
        ));
    }

    #[test]
    fn no_conflicting_substitutions_chosen() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        let (pre, subs, hw) = setup(&c);
        for obj in [
            Objective::Fidelity,
            Objective::IdleTime,
            Objective::Combined,
        ] {
            let r = solve_model(&pre, &hw, &subs, &AdaptContext::with_objective(obj)).unwrap();
            for (i, &a) in r.chosen.iter().enumerate() {
                for &b in &r.chosen[i + 1..] {
                    assert!(
                        !subs[a].conflicts_with(&subs[b]),
                        "{obj}: chose conflicting substitutions {a} and {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn idle_objective_prefers_short_swaps() {
        // Two qubits idle while a swap executes on the other two: the idle
        // objective should choose the fastest realization (swap_d, 19 ns).
        let mut c = Circuit::new(4);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        // Parallel long gates on 2,3 so the swap is off the critical path?
        // No: keep 2,3 idle so idling dominates.
        let (pre, subs, hw) = setup(&c);
        let r = solve_model(
            &pre,
            &hw,
            &subs,
            &AdaptContext::with_objective(Objective::IdleTime),
        )
        .unwrap();
        let kinds: Vec<_> = r.chosen.iter().map(|&i| subs[i].kind).collect();
        assert!(
            kinds.contains(&crate::rules::SubstitutionKind::SwapDiabatic),
            "idle objective should pick swap_d, got {kinds:?}"
        );
    }

    #[test]
    fn empty_catalog_still_solves() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cz, &[0, 1]);
        let hw = spin_qubit_model(GateTimes::D0);
        let pre = preprocess(&c, &hw).unwrap();
        let r = solve_model(
            &pre,
            &hw,
            &[],
            &AdaptContext::with_objective(Objective::Combined),
        )
        .unwrap();
        assert!(r.chosen.is_empty());
    }
}
