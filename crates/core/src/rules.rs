//! Substitution-rule evaluation (paper §IV-B).
//!
//! Every rule is evaluated against the preprocessed circuit, yielding for
//! each applicable substitution `s` the substituted gates `p_s`, the
//! replacement gates `g_s`, the affected block `b_s` and the cost deltas
//! (`𝔻(s)`, `𝔽(s)` of Eqs. 4 and 6) relative to the reference adaptation.
//!
//! Implemented rules (Fig. 3 of the paper):
//!
//! * **KAK(CZ)** — re-synthesize a whole two-qubit block as three CZ gates
//!   plus SU(2) locals,
//! * **KAK(CZ_db)** — the same with the diabatic CZ realization,
//! * **Conditional rotation** — replace a CNOT-equivalent gate run with
//!   `CROT(pi)` plus a phase correction,
//! * **SWAP_d / SWAP_c** — replace a swap-equivalent gate run with one of
//!   the two native swap realizations.

use crate::error::AdaptError;
use crate::preprocess::{circuit_cost, Preprocessed};
use qca_circuit::{Circuit, Gate};
use qca_hw::{CouplingMap, HardwareModel};
use qca_num::phase::phase_insensitive_distance;
use qca_synth::consolidate::consolidate_1q;
use qca_synth::kak::kak_decompose;
use qca_synth::translate::gate_to_cz;
use std::f64::consts::PI;

/// The rule family a substitution belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubstitutionKind {
    /// Whole-block KAK decomposition targeting the adiabatic CZ.
    KakCz,
    /// Whole-block KAK decomposition targeting the diabatic CZ.
    KakCzDiabatic,
    /// Conditional-rotation (CROT) replacement of a CNOT-equivalent run.
    ConditionalRotation,
    /// Diabatic swap realization of a swap-equivalent run.
    SwapDiabatic,
    /// Composite-pulse swap realization of a swap-equivalent run.
    SwapComposite,
    /// SWAP-insertion routing of an uncoupled block via the diabatic swap.
    RouteSwapDiabatic,
    /// SWAP-insertion routing of an uncoupled block via the composite swap.
    RouteSwapComposite,
}

impl std::fmt::Display for SubstitutionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SubstitutionKind::KakCz => "kak(cz)",
            SubstitutionKind::KakCzDiabatic => "kak(cz_db)",
            SubstitutionKind::ConditionalRotation => "crot",
            SubstitutionKind::SwapDiabatic => "swap_d",
            SubstitutionKind::SwapComposite => "swap_c",
            SubstitutionKind::RouteSwapDiabatic => "route(swap_d)",
            SubstitutionKind::RouteSwapComposite => "route(swap_c)",
        };
        write!(f, "{s}")
    }
}

/// A SWAP-insertion routing plan for a two-qubit block whose operand pair
/// is not directly coupled on the target topology.
///
/// The plan moves the block's first operand along `path` to the qubit
/// adjacent to the second operand, executes the block there, and walks the
/// swaps back — net identity on every intermediate qubit, so the global
/// unitary is preserved. Both directions use the same swap realization.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Global qubit path from the block's first operand to its second
    /// (BFS-shortest, smallest-index tie-breaking); at least three nodes.
    pub path: Vec<usize>,
    /// The native swap realization inserted along the path
    /// ([`Gate::SwapDiabatic`] or [`Gate::SwapComposite`]).
    pub gate: Gate,
}

impl Route {
    /// Number of swap gates the plan inserts: `2 * (path edges - 1)`.
    pub fn swap_count(&self) -> usize {
        2 * (self.path.len() - 2)
    }
}

/// One applicable substitution: which gates it replaces, what it replaces
/// them with, and its cost deltas against the reference adaptation.
#[derive(Debug, Clone)]
pub struct Substitution {
    /// Dense id (index into the catalog).
    pub id: usize,
    /// Rule family.
    pub kind: SubstitutionKind,
    /// Affected block (`b_s`).
    pub block: usize,
    /// Global instruction indices replaced (`p_s`), ascending. Empty for
    /// routing substitutions: they wrap the block rather than replacing
    /// gates inside it.
    pub ops: Vec<usize>,
    /// Replacement circuit over the block's local qubits (`g_s`). Empty for
    /// routing substitutions.
    pub replacement: Circuit,
    /// SWAP-insertion plan, present only on routing substitutions
    /// ([`SubstitutionKind::RouteSwapDiabatic`] /
    /// [`SubstitutionKind::RouteSwapComposite`]). Routing composes
    /// additively with the block's gate substitutions; two routing plans
    /// for the same block conflict.
    pub route: Option<Route>,
    /// Change in block duration when applied alone (ns): `𝔻(s)`.
    pub delta_duration: f64,
    /// Change in block log-fidelity when applied alone: `𝔽(s)`.
    pub delta_log_fidelity: f64,
}

impl Substitution {
    /// `true` when this substitution replaces the entire block.
    pub fn is_whole_block(&self, pre: &Preprocessed) -> bool {
        self.ops.len() == pre.partition.blocks[self.block].ops.len()
    }

    /// `true` when `self` and `other` substitute at least one common gate
    /// (and hence conflict per Eq. 1), or when both are routing plans for
    /// the same block (a block travels one path, with one realization).
    pub fn conflicts_with(&self, other: &Substitution) -> bool {
        if self.block != other.block {
            return false;
        }
        if self.route.is_some() && other.route.is_some() {
            return true;
        }
        self.ops
            .iter()
            .any(|op| other.ops.binary_search(op).is_ok())
    }
}

/// Knobs controlling which rules are evaluated.
#[derive(Debug, Clone)]
pub struct RuleOptions {
    /// Evaluate whole-block KAK with adiabatic CZ.
    pub kak_cz: bool,
    /// Evaluate whole-block KAK with diabatic CZ.
    pub kak_cz_diabatic: bool,
    /// Evaluate conditional-rotation replacements.
    pub conditional_rotation: bool,
    /// Evaluate swap-realization replacements.
    pub swaps: bool,
    /// Longest contiguous gate run considered for pattern matches.
    pub max_match_len: usize,
    /// Use the two-CNOT KAK specialization for canonical classes with a
    /// trivial interaction coefficient (extension; the paper's rule is the
    /// generic three-CZ circuit).
    pub optimized_kak: bool,
}

impl Default for RuleOptions {
    fn default() -> Self {
        RuleOptions {
            kak_cz: true,
            kak_cz_diabatic: true,
            conditional_rotation: true,
            swaps: true,
            max_match_len: 8,
            optimized_kak: false,
        }
    }
}

/// Applies a set of mutually non-conflicting substitutions to one block,
/// producing the adapted local circuit (target basis, consolidated).
///
/// Gates not covered by any substitution receive the reference basis
/// translation.
///
/// # Panics
///
/// Panics if two substitutions overlap or belong to a different block.
pub fn apply_to_block(pre: &Preprocessed, block_id: usize, subs: &[&Substitution]) -> Circuit {
    let block = &pre.partition.blocks[block_id];
    for s in subs {
        assert_eq!(s.block, block_id, "substitution targets another block");
    }
    for (i, a) in subs.iter().enumerate() {
        for b in &subs[i + 1..] {
            assert!(!a.conflicts_with(b), "overlapping substitutions");
        }
    }
    let nq = block.qubits.len();
    let mut out = Circuit::new(nq);
    // Map: global op -> substitution covering it (by catalog position).
    let covered = |op: usize| subs.iter().find(|s| s.ops.binary_search(&op).is_ok());
    for &op in &block.ops {
        if let Some(s) = covered(op) {
            if s.ops[0] == op {
                out.extend_from(&s.replacement);
            }
            continue;
        }
        let instr = &pre.source.instrs()[op];
        let local: Vec<usize> = instr
            .qubits
            .iter()
            .map(|q| {
                block
                    .qubits
                    .iter()
                    .position(|bq| bq == q)
                    .expect("block qubit")
            })
            .collect();
        if instr.gate.num_qubits() == 1 {
            out.push(instr.gate, &local);
        } else {
            let translated = gate_to_cz(&instr.gate);
            for ti in translated.iter() {
                let mapped: Vec<usize> = ti.qubits.iter().map(|&q| local[q]).collect();
                out.push(ti.gate, &mapped);
            }
        }
    }
    consolidate_1q(&out)
}

/// Evaluates every enabled rule on the preprocessed circuit, returning the
/// substitution catalog with per-substitution cost deltas.
///
/// # Errors
///
/// Returns [`AdaptError`] when a replacement circuit cannot be priced on
/// `hw` (would indicate an internal inconsistency).
pub fn evaluate_substitutions(
    pre: &Preprocessed,
    hw: &HardwareModel,
    options: &RuleOptions,
) -> Result<Vec<Substitution>, AdaptError> {
    let mut catalog: Vec<Substitution> = Vec::new();
    let swap_target = Gate::Swap.matrix();
    let cx_target = Gate::Cx.matrix();

    for block in &pre.partition.blocks {
        if block.qubits.len() != 2 {
            continue;
        }
        let local = &pre.block_circuits[block.id];

        // Whole-block KAK decompositions.
        if options.kak_cz || options.kak_cz_diabatic {
            let u = local.unitary();
            let kak = kak_decompose(&u);
            let kak_circ = if options.optimized_kak {
                kak.to_circuit_cz_optimized()
            } else {
                kak.to_circuit_cz()
            };
            if options.kak_cz {
                push_candidate(
                    &mut catalog,
                    pre,
                    hw,
                    SubstitutionKind::KakCz,
                    block.id,
                    block.ops.clone(),
                    kak_circ.clone(),
                )?;
            }
            if options.kak_cz_diabatic {
                let mut db = Circuit::new(2);
                for i in kak_circ.iter() {
                    let g = if i.gate == Gate::Cz {
                        Gate::CzDiabatic
                    } else {
                        i.gate
                    };
                    db.push(g, &i.qubits);
                }
                push_candidate(
                    &mut catalog,
                    pre,
                    hw,
                    SubstitutionKind::KakCzDiabatic,
                    block.id,
                    block.ops.clone(),
                    db,
                )?;
            }
        }

        // Pattern matches over contiguous gate runs.
        if options.conditional_rotation || options.swaps {
            let k = block.ops.len();
            for start in 0..k {
                for end in (start + 1)..=k.min(start + options.max_match_len) {
                    let range = &block.ops[start..end];
                    // Must contain at least one two-qubit gate; ignore
                    // the trivial whole-block range only when it would
                    // duplicate KAK (keep it: swaps of whole blocks are
                    // cheaper than KAK's 3 CZ).
                    if !range
                        .iter()
                        .any(|&op| pre.source.instrs()[op].gate.is_two_qubit())
                    {
                        continue;
                    }
                    let sub = subrange_circuit(pre, block.id, range);
                    let u = sub.unitary();
                    if options.swaps && phase_insensitive_distance(&u, &swap_target) < 1e-9 {
                        for (kind, gate) in [
                            (SubstitutionKind::SwapDiabatic, Gate::SwapDiabatic),
                            (SubstitutionKind::SwapComposite, Gate::SwapComposite),
                        ] {
                            let mut rep = Circuit::new(2);
                            rep.push(gate, &[0, 1]);
                            push_candidate(
                                &mut catalog,
                                pre,
                                hw,
                                kind,
                                block.id,
                                range.to_vec(),
                                rep,
                            )?;
                        }
                    }
                    if options.conditional_rotation {
                        // CNOT-equivalent in either operand order.
                        for (ctrl, tgt) in [(0usize, 1usize), (1, 0)] {
                            let target = if (ctrl, tgt) == (0, 1) {
                                cx_target.clone()
                            } else {
                                cx_target.embed_qubits(&[1, 0], 2)
                            };
                            if phase_insensitive_distance(&u, &target) < 1e-9 {
                                let mut rep = Circuit::new(2);
                                rep.push(Gate::CRot(PI), &[ctrl, tgt]);
                                rep.push(Gate::S, &[ctrl]);
                                push_candidate(
                                    &mut catalog,
                                    pre,
                                    hw,
                                    SubstitutionKind::ConditionalRotation,
                                    block.id,
                                    range.to_vec(),
                                    rep,
                                )?;
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(catalog)
}

/// Appends one routing substitution per priced swap realization for every
/// two-qubit block whose operand pair is not directly coupled on
/// `coupling`. Ids continue the catalog's dense numbering.
///
/// Paths are BFS-shortest with smallest-index tie-breaking, restricted to
/// the circuit's own qubits (a device larger than the circuit never routes
/// through out-of-range wires), so the generated catalog is deterministic.
/// An all-to-all map (or one coupling every pair the circuit uses) appends
/// nothing, keeping the encoding bit-identical to the topology-free model.
///
/// # Errors
///
/// [`AdaptError::InvalidOptions`] when the map has fewer qubits than the
/// circuit or provides no path between a block's operands;
/// [`AdaptError::UnsupportedGate`] when an uncoupled block must be routed
/// but the hardware prices neither swap realization.
pub fn append_routing_substitutions(
    catalog: &mut Vec<Substitution>,
    pre: &Preprocessed,
    hw: &HardwareModel,
    coupling: &CouplingMap,
) -> Result<(), AdaptError> {
    let nq = pre.source.num_qubits();
    if coupling.num_qubits() < nq {
        return Err(AdaptError::InvalidOptions(format!(
            "coupling map covers {} qubits but the circuit uses {nq}",
            coupling.num_qubits()
        )));
    }
    let cm = coupling.restrict(nq);
    for block in &pre.partition.blocks {
        if block.qubits.len() != 2 {
            continue;
        }
        let (a, b) = (block.qubits[0], block.qubits[1]);
        if cm.is_coupled(a, b) {
            continue;
        }
        let path = cm.path(a, b).ok_or_else(|| {
            AdaptError::InvalidOptions(format!(
                "coupling map provides no path between qubits {a} and {b}"
            ))
        })?;
        let swaps = 2.0 * (path.len() - 2) as f64;
        let mut routable = false;
        for (kind, gate) in [
            (SubstitutionKind::RouteSwapDiabatic, Gate::SwapDiabatic),
            (SubstitutionKind::RouteSwapComposite, Gate::SwapComposite),
        ] {
            let Some(cost) = hw.cost(&gate) else {
                continue;
            };
            routable = true;
            catalog.push(Substitution {
                id: catalog.len(),
                kind,
                block: block.id,
                ops: Vec::new(),
                replacement: Circuit::new(2),
                route: Some(Route {
                    path: path.clone(),
                    gate,
                }),
                delta_duration: swaps * cost.duration,
                delta_log_fidelity: swaps * cost.fidelity.ln(),
            });
        }
        if !routable {
            return Err(AdaptError::UnsupportedGate(format!(
                "qubits {a} and {b} are uncoupled and no native swap \
                 realization is priced to route between them"
            )));
        }
    }
    Ok(())
}

/// Extracts the local circuit of a contiguous op range within a block.
fn subrange_circuit(pre: &Preprocessed, block_id: usize, range: &[usize]) -> Circuit {
    let block = &pre.partition.blocks[block_id];
    let mut c = Circuit::new(block.qubits.len());
    for &op in range {
        let instr = &pre.source.instrs()[op];
        let local: Vec<usize> = instr
            .qubits
            .iter()
            .map(|q| {
                block
                    .qubits
                    .iter()
                    .position(|bq| bq == q)
                    .expect("block qubit")
            })
            .collect();
        c.push(instr.gate, &local);
    }
    c
}

/// Prices a candidate substitution (applied alone) and appends it to the
/// catalog, dropping exact duplicates (same kind and op range).
fn push_candidate(
    catalog: &mut Vec<Substitution>,
    pre: &Preprocessed,
    hw: &HardwareModel,
    kind: SubstitutionKind,
    block: usize,
    ops: Vec<usize>,
    replacement: Circuit,
) -> Result<(), AdaptError> {
    if catalog
        .iter()
        .any(|s| s.kind == kind && s.block == block && s.ops == ops)
    {
        return Ok(());
    }
    let id = catalog.len();
    let candidate = Substitution {
        id,
        kind,
        block,
        ops,
        replacement,
        route: None,
        delta_duration: 0.0,
        delta_log_fidelity: 0.0,
    };
    let applied = apply_to_block(pre, block, &[&candidate]);
    let cost = circuit_cost(&applied, hw).ok_or_else(|| {
        AdaptError::UnsupportedGate(format!("replacement for block {block} not native"))
    })?;
    let base = pre.cost[block];
    let mut candidate = candidate;
    candidate.delta_duration = cost.duration - base.duration;
    candidate.delta_log_fidelity = cost.log_fidelity - base.log_fidelity;
    catalog.push(candidate);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use qca_hw::{spin_qubit_model, GateTimes};
    use qca_num::phase::approx_eq_up_to_phase;

    fn pre_of(c: &Circuit) -> (Preprocessed, HardwareModel) {
        let hw = spin_qubit_model(GateTimes::D0);
        (preprocess(c, &hw).unwrap(), hw)
    }

    #[test]
    fn kak_substitution_for_simple_block() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        assert!(subs.iter().any(|s| s.kind == SubstitutionKind::KakCz));
        // CX·CX = I, so KAK yields a nearly empty circuit with a big
        // duration decrease.
        let kak = subs
            .iter()
            .find(|s| s.kind == SubstitutionKind::KakCz)
            .unwrap();
        assert!(kak.delta_duration < 0.0);
        assert!(kak.delta_log_fidelity > 0.0);
    }

    #[test]
    fn swap_pattern_detected() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let swap_d = subs
            .iter()
            .find(|s| s.kind == SubstitutionKind::SwapDiabatic && s.ops.len() == 3)
            .expect("swap_d match");
        let swap_c = subs
            .iter()
            .find(|s| s.kind == SubstitutionKind::SwapComposite && s.ops.len() == 3)
            .expect("swap_c match");
        // Reference: 3x (H CZ H) ~ 3*152 + 4*30 = 576 ns; swap_d = 19 ns.
        assert!(swap_d.delta_duration < -400.0);
        // swap_c has better fidelity than swap_d.
        assert!(swap_c.delta_log_fidelity > swap_d.delta_log_fidelity);
    }

    #[test]
    fn crot_matches_single_cx() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let crot = subs
            .iter()
            .find(|s| s.kind == SubstitutionKind::ConditionalRotation)
            .expect("crot match");
        // CROT is slower than the CZ translation (660+ vs 212).
        assert!(crot.delta_duration > 0.0);
        // Replacement implements CX up to phase.
        assert!(approx_eq_up_to_phase(
            &crot.replacement.unitary(),
            &Gate::Cx.matrix(),
            1e-8
        ));
    }

    #[test]
    fn crot_matches_reversed_cx() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[1, 0]);
        let (pre, hw) = pre_of(&c);
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let crot = subs
            .iter()
            .find(|s| s.kind == SubstitutionKind::ConditionalRotation)
            .expect("crot match");
        assert!(approx_eq_up_to_phase(
            &crot.replacement.unitary(),
            &Gate::Cx.matrix().embed_qubits(&[1, 0], 2),
            1e-8
        ));
    }

    #[test]
    fn conflicts_detected_on_overlap() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let kak = subs
            .iter()
            .find(|s| s.kind == SubstitutionKind::KakCz)
            .unwrap();
        let swap = subs
            .iter()
            .find(|s| s.kind == SubstitutionKind::SwapDiabatic)
            .unwrap();
        assert!(kak.conflicts_with(swap));
        assert!(swap.conflicts_with(kak));
    }

    #[test]
    fn apply_preserves_unitary() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        for s in &subs {
            let adapted = apply_to_block(&pre, s.block, &[s]);
            let original = pre.block_circuits[s.block].unitary();
            assert!(
                approx_eq_up_to_phase(&adapted.unitary(), &original, 1e-7),
                "substitution {} ({}) breaks the block unitary",
                s.id,
                s.kind
            );
        }
    }

    #[test]
    fn disabled_rules_are_skipped() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let opts = RuleOptions {
            kak_cz: false,
            kak_cz_diabatic: false,
            conditional_rotation: false,
            swaps: false,
            ..RuleOptions::default()
        };
        let subs = evaluate_substitutions(&pre, &hw, &opts).unwrap();
        assert!(subs.is_empty());
    }

    #[test]
    fn optimized_kak_flag_shrinks_cx_blocks() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let generic = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let opts = RuleOptions {
            optimized_kak: true,
            ..RuleOptions::default()
        };
        let optimized = evaluate_substitutions(&pre, &hw, &opts).unwrap();
        let g = generic
            .iter()
            .find(|s| s.kind == SubstitutionKind::KakCz)
            .unwrap();
        let o = optimized
            .iter()
            .find(|s| s.kind == SubstitutionKind::KakCz)
            .unwrap();
        assert_eq!(g.replacement.two_qubit_gate_count(), 3);
        assert_eq!(o.replacement.two_qubit_gate_count(), 2);
        assert!(o.delta_duration < g.delta_duration);
    }

    #[test]
    fn literal_swap_gate_matched() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        assert!(subs
            .iter()
            .any(|s| s.kind == SubstitutionKind::SwapDiabatic && s.ops.len() == 1));
    }

    #[test]
    fn routing_subs_priced_from_swap_realizations() {
        use qca_hw::CouplingMap;
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 2]); // distance 2 on a line
        let (pre, hw) = pre_of(&c);
        let mut subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let before = subs.len();
        append_routing_substitutions(&mut subs, &pre, &hw, &CouplingMap::line(3)).unwrap();
        let routed: Vec<&Substitution> = subs[before..].iter().collect();
        assert_eq!(routed.len(), 2, "one per priced swap realization");
        for (i, s) in routed.iter().enumerate() {
            assert_eq!(s.id, before + i, "ids stay dense");
            assert!(s.ops.is_empty() && s.replacement.is_empty());
            let route = s.route.as_ref().unwrap();
            assert_eq!(route.path, vec![0, 1, 2]);
            assert_eq!(route.swap_count(), 2);
            let cost = hw.cost(&route.gate).unwrap();
            assert!((s.delta_duration - 2.0 * cost.duration).abs() < 1e-9);
            assert!((s.delta_log_fidelity - 2.0 * cost.fidelity.ln()).abs() < 1e-12);
        }
        let kinds: Vec<SubstitutionKind> = routed.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SubstitutionKind::RouteSwapDiabatic));
        assert!(kinds.contains(&SubstitutionKind::RouteSwapComposite));
    }

    #[test]
    fn coupled_blocks_gain_no_routing_subs() {
        use qca_hw::CouplingMap;
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        let (pre, hw) = pre_of(&c);
        let mut subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let before = subs.len();
        append_routing_substitutions(&mut subs, &pre, &hw, &CouplingMap::line(2)).unwrap();
        assert_eq!(subs.len(), before);
    }

    #[test]
    fn routing_subs_conflict_only_with_each_other() {
        use qca_hw::CouplingMap;
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 2]);
        c.push(Gate::Cx, &[2, 0]);
        c.push(Gate::Cx, &[0, 2]);
        let (pre, hw) = pre_of(&c);
        let mut subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        append_routing_substitutions(&mut subs, &pre, &hw, &CouplingMap::line(3)).unwrap();
        let routed: Vec<&Substitution> = subs.iter().filter(|s| s.route.is_some()).collect();
        assert_eq!(routed.len(), 2);
        // The two routing variants of one block are mutually exclusive...
        assert!(routed[0].conflicts_with(routed[1]));
        // ...but compose freely with the block's gate substitutions.
        for s in subs.iter().filter(|s| s.route.is_none()) {
            if s.block == routed[0].block {
                assert!(!routed[0].conflicts_with(s), "route vs {:?}", s.kind);
            }
        }
    }

    #[test]
    fn oversized_circuit_for_coupling_rejected() {
        use qca_hw::CouplingMap;
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 2]);
        let (pre, hw) = pre_of(&c);
        let mut subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        let err = append_routing_substitutions(&mut subs, &pre, &hw, &CouplingMap::line(2));
        assert!(matches!(
            err,
            Err(crate::error::AdaptError::InvalidOptions(_))
        ));
    }

    #[test]
    fn device_larger_than_circuit_routes_in_range() {
        // A 5-qubit device hosting a 3-qubit circuit: routing must stay on
        // the first three qubits (the induced subgraph), never through the
        // device's extra qubits.
        use qca_hw::CouplingMap;
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 2]);
        let (pre, hw) = pre_of(&c);
        let mut subs = evaluate_substitutions(&pre, &hw, &RuleOptions::default()).unwrap();
        append_routing_substitutions(&mut subs, &pre, &hw, &CouplingMap::ring(5)).unwrap();
        let route = subs
            .iter()
            .find_map(|s| s.route.as_ref())
            .expect("0-2 uncoupled on the induced line");
        assert!(route.path.iter().all(|&q| q < 3), "{:?}", route.path);
        assert_eq!(route.path, vec![0, 1, 2]);
    }
}
