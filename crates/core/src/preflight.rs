//! Static preflight analysis: run the `qca-lint` passes relevant to an
//! adaptation request and reject statically infeasible inputs before any
//! encoding or solving happens.
//!
//! [`preflight`] is the gatekeeper the batch engine runs as its
//! `engine.preflight` stage: it combines the circuit-shape, hardware-model,
//! and rule-coverage lints for the exact (circuit, hardware, options)
//! triple that [`adapt`](crate::adapt) would solve. Error-severity findings
//! — notably `QCA0301` (a block whose reference translation needs unpriced
//! gate classes) — are returned as
//! [`AdaptError::Rejected`], proving
//! infeasibility without an `smt.encode` phase ever running.

use crate::error::AdaptError;
use crate::rules::RuleOptions;
use qca_circuit::Circuit;
use qca_hw::{CouplingMap, HardwareModel};
use qca_lint::{
    has_errors, lint_circuit, lint_circuit_coupling, lint_hardware, lint_rule_coverage,
};
pub use qca_lint::{Diagnostic, RuleToggles};

impl From<&RuleOptions> for RuleToggles {
    fn from(rules: &RuleOptions) -> Self {
        RuleToggles {
            kak_cz: rules.kak_cz,
            kak_cz_diabatic: rules.kak_cz_diabatic,
            conditional_rotation: rules.conditional_rotation,
            swaps: rules.swaps,
        }
    }
}

/// Statically analyses an adaptation request.
///
/// Runs the circuit-shape, hardware-model, and rule-coverage lint passes
/// and returns every finding. When any finding has error severity the
/// input is statically unusable and `Err(AdaptError::Rejected)` carries
/// the full diagnostic list instead.
///
/// # Examples
///
/// A circuit whose blocks cannot be referenced natively is rejected
/// without solving:
///
/// ```
/// use qca_adapt::{preflight, AdaptError, RuleOptions};
/// use qca_circuit::{Circuit, Gate};
/// use qca_hw::ibm_source_model;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::Cx, &[0, 1]);
/// // ibm_source prices Cx but not Cz, so the CZ-basis reference
/// // translation of the block is unpriced: statically unadaptable.
/// let err = preflight(&c, &ibm_source_model(), &RuleOptions::default());
/// assert!(matches!(err, Err(AdaptError::Rejected(_))));
/// ```
pub fn preflight(
    circuit: &Circuit,
    hw: &HardwareModel,
    rules: &RuleOptions,
) -> Result<Vec<Diagnostic>, AdaptError> {
    preflight_with_coupling(circuit, hw, rules, None)
}

/// [`preflight`] for a topology-constrained request: additionally runs the
/// coupling lints (`QCA0209`–`QCA0211`). An uncoupled pair the map can
/// still route is a warning; an unroutable pair (no path, or no priced swap
/// realization) is an error and rejects the request, matching where
/// [`adapt`](crate::adapt) would fail during rule evaluation.
pub fn preflight_with_coupling(
    circuit: &Circuit,
    hw: &HardwareModel,
    rules: &RuleOptions,
    coupling: Option<&CouplingMap>,
) -> Result<Vec<Diagnostic>, AdaptError> {
    let mut diags = lint_circuit(circuit);
    diags.extend(lint_hardware(hw));
    diags.extend(lint_rule_coverage(circuit, hw, &rules.into()));
    if let Some(cm) = coupling {
        diags.extend(lint_circuit_coupling(circuit, cm, hw));
    }
    if has_errors(&diags) {
        Err(AdaptError::Rejected(diags))
    } else {
        Ok(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AdaptContext;
    use qca_circuit::Gate;
    use qca_hw::{ibm_source_model, spin_qubit_model, GateTimes};
    use qca_lint::{LintCode, Severity};

    fn swap_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        c
    }

    #[test]
    fn clean_request_passes_with_no_findings() {
        let hw = spin_qubit_model(GateTimes::D0);
        let diags = preflight(&swap_circuit(), &hw, &RuleOptions::default()).unwrap();
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn warnings_do_not_reject() {
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        let diags = preflight(&c, &hw, &RuleOptions::default()).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::SelfInversePair);
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn unadaptable_block_is_rejected_with_qca0301() {
        let err = preflight(
            &swap_circuit(),
            &ibm_source_model(),
            &RuleOptions::default(),
        );
        let Err(AdaptError::Rejected(diags)) = err else {
            panic!("expected rejection, got {err:?}");
        };
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::BlockUnadaptable && d.severity == Severity::Error));
    }

    #[test]
    fn rejection_agrees_with_adapt_failure() {
        // The static proof must match the dynamic behaviour: adapt() on
        // the same input fails in preprocessing.
        let hw = ibm_source_model();
        let err = crate::adapt(&swap_circuit(), &hw, &AdaptContext::default());
        assert!(matches!(err, Err(AdaptError::UnsupportedGate(_))));
    }

    #[test]
    fn coupling_preflight_warns_on_routable_pairs() {
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 2]);
        let line = CouplingMap::line(3);
        let diags = preflight_with_coupling(&c, &hw, &RuleOptions::default(), Some(&line)).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::UncoupledGate && d.severity == Severity::Warn));
    }

    #[test]
    fn coupling_preflight_rejects_unroutable_pairs() {
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 2]);
        let cm = CouplingMap::new(3, [(0, 1)]).unwrap(); // qubit 2 isolated
        let err = preflight_with_coupling(&c, &hw, &RuleOptions::default(), Some(&cm));
        let Err(AdaptError::Rejected(diags)) = err else {
            panic!("expected rejection, got {err:?}");
        };
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::UncoupledGate && d.severity == Severity::Error));
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::CouplingDisconnected));
    }

    #[test]
    fn coupling_preflight_rejects_undersized_map() {
        let hw = spin_qubit_model(GateTimes::D0);
        let line = CouplingMap::line(2);
        let err = preflight_with_coupling(
            &swap_circuit_3q(),
            &hw,
            &RuleOptions::default(),
            Some(&line),
        );
        let Err(AdaptError::Rejected(diags)) = err else {
            panic!("expected rejection, got {err:?}");
        };
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::CouplingQubitMismatch));
    }

    fn swap_circuit_3q() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        c
    }

    #[test]
    fn rejected_error_display_names_the_first_error() {
        let err = preflight(
            &swap_circuit(),
            &ibm_source_model(),
            &RuleOptions::default(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rejected by preflight"), "{msg}");
        assert!(msg.contains("QCA0301"), "{msg}");
    }
}
