//! The end-to-end adaptation pipeline (Fig. 2 of the paper).
//!
//! `preprocess → evaluate substitution rules → build & solve SMT model →
//! apply chosen substitutions`.

use crate::error::AdaptError;
use crate::model::{AdaptLimits, Objective, SmtAdaptation};
use crate::preprocess::{preprocess, Preprocessed};
use crate::rules::{apply_to_block, evaluate_substitutions, RuleOptions, Substitution};
use qca_circuit::Circuit;
use qca_hw::HardwareModel;
use qca_smt::omt::Strategy;
use qca_synth::consolidate::consolidate_1q;

/// Options for [`adapt`].
#[derive(Debug, Clone, Default)]
pub struct AdaptOptions {
    /// Objective function handed to the SMT solver.
    pub objective: Objective,
    /// Which substitution rules to evaluate.
    pub rules: RuleOptions,
    /// OMT search strategy.
    pub strategy: Strategy,
    /// Run the OMT search to proven optimality (no probe budgets or gap).
    /// Slower on scheduling objectives; the default budgeted search reports
    /// whether it happened to prove optimality via
    /// [`SmtAdaptation::optimal`](crate::SmtAdaptation).
    pub exact: bool,
    /// Total-conflict cap and cooperative cancellation (engine-driven
    /// per-job budgets); default: unlimited, no flag.
    pub limits: AdaptLimits,
}

impl AdaptOptions {
    /// Options with a specific objective and defaults elsewhere.
    pub fn with_objective(objective: Objective) -> Self {
        AdaptOptions {
            objective,
            ..AdaptOptions::default()
        }
    }

    /// Options demanding a proven-optimal search.
    pub fn exact_with_objective(objective: Objective) -> Self {
        AdaptOptions {
            objective,
            exact: true,
            ..AdaptOptions::default()
        }
    }
}

/// Result of a SAT-based circuit adaptation.
#[derive(Debug, Clone)]
pub struct Adaptation {
    /// The adapted circuit (native to the target hardware).
    pub circuit: Circuit,
    /// The reference adaptation (direct basis translation), for comparison.
    pub reference: Circuit,
    /// The substitutions the solver selected.
    pub chosen: Vec<Substitution>,
    /// The full evaluated catalog size.
    pub catalog_size: usize,
    /// Raw solver outcome (objective value, query/variable counts).
    pub solver: SmtAdaptation,
}

/// Adapts `circuit` to the `hw` gate set, choosing a globally optimal
/// combination of substitutions with an SMT model.
///
/// # Errors
///
/// Propagates [`AdaptError`] from preprocessing, rule evaluation, or
/// solving.
///
/// # Examples
///
/// ```
/// use qca_adapt::{adapt, AdaptOptions, Objective};
/// use qca_circuit::{Circuit, Gate};
/// use qca_hw::{spin_qubit_model, GateTimes};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::Cx, &[0, 1]);
/// c.push(Gate::Cx, &[1, 0]);
/// c.push(Gate::Cx, &[0, 1]);
/// let hw = spin_qubit_model(GateTimes::D0);
/// let result = adapt(&c, &hw, &AdaptOptions::with_objective(Objective::Fidelity))?;
/// assert!(hw.supports_circuit(&result.circuit));
/// # Ok::<(), qca_adapt::AdaptError>(())
/// ```
pub fn adapt(
    circuit: &Circuit,
    hw: &HardwareModel,
    options: &AdaptOptions,
) -> Result<Adaptation, AdaptError> {
    let pre = preprocess(circuit, hw)?;
    let catalog = evaluate_substitutions(&pre, hw, &options.rules)?;
    let budget = if options.exact {
        None
    } else {
        Some(crate::model::DEFAULT_PROBE_BUDGET)
    };
    let solver = crate::model::solve_model_with_limits(
        &pre,
        hw,
        &catalog,
        options.objective,
        options.strategy,
        budget,
        &options.limits,
    )?;
    let circuit = extract_circuit(&pre, &catalog, &solver.chosen);
    let chosen = solver.chosen.iter().map(|&i| catalog[i].clone()).collect();
    Ok(Adaptation {
        circuit,
        reference: pre.reference_circuit(),
        chosen,
        catalog_size: catalog.len(),
        solver,
    })
}

/// Assembles the global adapted circuit from the chosen substitutions.
pub fn extract_circuit(pre: &Preprocessed, catalog: &[Substitution], chosen: &[usize]) -> Circuit {
    let mut out = Circuit::new(pre.source.num_qubits());
    for id in pre.partition.topological_order() {
        let block = &pre.partition.blocks[id];
        let subs: Vec<&Substitution> = chosen
            .iter()
            .map(|&i| &catalog[i])
            .filter(|s| s.block == id)
            .collect();
        let local = apply_to_block(pre, id, &subs);
        for instr in local.iter() {
            let mapped: Vec<usize> = instr.qubits.iter().map(|&q| block.qubits[q]).collect();
            out.push(instr.gate, &mapped);
        }
    }
    consolidate_1q(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Objective;
    use qca_circuit::Gate;
    use qca_hw::{spin_qubit_model, CircuitSchedule, GateTimes};
    use qca_num::phase::approx_eq_up_to_phase;

    fn swap_chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Rz(0.3), &[2]);
        c
    }

    #[test]
    fn adaptation_preserves_unitary_all_objectives() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        for obj in [
            Objective::Fidelity,
            Objective::IdleTime,
            Objective::Combined,
        ] {
            let r = adapt(&c, &hw, &AdaptOptions::with_objective(obj)).unwrap();
            assert!(
                approx_eq_up_to_phase(&r.circuit.unitary(), &c.unitary(), 1e-6),
                "{obj} broke the unitary"
            );
            assert!(hw.supports_circuit(&r.circuit), "{obj} non-native output");
        }
    }

    #[test]
    fn fidelity_objective_beats_reference() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptOptions::with_objective(Objective::Fidelity)).unwrap();
        let f_adapted = hw.circuit_fidelity(&r.circuit).unwrap();
        let f_reference = hw.circuit_fidelity(&r.reference).unwrap();
        assert!(
            f_adapted >= f_reference - 1e-12,
            "adapted {f_adapted} < reference {f_reference}"
        );
    }

    #[test]
    fn idle_objective_not_worse_than_reference() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptOptions::with_objective(Objective::IdleTime)).unwrap();
        let s_adapted = CircuitSchedule::asap(&r.circuit, &hw).unwrap();
        let s_reference = CircuitSchedule::asap(&r.reference, &hw).unwrap();
        assert!(
            s_adapted.total_idle_time() <= s_reference.total_idle_time() + 1.0,
            "idle {} vs reference {}",
            s_adapted.total_idle_time(),
            s_reference.total_idle_time()
        );
    }

    #[test]
    fn d1_times_change_choices_or_costs() {
        // With D1 timings, swap_c is only 13 ns; adaptation should exploit
        // fast realizations and beat the reference duration.
        let hw = spin_qubit_model(GateTimes::D1);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptOptions::with_objective(Objective::IdleTime)).unwrap();
        let s_adapted = CircuitSchedule::asap(&r.circuit, &hw).unwrap();
        let s_reference = CircuitSchedule::asap(&r.reference, &hw).unwrap();
        assert!(s_adapted.total_duration <= s_reference.total_duration);
    }

    #[test]
    fn chosen_substitutions_reported() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptOptions::with_objective(Objective::Fidelity)).unwrap();
        assert!(r.catalog_size > 0);
        for s in &r.chosen {
            assert!(s.block < r.reference.len().max(100));
        }
    }

    #[test]
    fn pre_cancelled_adaptation_reports_cancelled() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let mut opts = AdaptOptions::with_objective(Objective::Fidelity);
        opts.limits.cancel = Some(Arc::new(AtomicBool::new(true)));
        assert_eq!(adapt(&c, &hw, &opts).unwrap_err(), AdaptError::Cancelled);
    }

    #[test]
    fn tiny_conflict_cap_degrades_not_crashes() {
        // A one-conflict lifetime cap either still finds the warm-start
        // incumbent (degraded, non-optimal result) or reports Cancelled —
        // never Infeasible, never a panic.
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let mut opts = AdaptOptions::with_objective(Objective::Combined);
        opts.limits.total_conflicts = Some(1);
        match adapt(&c, &hw, &opts) {
            Ok(r) => {
                assert!(hw.supports_circuit(&r.circuit));
            }
            Err(e) => assert_eq!(e, AdaptError::Cancelled),
        }
    }

    #[test]
    fn generous_limits_change_nothing() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let plain = adapt(&c, &hw, &AdaptOptions::with_objective(Objective::Fidelity)).unwrap();
        let mut opts = AdaptOptions::with_objective(Objective::Fidelity);
        opts.limits.total_conflicts = Some(u64::MAX);
        opts.limits.cancel = Some(Arc::new(AtomicBool::new(false)));
        let limited = adapt(&c, &hw, &opts).unwrap();
        assert_eq!(plain.solver.objective_value, limited.solver.objective_value);
        assert_eq!(plain.circuit.len(), limited.circuit.len());
        // Statistics are populated (the warm-start hint enters as
        // assumptions, so decisions can legitimately be zero; propagation
        // cannot be).
        assert!(limited.solver.solver_stats.propagations > 0);
    }

    #[test]
    fn single_qubit_only_circuit() {
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(1.0), &[1]);
        let r = adapt(&c, &hw, &AdaptOptions::default()).unwrap();
        assert!(approx_eq_up_to_phase(
            &r.circuit.unitary(),
            &c.unitary(),
            1e-8
        ));
    }

    #[test]
    fn quantum_volume_style_block() {
        // A Haar-random two-qubit unitary block expressed via its KAK CX
        // circuit in the source basis.
        use qca_num::random::haar_unitary;
        use qca_synth::kak::kak_decompose;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let u = haar_unitary(&mut rng, 4);
        let src = kak_decompose(&u).to_circuit_cx();
        let hw = spin_qubit_model(GateTimes::D0);
        let r = adapt(
            &src,
            &hw,
            &AdaptOptions::with_objective(Objective::Fidelity),
        )
        .unwrap();
        assert!(approx_eq_up_to_phase(
            &r.circuit.unitary(),
            &src.unitary(),
            1e-6
        ));
    }
}
