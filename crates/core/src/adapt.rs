//! The end-to-end adaptation pipeline (Fig. 2 of the paper).
//!
//! `preprocess → evaluate substitution rules → build & solve SMT model →
//! apply chosen substitutions`.

use crate::context::{AdaptContext, AdaptContextBuilder};
use crate::error::AdaptError;
use crate::model::{Objective, SmtAdaptation};
use crate::preprocess::{preprocess, Preprocessed};
use crate::rules::{
    append_routing_substitutions, apply_to_block, evaluate_substitutions, RuleOptions, Substitution,
};
use qca_circuit::Circuit;
use qca_hw::{CouplingMap, HardwareModel};
use qca_smt::omt::Strategy;
use qca_synth::consolidate::consolidate_1q;

/// What [`adapt`] solves: objective, rule set, search strategy, exactness.
///
/// Run-time concerns (conflict budgets, cancellation, tracing) live on
/// [`AdaptContext`], which wraps these options; `AdaptOptions` itself stays
/// a plain value describing the problem.
#[derive(Debug, Clone, Default)]
pub struct AdaptOptions {
    /// Objective function handed to the SMT solver.
    pub objective: Objective,
    /// Which substitution rules to evaluate.
    pub rules: RuleOptions,
    /// OMT search strategy.
    pub strategy: Strategy,
    /// Run the OMT search to proven optimality (no probe budgets or gap).
    /// Slower on scheduling objectives; the default budgeted search reports
    /// whether it happened to prove optimality via
    /// [`SmtAdaptation::optimal`](crate::SmtAdaptation).
    pub exact: bool,
    /// Record the constraint system during the solve and attach
    /// [`VerificationData`](crate::VerificationData) to the result: an audit
    /// bundle for independent model replay, plus (for proven-optimal
    /// searches) a DRAT optimality certificate. Costs extra memory and, for
    /// the certificate, one proof-logged re-solve.
    pub certify: bool,
    /// Target qubit connectivity. `None` (the default) keeps the paper's
    /// all-to-all assumption. With a map, every two-qubit block on an
    /// uncoupled pair gains routing substitutions (SWAP insertion along the
    /// BFS-shortest path, priced from Table I's swap realizations) and the
    /// OMT objective trades routing overhead against fidelity. An
    /// all-to-all map generates no routing substitutions and is
    /// bit-identical to `None`.
    pub coupling: Option<CouplingMap>,
}

impl AdaptOptions {
    /// Starts a validating builder. Chain [`limits`](AdaptOptionsBuilder::limits),
    /// [`tracer`](AdaptOptionsBuilder::tracer), or
    /// [`cancel`](AdaptOptionsBuilder::cancel) to transition into building a
    /// full [`AdaptContext`].
    pub fn builder() -> AdaptOptionsBuilder {
        AdaptOptionsBuilder::default()
    }

    /// Options with a specific objective and defaults elsewhere.
    #[deprecated(
        since = "0.2.0",
        note = "use `AdaptContext::with_objective` (or `AdaptOptions::builder().objective(..)`)"
    )]
    pub fn with_objective(objective: Objective) -> Self {
        AdaptOptions {
            objective,
            ..AdaptOptions::default()
        }
    }

    /// Options demanding a proven-optimal search.
    #[deprecated(
        since = "0.2.0",
        note = "use `AdaptOptions::builder().objective(..).exact()`"
    )]
    pub fn exact_with_objective(objective: Objective) -> Self {
        AdaptOptions {
            objective,
            exact: true,
            ..AdaptOptions::default()
        }
    }
}

/// Validating builder for [`AdaptOptions`], and the entry ramp to
/// [`AdaptContext`]: calling [`limits`](Self::limits),
/// [`tracer`](Self::tracer), or [`cancel`](Self::cancel) transitions into an
/// [`AdaptContextBuilder`] carrying the options configured so far.
///
/// # Examples
///
/// ```
/// use qca_adapt::{AdaptOptions, Objective};
///
/// // Options only.
/// let opts = AdaptOptions::builder().objective(Objective::IdleTime).build();
/// assert_eq!(opts.objective, Objective::IdleTime);
///
/// // Transition into a context once run-time concerns appear.
/// let ctx = AdaptOptions::builder()
///     .objective(Objective::Combined)
///     .exact()
///     .limits(Some(100_000))
///     .build();
/// assert!(ctx.options.exact);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdaptOptionsBuilder {
    objective: Objective,
    rules: RuleOptions,
    strategy: Strategy,
    exact: bool,
    certify: bool,
    coupling: Option<CouplingMap>,
}

impl AdaptOptionsBuilder {
    /// Sets the optimization objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the substitution-rule options.
    pub fn rules(mut self, rules: RuleOptions) -> Self {
        self.rules = rules;
        self
    }

    /// Sets the OMT search strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Demands a proven-optimal search (no probe budgets or gap).
    pub fn exact(mut self) -> Self {
        self.exact = true;
        self
    }

    /// Enables constraint recording and certificate generation (see
    /// [`AdaptOptions::certify`]).
    pub fn certify(mut self) -> Self {
        self.certify = true;
        self
    }

    /// Sets the target qubit connectivity (see [`AdaptOptions::coupling`]).
    pub fn coupling(mut self, coupling: CouplingMap) -> Self {
        self.coupling = Some(coupling);
        self
    }

    /// Transitions to context building with a total-conflict cap (`None`
    /// for unlimited).
    pub fn limits(self, total_conflicts: Option<u64>) -> AdaptContextBuilder {
        self.into_context_builder().limits(total_conflicts)
    }

    /// Transitions to context building with a tracer installed.
    pub fn tracer(self, tracer: qca_trace::Tracer) -> AdaptContextBuilder {
        self.into_context_builder().tracer(tracer)
    }

    /// Transitions to context building with a cancellation flag installed.
    pub fn cancel(
        self,
        cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> AdaptContextBuilder {
        self.into_context_builder().cancel(cancel)
    }

    /// Builds an [`AdaptContext`] with default limits, no tracer, and no
    /// cancellation flag.
    ///
    /// # Panics
    ///
    /// When the options fail validation.
    pub fn context(self) -> AdaptContext {
        self.into_context_builder().build()
    }

    fn into_context_builder(self) -> AdaptContextBuilder {
        AdaptContextBuilder {
            options: self,
            ..AdaptContextBuilder::default()
        }
    }

    /// Validates and builds, returning [`AdaptError::InvalidOptions`] on a
    /// nonsensical configuration.
    pub fn try_build(self) -> Result<AdaptOptions, AdaptError> {
        if self.rules.max_match_len < 2 {
            return Err(AdaptError::InvalidOptions(format!(
                "rules.max_match_len = {} cannot match any multi-gate pattern (minimum 2)",
                self.rules.max_match_len
            )));
        }
        Ok(AdaptOptions {
            objective: self.objective,
            rules: self.rules,
            strategy: self.strategy,
            exact: self.exact,
            certify: self.certify,
            coupling: self.coupling,
        })
    }

    /// Validates and builds, panicking on an invalid configuration.
    ///
    /// # Panics
    ///
    /// When [`try_build`](Self::try_build) would return an error.
    pub fn build(self) -> AdaptOptions {
        match self.try_build() {
            Ok(opts) => opts,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Result of a SAT-based circuit adaptation.
#[derive(Debug, Clone)]
pub struct Adaptation {
    /// The adapted circuit (native to the target hardware).
    pub circuit: Circuit,
    /// The reference adaptation (direct basis translation), for comparison.
    pub reference: Circuit,
    /// The substitutions the solver selected.
    pub chosen: Vec<Substitution>,
    /// The full evaluated catalog size.
    pub catalog_size: usize,
    /// Raw solver outcome (objective value, query/variable counts).
    pub solver: SmtAdaptation,
}

/// Adapts `circuit` to the `hw` gate set, choosing a globally optimal
/// combination of substitutions with an SMT model.
///
/// The [`AdaptContext`] bundles the options with run-time concerns: conflict
/// budgets, cooperative cancellation, and span tracing. A plain
/// `&Objective.into()` or [`AdaptContext::default`] suffices for simple
/// calls.
///
/// # Errors
///
/// Propagates [`AdaptError`] from preprocessing, rule evaluation, or
/// solving.
///
/// # Examples
///
/// ```
/// use qca_adapt::{adapt, AdaptContext, Objective};
/// use qca_circuit::{Circuit, Gate};
/// use qca_hw::{spin_qubit_model, GateTimes};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::Cx, &[0, 1]);
/// c.push(Gate::Cx, &[1, 0]);
/// c.push(Gate::Cx, &[0, 1]);
/// let hw = spin_qubit_model(GateTimes::D0);
/// let result = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity))?;
/// assert!(hw.supports_circuit(&result.circuit));
/// # Ok::<(), qca_adapt::AdaptError>(())
/// ```
pub fn adapt(
    circuit: &Circuit,
    hw: &HardwareModel,
    ctx: &AdaptContext,
) -> Result<Adaptation, AdaptError> {
    let mut root = ctx.tracer.span_with("adapt", || {
        format!(
            "objective={} qubits={} gates={}",
            ctx.options.objective,
            circuit.num_qubits(),
            circuit.len()
        )
    });
    let result = adapt_inner(circuit, hw, ctx);
    root.set_note(match &result {
        Ok(_) => "ok",
        Err(AdaptError::Cancelled) => "cancelled",
        Err(AdaptError::Infeasible) => "infeasible",
        Err(AdaptError::TooLarge(_)) => "too_large",
        Err(AdaptError::UnsupportedGate(_)) => "unsupported_gate",
        Err(AdaptError::InvalidOptions(_)) => "invalid_options",
        Err(AdaptError::Internal(_)) => "internal",
        Err(AdaptError::Rejected(_)) => "rejected",
    });
    result
}

fn adapt_inner(
    circuit: &Circuit,
    hw: &HardwareModel,
    ctx: &AdaptContext,
) -> Result<Adaptation, AdaptError> {
    let pre = {
        let _span = ctx.tracer.span("preprocess");
        preprocess(circuit, hw)?
    };
    let catalog = {
        let mut span = ctx.tracer.span("rules");
        let catalog = build_catalog(&pre, hw, ctx)?;
        ctx.tracer
            .counter("rules.catalog_size", catalog.len() as u64);
        span.set_note(format!("catalog={}", catalog.len()));
        catalog
    };
    let solver = crate::model::solve_model(&pre, hw, &catalog, ctx)?;
    let circuit = {
        let _span = ctx.tracer.span("extract");
        extract_circuit(&pre, &catalog, &solver.chosen)
    };
    let chosen = solver.chosen.iter().map(|&i| catalog[i].clone()).collect();
    Ok(Adaptation {
        circuit,
        reference: pre.reference_circuit(),
        chosen,
        catalog_size: catalog.len(),
        solver,
    })
}

/// Outcome of [`recalibrate_adaptation`].
#[derive(Debug, Clone)]
pub enum Recalibration {
    /// The previous selection is still optimal under the new hardware data:
    /// the adaptation was refreshed (re-scored objective, fresh
    /// verification data) without a full OMT search.
    Reused(Adaptation),
    /// The previous optimum no longer held; a warm-started solve produced
    /// a new adaptation.
    Resolved(Adaptation),
}

impl Recalibration {
    /// The refreshed adaptation, however it was obtained.
    pub fn into_adaptation(self) -> Adaptation {
        match self {
            Recalibration::Reused(a) | Recalibration::Resolved(a) => a,
        }
    }

    /// `true` when the previous optimum was reused without a re-solve.
    pub fn reused(&self) -> bool {
        matches!(self, Recalibration::Reused(_))
    }
}

/// Re-validates a previously computed adaptation against (possibly drifted)
/// hardware data. The cached selection's optimality is re-checked with
/// [`recheck_optimum`](crate::model::recheck_optimum) — two SAT queries
/// when it still holds — and only entries whose certificate no longer
/// holds pay for a fresh OMT search, warm-started from the previous
/// selection.
///
/// # Errors
///
/// Propagates [`AdaptError`] from preprocessing, rule evaluation, the
/// re-check, or the fallback solve.
pub fn recalibrate_adaptation(
    circuit: &Circuit,
    hw: &HardwareModel,
    prev: &Adaptation,
    ctx: &AdaptContext,
    recheck_budget: Option<u64>,
) -> Result<Recalibration, AdaptError> {
    let mut root = ctx.tracer.span_with("recalibrate", || {
        format!(
            "objective={} qubits={} gates={}",
            ctx.options.objective,
            circuit.num_qubits(),
            circuit.len()
        )
    });
    let pre = {
        let _span = ctx.tracer.span("preprocess");
        preprocess(circuit, hw)?
    };
    let catalog = {
        let _span = ctx.tracer.span("rules");
        build_catalog(&pre, hw, ctx)?
    };
    // Note the previous solve need not carry an optimality claim: the
    // exact re-check also confirms (and upgrades) a gap-degraded result
    // whose value happens to be the true optimum.
    let outcome = crate::model::recheck_optimum(
        &pre,
        hw,
        &catalog,
        ctx,
        &prev.solver.chosen,
        recheck_budget,
    )?;
    match outcome {
        crate::model::RecheckOutcome::StillOptimal(solver) => {
            root.set_note("reused");
            let solver = *solver;
            let circuit = extract_circuit(&pre, &catalog, &solver.chosen);
            let chosen = solver.chosen.iter().map(|&i| catalog[i].clone()).collect();
            Ok(Recalibration::Reused(Adaptation {
                circuit,
                reference: pre.reference_circuit(),
                chosen,
                catalog_size: catalog.len(),
                solver,
            }))
        }
        crate::model::RecheckOutcome::Changed => {
            root.set_note("resolved");
            let mut warm_ctx = ctx.clone();
            warm_ctx.warm_hint = Some(prev.solver.chosen.clone());
            adapt(circuit, hw, &warm_ctx).map(Recalibration::Resolved)
        }
    }
}

/// [`adapt`] taking bare [`AdaptOptions`].
#[deprecated(
    since = "0.2.0",
    note = "use `adapt` with an `AdaptContext` (e.g. `&options.into()`)"
)]
pub fn adapt_with_options(
    circuit: &Circuit,
    hw: &HardwareModel,
    options: &AdaptOptions,
) -> Result<Adaptation, AdaptError> {
    adapt(circuit, hw, &AdaptContext::new(options.clone()))
}

/// Evaluates the full substitution catalog for one solve: the gate
/// substitution rules, then — when the context carries a coupling map —
/// the routing substitutions, appended with continuing dense ids so the
/// catalog is identical across [`adapt`] and [`recalibrate_adaptation`].
fn build_catalog(
    pre: &Preprocessed,
    hw: &HardwareModel,
    ctx: &AdaptContext,
) -> Result<Vec<Substitution>, AdaptError> {
    let mut catalog = evaluate_substitutions(pre, hw, &ctx.options.rules)?;
    if let Some(coupling) = &ctx.options.coupling {
        append_routing_substitutions(&mut catalog, pre, hw, coupling)?;
    }
    Ok(catalog)
}

/// Assembles the global adapted circuit from the chosen substitutions.
///
/// A chosen routing substitution wraps its block in a SWAP ladder: the
/// block's first operand walks the route's path to the qubit adjacent to
/// the second operand, the (substituted) block body executes there, and the
/// swaps walk back — net identity on every intermediate qubit.
pub fn extract_circuit(pre: &Preprocessed, catalog: &[Substitution], chosen: &[usize]) -> Circuit {
    let mut out = Circuit::new(pre.source.num_qubits());
    for id in pre.partition.topological_order() {
        let block = &pre.partition.blocks[id];
        let all: Vec<&Substitution> = chosen
            .iter()
            .map(|&i| &catalog[i])
            .filter(|s| s.block == id)
            .collect();
        let route = all.iter().find_map(|s| s.route.as_ref());
        let subs: Vec<&Substitution> = all.iter().filter(|s| s.route.is_none()).copied().collect();
        let local = apply_to_block(pre, id, &subs);
        match route {
            None => {
                for instr in local.iter() {
                    let mapped: Vec<usize> =
                        instr.qubits.iter().map(|&q| block.qubits[q]).collect();
                    out.push(instr.gate, &mapped);
                }
            }
            Some(route) => {
                // path[0] is block.qubits[0]; the body runs on the
                // penultimate path node (adjacent to block.qubits[1]).
                let path = &route.path;
                debug_assert_eq!(path[0], block.qubits[0]);
                debug_assert_eq!(*path.last().unwrap(), block.qubits[1]);
                let host = path[path.len() - 2];
                for w in path[..path.len() - 1].windows(2) {
                    out.push(route.gate, &[w[0], w[1]]);
                }
                for instr in local.iter() {
                    let mapped: Vec<usize> = instr
                        .qubits
                        .iter()
                        .map(|&q| if q == 0 { host } else { block.qubits[q] })
                        .collect();
                    out.push(instr.gate, &mapped);
                }
                for w in path[..path.len() - 1].windows(2).rev() {
                    out.push(route.gate, &[w[0], w[1]]);
                }
            }
        }
    }
    consolidate_1q(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Objective;
    use qca_circuit::Gate;
    use qca_hw::{spin_qubit_model, CircuitSchedule, GateTimes};
    use qca_num::phase::approx_eq_up_to_phase;

    fn swap_chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Rz(0.3), &[2]);
        c
    }

    #[test]
    fn recalibrate_reuses_on_unchanged_hardware() {
        let c = swap_chain();
        let hw = spin_qubit_model(GateTimes::D0);
        let ctx = AdaptContext::with_objective(Objective::Fidelity);
        let first = adapt(&c, &hw, &ctx).unwrap();
        let r = recalibrate_adaptation(&c, &hw, &first, &ctx, None).unwrap();
        assert!(r.reused(), "unchanged hardware must reuse the optimum");
        let again = r.into_adaptation();
        assert_eq!(again.solver.chosen, first.solver.chosen);
        assert_eq!(again.solver.objective_value, first.solver.objective_value);
        assert!(again.solver.optimal);
        assert!(again.solver.queries <= 2, "took {}", again.solver.queries);
        assert!(approx_eq_up_to_phase(
            &again.circuit.unitary(),
            &c.unitary(),
            1e-6
        ));
    }

    #[test]
    fn recalibrate_matches_fresh_solve_after_drift() {
        let c = swap_chain();
        let d0 = spin_qubit_model(GateTimes::D0);
        let ctx = AdaptOptions::builder()
            .objective(Objective::Combined)
            .exact()
            .context();
        let first = adapt(&c, &d0, &ctx).unwrap();
        let drifted = d0.with_scaled_infidelity(4.0);
        let r = recalibrate_adaptation(&c, &drifted, &first, &ctx, None).unwrap();
        let recal = r.into_adaptation();
        let fresh = adapt(&c, &drifted, &ctx).unwrap();
        assert_eq!(recal.solver.objective_value, fresh.solver.objective_value);
        assert!(recal.solver.optimal);
        assert!(drifted.supports_circuit(&recal.circuit));
        assert!(approx_eq_up_to_phase(
            &recal.circuit.unitary(),
            &c.unitary(),
            1e-6
        ));
    }

    #[test]
    fn recalibrate_with_stale_ids_resolves() {
        let c = swap_chain();
        let hw = spin_qubit_model(GateTimes::D0);
        let ctx = AdaptContext::with_objective(Objective::Fidelity);
        let mut prev = adapt(&c, &hw, &ctx).unwrap();
        let expected = prev.solver.objective_value;
        prev.solver.chosen = vec![usize::MAX];
        let r = recalibrate_adaptation(&c, &hw, &prev, &ctx, None).unwrap();
        assert!(!r.reused(), "stale ids cannot be reused");
        let a = r.into_adaptation();
        assert_eq!(a.solver.objective_value, expected);
        assert!(a.solver.optimal);
    }

    #[test]
    fn adaptation_preserves_unitary_all_objectives() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        for obj in [
            Objective::Fidelity,
            Objective::IdleTime,
            Objective::Combined,
        ] {
            let r = adapt(&c, &hw, &AdaptContext::with_objective(obj)).unwrap();
            assert!(
                approx_eq_up_to_phase(&r.circuit.unitary(), &c.unitary(), 1e-6),
                "{obj} broke the unitary"
            );
            assert!(hw.supports_circuit(&r.circuit), "{obj} non-native output");
        }
    }

    #[test]
    fn fidelity_objective_beats_reference() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        let f_adapted = hw.circuit_fidelity(&r.circuit).unwrap();
        let f_reference = hw.circuit_fidelity(&r.reference).unwrap();
        assert!(
            f_adapted >= f_reference - 1e-12,
            "adapted {f_adapted} < reference {f_reference}"
        );
    }

    #[test]
    fn idle_objective_not_worse_than_reference() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::IdleTime)).unwrap();
        let s_adapted = CircuitSchedule::asap(&r.circuit, &hw).unwrap();
        let s_reference = CircuitSchedule::asap(&r.reference, &hw).unwrap();
        assert!(
            s_adapted.total_idle_time() <= s_reference.total_idle_time() + 1.0,
            "idle {} vs reference {}",
            s_adapted.total_idle_time(),
            s_reference.total_idle_time()
        );
    }

    #[test]
    fn d1_times_change_choices_or_costs() {
        // With D1 timings, swap_c is only 13 ns; adaptation should exploit
        // fast realizations and beat the reference duration.
        let hw = spin_qubit_model(GateTimes::D1);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::IdleTime)).unwrap();
        let s_adapted = CircuitSchedule::asap(&r.circuit, &hw).unwrap();
        let s_reference = CircuitSchedule::asap(&r.reference, &hw).unwrap();
        assert!(s_adapted.total_duration <= s_reference.total_duration);
    }

    #[test]
    fn chosen_substitutions_reported() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        assert!(r.catalog_size > 0);
        for s in &r.chosen {
            assert!(s.block < r.reference.len().max(100));
        }
    }

    #[test]
    fn pre_cancelled_adaptation_reports_cancelled() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let ctx = AdaptOptions::builder()
            .objective(Objective::Fidelity)
            .cancel(Arc::new(AtomicBool::new(true)))
            .build();
        assert_eq!(adapt(&c, &hw, &ctx).unwrap_err(), AdaptError::Cancelled);
    }

    #[test]
    fn tiny_conflict_cap_degrades_not_crashes() {
        // A one-conflict lifetime cap either still finds the warm-start
        // incumbent (degraded, non-optimal result) or reports Cancelled —
        // never Infeasible, never a panic.
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let ctx = AdaptOptions::builder()
            .objective(Objective::Combined)
            .limits(Some(1))
            .build();
        match adapt(&c, &hw, &ctx) {
            Ok(r) => {
                assert!(hw.supports_circuit(&r.circuit));
            }
            Err(e) => assert_eq!(e, AdaptError::Cancelled),
        }
    }

    #[test]
    fn generous_limits_change_nothing() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let plain = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        let ctx = AdaptOptions::builder()
            .objective(Objective::Fidelity)
            .limits(Some(u64::MAX))
            .cancel(Arc::new(AtomicBool::new(false)))
            .build();
        let limited = adapt(&c, &hw, &ctx).unwrap();
        assert_eq!(plain.solver.objective_value, limited.solver.objective_value);
        assert_eq!(plain.circuit.len(), limited.circuit.len());
        // Statistics are populated (the warm-start hint enters as
        // assumptions, so decisions can legitimately be zero; propagation
        // cannot be).
        assert!(limited.solver.solver_stats.propagations > 0);
    }

    #[test]
    fn single_qubit_only_circuit() {
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(1.0), &[1]);
        let r = adapt(&c, &hw, &AdaptContext::default()).unwrap();
        assert!(approx_eq_up_to_phase(
            &r.circuit.unitary(),
            &c.unitary(),
            1e-8
        ));
    }

    #[test]
    fn quantum_volume_style_block() {
        // A Haar-random two-qubit unitary block expressed via its KAK CX
        // circuit in the source basis.
        use qca_num::random::haar_unitary;
        use qca_synth::kak::kak_decompose;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let u = haar_unitary(&mut rng, 4);
        let src = kak_decompose(&u).to_circuit_cx();
        let hw = spin_qubit_model(GateTimes::D0);
        let r = adapt(
            &src,
            &hw,
            &AdaptContext::with_objective(Objective::Fidelity),
        )
        .unwrap();
        assert!(approx_eq_up_to_phase(
            &r.circuit.unitary(),
            &src.unitary(),
            1e-6
        ));
    }

    #[test]
    fn invalid_rule_window_rejected() {
        let err = AdaptOptions::builder()
            .rules(RuleOptions {
                max_match_len: 1,
                ..RuleOptions::default()
            })
            .try_build();
        assert!(matches!(err, Err(AdaptError::InvalidOptions(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let opts = AdaptOptions::with_objective(Objective::Fidelity);
        let r = adapt_with_options(&c, &hw, &opts).unwrap();
        assert!(hw.supports_circuit(&r.circuit));
        let exact = AdaptOptions::exact_with_objective(Objective::Fidelity);
        assert!(exact.exact);
    }

    #[test]
    fn adapt_emits_phase_spans() {
        use qca_trace::{report, Tracer};
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let (tracer, sink) = Tracer::to_memory();
        let ctx = AdaptOptions::builder()
            .objective(Objective::Combined)
            .tracer(tracer)
            .build();
        adapt(&c, &hw, &ctx).unwrap();
        let events = sink.take();
        report::validate_forest(&events).unwrap();
        let rpt = report::Report::from_events(&events);
        for phase in [
            "adapt",
            "preprocess",
            "rules",
            "smt.encode",
            "warm_start",
            "omt.search",
            "extract",
        ] {
            assert!(
                rpt.phase_total_ns(phase).is_some(),
                "missing phase span {phase:?}"
            );
        }
        // The root span carries the outcome note.
        assert_eq!(rpt.roots.len(), 1);
        assert_eq!(rpt.roots[0].name, "adapt");
        assert_eq!(rpt.roots[0].note.as_deref(), Some("ok"));
    }

    fn coupled_2q_gates_ok(c: &Circuit, cm: &CouplingMap) -> bool {
        c.iter()
            .filter(|i| i.qubits.len() == 2)
            .all(|i| cm.is_coupled(i.qubits[0], i.qubits[1]))
    }

    #[test]
    fn star_coupling_forces_swap_insertion() {
        // Star centered on qubit 0: the (1,2) block of swap_chain sits on an
        // uncoupled pair and must be routed through the hub.
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let star = CouplingMap::star(3);
        let ctx = AdaptOptions::builder()
            .objective(Objective::Fidelity)
            .coupling(star.clone())
            .context();
        let r = adapt(&c, &hw, &ctx).unwrap();
        assert!(
            r.chosen.iter().any(|s| s.route.is_some()),
            "uncoupled block must select a routing substitution"
        );
        assert!(
            coupled_2q_gates_ok(&r.circuit, &star),
            "adapted circuit has a 2q gate on an uncoupled pair"
        );
        assert!(hw.supports_circuit(&r.circuit));
        assert!(
            approx_eq_up_to_phase(&r.circuit.unitary(), &c.unitary(), 1e-6),
            "routing broke circuit equivalence"
        );
    }

    #[test]
    fn all_to_all_coupling_bit_identical_to_none() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        for obj in [
            Objective::Fidelity,
            Objective::IdleTime,
            Objective::Combined,
        ] {
            let plain = adapt(&c, &hw, &AdaptContext::with_objective(obj)).unwrap();
            let ctx = AdaptOptions::builder()
                .objective(obj)
                .coupling(CouplingMap::all_to_all(3))
                .context();
            let full = adapt(&c, &hw, &ctx).unwrap();
            assert_eq!(plain.solver.chosen, full.solver.chosen, "{obj}");
            assert_eq!(
                plain.solver.objective_value, full.solver.objective_value,
                "{obj}"
            );
            assert_eq!(plain.solver.sat_vars, full.solver.sat_vars, "{obj}");
            assert_eq!(plain.catalog_size, full.catalog_size, "{obj}");
            assert_eq!(plain.circuit, full.circuit, "{obj}");
        }
    }

    #[test]
    fn line_coupling_routes_and_preserves_unitary() {
        // On a line 0-1-2 the (1,2) block is native but a circuit touching
        // (0,2) must route. Build one explicitly.
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 2]);
        c.push(Gate::Rz(0.7), &[2]);
        let line = CouplingMap::line(3);
        let ctx = AdaptOptions::builder()
            .objective(Objective::Combined)
            .coupling(line.clone())
            .context();
        let r = adapt(&c, &hw, &ctx).unwrap();
        assert!(r.chosen.iter().any(|s| s.route.is_some()));
        assert!(coupled_2q_gates_ok(&r.circuit, &line));
        assert!(approx_eq_up_to_phase(
            &r.circuit.unitary(),
            &c.unitary(),
            1e-6
        ));
    }

    #[test]
    fn coupling_smaller_than_circuit_rejected() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain(); // 3 qubits
        let ctx = AdaptOptions::builder()
            .coupling(CouplingMap::line(2))
            .context();
        assert!(matches!(
            adapt(&c, &hw, &ctx),
            Err(AdaptError::InvalidOptions(_))
        ));
    }

    #[test]
    fn disconnected_coupling_rejected_when_block_needs_path() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain(); // has a block on (1, 2)
        let cm = CouplingMap::new(3, [(0, 1)]).unwrap(); // qubit 2 isolated
        let ctx = AdaptOptions::builder().coupling(cm).context();
        match adapt(&c, &hw, &ctx) {
            Err(AdaptError::InvalidOptions(msg)) => {
                assert!(msg.contains("no path"), "{msg}");
            }
            other => panic!("expected InvalidOptions, got {other:?}"),
        }
    }

    #[test]
    fn recalibrate_with_coupling_survives_drift() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let star = CouplingMap::star(3);
        let ctx = AdaptOptions::builder()
            .objective(Objective::Fidelity)
            .coupling(star.clone())
            .context();
        let first = adapt(&c, &hw, &ctx).unwrap();
        // Unchanged hardware: reuse.
        let r = recalibrate_adaptation(&c, &hw, &first, &ctx, None).unwrap();
        assert!(r.reused());
        // Drifted hardware: warm re-solve stays routed and equivalent.
        let drifted = hw.with_scaled_infidelity(3.0);
        let r = recalibrate_adaptation(&c, &drifted, &first, &ctx, None).unwrap();
        let a = r.into_adaptation();
        assert!(a.chosen.iter().any(|s| s.route.is_some()));
        assert!(coupled_2q_gates_ok(&a.circuit, &star));
        assert!(approx_eq_up_to_phase(
            &a.circuit.unitary(),
            &c.unitary(),
            1e-6
        ));
    }

    #[test]
    fn stale_uncoupled_hint_falls_back_to_fresh_solve() {
        // A cached selection computed without a coupling map (no routing
        // subs) must not be "reused" once a map is in force: the re-check
        // sees an incomplete routed selection and re-solves.
        let hw = spin_qubit_model(GateTimes::D0);
        let c = swap_chain();
        let flat = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        let star = CouplingMap::star(3);
        let ctx = AdaptOptions::builder()
            .objective(Objective::Fidelity)
            .coupling(star.clone())
            .context();
        let r = recalibrate_adaptation(&c, &hw, &flat, &ctx, None).unwrap();
        assert!(!r.reused(), "route-incomplete selection must not be reused");
        let a = r.into_adaptation();
        assert!(a.chosen.iter().any(|s| s.route.is_some()));
        assert!(coupled_2q_gates_ok(&a.circuit, &star));
    }
}
