//! Preprocessing (paper §IV-A): block partitioning, reference basis
//! translation, and block cost evaluation.

use crate::error::AdaptError;
use qca_circuit::blocks::{partition_blocks, BlockPartition};
use qca_circuit::Circuit;
use qca_hw::{CircuitSchedule, HardwareModel};
use qca_synth::translate::translate_to_cz;

/// Cost of one block under a hardware model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Critical-path duration of the block (ns).
    pub duration: f64,
    /// Natural log of the product of gate fidelities (non-positive).
    pub log_fidelity: f64,
}

/// The preprocessed circuit: blocks, dependencies, reference adaptation and
/// per-block reference costs.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Source circuit (as given).
    pub source: Circuit,
    /// Two-qubit block partition with the dependency graph.
    pub partition: BlockPartition,
    /// Per-block local circuits in the source basis.
    pub block_circuits: Vec<Circuit>,
    /// Per-block reference adaptations (direct basis translation).
    pub reference: Vec<Circuit>,
    /// Per-block reference costs on the target hardware.
    pub cost: Vec<BlockCost>,
}

/// Evaluates the cost of an already-native local circuit.
///
/// Returns `None` when the circuit contains gates `hw` does not support.
pub fn circuit_cost(circuit: &Circuit, hw: &HardwareModel) -> Option<BlockCost> {
    let sched = CircuitSchedule::asap(circuit, hw)?;
    let fid = hw.circuit_fidelity(circuit)?;
    Some(BlockCost {
        duration: sched.total_duration,
        log_fidelity: fid.ln(),
    })
}

/// Runs the preprocessing pipeline: partition into blocks, translate each
/// block to the target basis (the *reference adaptation*), and price it.
///
/// # Errors
///
/// Returns [`AdaptError::UnsupportedGate`] when a block's reference
/// translation still contains gates unsupported by `hw` (i.e. the
/// equivalence library and the hardware model disagree).
pub fn preprocess(circuit: &Circuit, hw: &HardwareModel) -> Result<Preprocessed, AdaptError> {
    let partition = partition_blocks(circuit);
    let mut block_circuits = Vec::with_capacity(partition.blocks.len());
    let mut reference = Vec::with_capacity(partition.blocks.len());
    let mut cost = Vec::with_capacity(partition.blocks.len());
    for block in &partition.blocks {
        let local = partition.block_circuit(circuit, block.id);
        let translated = translate_to_cz(&local);
        let c = circuit_cost(&translated, hw).ok_or_else(|| {
            AdaptError::UnsupportedGate(format!(
                "block {} translation contains non-native gates",
                block.id
            ))
        })?;
        block_circuits.push(local);
        reference.push(translated);
        cost.push(c);
    }
    Ok(Preprocessed {
        source: circuit.clone(),
        partition,
        block_circuits,
        reference,
        cost,
    })
}

impl Preprocessed {
    /// The full reference adaptation: every block translated, concatenated
    /// in topological order.
    pub fn reference_circuit(&self) -> Circuit {
        let mut out = Circuit::new(self.source.num_qubits());
        for id in self.partition.topological_order() {
            let block = &self.partition.blocks[id];
            for instr in self.reference[id].iter() {
                let mapped: Vec<usize> = instr.qubits.iter().map(|&q| block.qubits[q]).collect();
                out.push(instr.gate, &mapped);
            }
        }
        out
    }

    /// Total reference log-fidelity (sum over blocks).
    pub fn reference_log_fidelity(&self) -> f64 {
        self.cost.iter().map(|c| c.log_fidelity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qca_circuit::Gate;
    use qca_hw::{spin_qubit_model, GateTimes};
    use qca_num::phase::approx_eq_up_to_phase;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.5), &[1]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Cx, &[2, 1]);
        c
    }

    #[test]
    fn preprocess_produces_native_blocks() {
        let hw = spin_qubit_model(GateTimes::D0);
        let p = preprocess(&sample(), &hw).unwrap();
        assert_eq!(p.partition.blocks.len(), p.reference.len());
        for r in &p.reference {
            assert!(hw.supports_circuit(r));
        }
    }

    #[test]
    fn reference_circuit_preserves_unitary() {
        let hw = spin_qubit_model(GateTimes::D0);
        let c = sample();
        let p = preprocess(&c, &hw).unwrap();
        let r = p.reference_circuit();
        assert!(approx_eq_up_to_phase(&r.unitary(), &c.unitary(), 1e-7));
        assert!(hw.supports_circuit(&r));
    }

    #[test]
    fn costs_are_sensible() {
        let hw = spin_qubit_model(GateTimes::D0);
        let p = preprocess(&sample(), &hw).unwrap();
        for c in &p.cost {
            assert!(c.duration > 0.0);
            assert!(c.log_fidelity <= 0.0);
        }
        assert!(p.reference_log_fidelity() < 0.0);
    }

    #[test]
    fn single_cx_block_cost() {
        // CX -> H CZ H, consolidated to U3 · CZ · U3 on the target qubit:
        // critical path 30 + 152 + 30 = 212 ns, fidelity 0.999^3.
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        let p = preprocess(&c, &hw).unwrap();
        assert_eq!(p.cost.len(), 1);
        assert!((p.cost[0].duration - 212.0).abs() < 1e-9);
        assert!((p.cost[0].log_fidelity - (0.999f64.powi(3)).ln()).abs() < 1e-12);
    }

    #[test]
    fn pure_single_qubit_circuit() {
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::T, &[1]);
        let p = preprocess(&c, &hw).unwrap();
        assert_eq!(p.partition.blocks.len(), 2);
        let r = p.reference_circuit();
        assert!(approx_eq_up_to_phase(&r.unitary(), &c.unitary(), 1e-8));
    }
}
