//! Error types for circuit adaptation.

use std::error::Error;
use std::fmt;

/// Error produced by the adaptation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// The input circuit contains a gate the pipeline cannot translate.
    UnsupportedGate(String),
    /// The SMT model was unsatisfiable (indicates an internal modelling bug,
    /// since the reference adaptation is always a feasible assignment).
    Infeasible,
    /// The input circuit exceeds a structural limit (e.g. qubit count for
    /// unitary-based rule evaluation).
    TooLarge(String),
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::UnsupportedGate(g) => write!(f, "unsupported gate {g}"),
            AdaptError::Infeasible => write!(f, "adaptation model unsatisfiable"),
            AdaptError::TooLarge(m) => write!(f, "circuit too large: {m}"),
        }
    }
}

impl Error for AdaptError {}
