//! Error types for circuit adaptation.

use qca_lint::Diagnostic;
use std::error::Error;
use std::fmt;

/// Error produced by the adaptation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// The input circuit contains a gate the pipeline cannot translate.
    UnsupportedGate(String),
    /// The SMT model was unsatisfiable (indicates an internal modelling bug,
    /// since the reference adaptation is always a feasible assignment).
    Infeasible,
    /// The input circuit exceeds a structural limit (e.g. qubit count for
    /// unitary-based rule evaluation).
    TooLarge(String),
    /// The adaptation was interrupted — a cancellation flag tripped or the
    /// total conflict budget ran out — before any feasible incumbent was
    /// found. (Interruption *after* an incumbent exists degrades to a
    /// suboptimal result instead of this error.)
    Cancelled,
    /// A builder was asked to produce options/context that fail validation
    /// (e.g. a zero pattern-window length or a zero conflict budget).
    InvalidOptions(String),
    /// An internal invariant was violated while producing the result — e.g.
    /// a batch-engine worker panicked mid-job. The message describes the
    /// failure; the result (if any) came from a baseline path instead.
    Internal(String),
    /// Static preflight analysis rejected the input before any solving: the
    /// carried diagnostics contain at least one error-severity finding
    /// (e.g. a statically unadaptable block, `QCA0301`).
    Rejected(Vec<Diagnostic>),
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::UnsupportedGate(g) => write!(f, "unsupported gate {g}"),
            AdaptError::Infeasible => write!(f, "adaptation model unsatisfiable"),
            AdaptError::TooLarge(m) => write!(f, "circuit too large: {m}"),
            AdaptError::Cancelled => write!(f, "adaptation cancelled before a result was found"),
            AdaptError::InvalidOptions(m) => write!(f, "invalid adaptation options: {m}"),
            AdaptError::Internal(m) => write!(f, "internal adaptation failure: {m}"),
            AdaptError::Rejected(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == qca_lint::Severity::Error)
                    .count();
                write!(f, "rejected by preflight: {errors} error(s)")?;
                if let Some(first) = diags
                    .iter()
                    .find(|d| d.severity == qca_lint::Severity::Error)
                {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for AdaptError {}

// The batch engine moves `Result<_, AdaptError>` values across worker
// threads; guarantee the error stays thread-safe at compile time.
const _: () = {
    const fn assert_error_send_sync<T: Error + Send + Sync + 'static>() {}
    assert_error_send_sync::<AdaptError>()
};
