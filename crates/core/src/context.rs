//! The adaptation call context: options, limits, tracing, cancellation.
//!
//! [`AdaptContext`] bundles everything a caller threads through the solve
//! pipeline — what to optimize ([`AdaptOptions`]), how hard to try
//! ([`AdaptLimits`]), where to report progress ([`Tracer`]), and how to
//! interrupt (a shared cancellation flag) — into a single value that
//! [`adapt`](crate::adapt), `solve_model`, and the underlying SMT/SAT
//! layers all accept. Before this type existed, each concern travelled on
//! its own side channel (`AdaptOptions::limits`, `AdaptLimits::cancel`,
//! solver setter methods); see DESIGN.md for the migration sketch.

use crate::adapt::AdaptOptions;
use crate::error::AdaptError;
use crate::model::{AdaptLimits, Objective};
use crate::rules::RuleOptions;
use qca_smt::omt::{PortfolioProbe, Strategy};
use qca_trace::Tracer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Everything [`adapt`](crate::adapt) needs beyond the circuit and the
/// hardware model.
///
/// Construct one with [`AdaptContext::default`] (all defaults, tracing
/// off), [`AdaptContext::with_objective`], `From<AdaptOptions>` /
/// `From<Objective>`, or the [builder](AdaptContext::builder) when limits,
/// tracing, or cancellation are involved.
///
/// # Examples
///
/// ```
/// use qca_adapt::{AdaptContext, AdaptOptions, Objective};
///
/// // Objective-only: three equivalent spellings.
/// let a = AdaptContext::with_objective(Objective::IdleTime);
/// let b = AdaptContext::from(Objective::IdleTime);
/// let c = AdaptOptions::builder().objective(Objective::IdleTime).context();
/// assert_eq!(a.options.objective, b.options.objective);
/// assert_eq!(a.options.objective, c.options.objective);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdaptContext {
    /// What to solve: objective, rule set, search strategy, exactness.
    pub options: AdaptOptions,
    /// How much work the solve may spend (total-conflict cap).
    pub limits: AdaptLimits,
    /// Where span/counter/gauge events go; `Tracer::disabled()` (the
    /// default) makes every instrumentation site a single branch.
    pub tracer: Tracer,
    /// Cooperative cancellation flag, polled by the SAT solver at every
    /// decision and conflict. Tripping it degrades the search to the best
    /// incumbent, or [`AdaptError::Cancelled`] if none exists yet.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Warm-start hint: catalog ids of a known-good substitution selection
    /// (e.g. a previously cached optimum during recalibration). When
    /// present and still valid for the evaluated catalog it replaces the
    /// greedy warm start; stale hints fall back to greedy.
    pub warm_hint: Option<Vec<usize>>,
    /// Escalate budget-exhausted OMT probes to a racing solver portfolio
    /// (`qca-portfolio`) on spare workers; `None` (the default) keeps the
    /// single-configuration search.
    pub portfolio: Option<PortfolioProbe>,
}

impl AdaptContext {
    /// A context with the given options and defaults elsewhere.
    pub fn new(options: AdaptOptions) -> Self {
        AdaptContext {
            options,
            ..AdaptContext::default()
        }
    }

    /// A context with a specific objective and defaults elsewhere.
    pub fn with_objective(objective: Objective) -> Self {
        AdaptContext::new(AdaptOptions {
            objective,
            ..AdaptOptions::default()
        })
    }

    /// Starts a validating builder.
    pub fn builder() -> AdaptContextBuilder {
        AdaptContextBuilder::default()
    }

    /// `true` when the cancellation flag (if any) is currently set.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// The SAT-level run controls this context implies: the total-conflict
    /// cap, the cancellation flag, and the tracer, ready to install on a
    /// solver via `set_control`.
    pub fn solve_control(&self) -> qca_sat::SolveControl {
        qca_sat::SolveControl {
            conflict_cap: self.limits.total_conflicts,
            stop: self.cancel.clone(),
            tracer: self.tracer.clone(),
        }
    }
}

impl From<AdaptOptions> for AdaptContext {
    fn from(options: AdaptOptions) -> Self {
        AdaptContext::new(options)
    }
}

impl From<Objective> for AdaptContext {
    fn from(objective: Objective) -> Self {
        AdaptContext::with_objective(objective)
    }
}

/// Validating builder for [`AdaptContext`].
///
/// Usually reached by chaining from [`AdaptOptions::builder`]:
///
/// ```
/// use qca_adapt::{AdaptOptions, Objective};
///
/// let ctx = AdaptOptions::builder()
///     .objective(Objective::Combined)
///     .exact()
///     .limits(Some(500_000))
///     .build();
/// assert!(ctx.options.exact);
/// assert_eq!(ctx.limits.total_conflicts, Some(500_000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdaptContextBuilder {
    pub(crate) options: crate::adapt::AdaptOptionsBuilder,
    pub(crate) limits: AdaptLimits,
    pub(crate) tracer: Tracer,
    pub(crate) cancel: Option<Arc<AtomicBool>>,
    pub(crate) warm_hint: Option<Vec<usize>>,
    pub(crate) portfolio: Option<PortfolioProbe>,
}

impl AdaptContextBuilder {
    /// Sets the optimization objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.options = self.options.objective(objective);
        self
    }

    /// Sets the substitution-rule options.
    pub fn rules(mut self, rules: RuleOptions) -> Self {
        self.options = self.options.rules(rules);
        self
    }

    /// Sets the OMT search strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options = self.options.strategy(strategy);
        self
    }

    /// Demands a proven-optimal search (no probe budgets or gap).
    pub fn exact(mut self) -> Self {
        self.options = self.options.exact();
        self
    }

    /// Caps the total SAT conflicts across the whole OMT search; `None`
    /// for unlimited.
    pub fn limits(mut self, total_conflicts: Option<u64>) -> Self {
        self.limits.total_conflicts = total_conflicts;
        self
    }

    /// Installs a tracer for span/counter/gauge events.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs a cooperative cancellation flag.
    pub fn cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Installs a warm-start hint: catalog ids of a known-good substitution
    /// selection to seed the search from instead of the greedy warm start.
    pub fn warm_hint(mut self, hint: Vec<usize>) -> Self {
        self.warm_hint = Some(hint);
        self
    }

    /// Enables portfolio escalation: budget-exhausted OMT probes race a
    /// small set of diverse solver configurations instead of giving up.
    pub fn portfolio(mut self, probe: PortfolioProbe) -> Self {
        self.portfolio = Some(probe);
        self
    }

    /// Validates and builds, returning [`AdaptError::InvalidOptions`] on a
    /// nonsensical configuration (zero pattern window, zero conflict
    /// budget).
    pub fn try_build(self) -> Result<AdaptContext, AdaptError> {
        if self.limits.total_conflicts == Some(0) {
            return Err(AdaptError::InvalidOptions(
                "total_conflicts = Some(0) can never make progress; use None for unlimited"
                    .to_string(),
            ));
        }
        if let Some(probe) = self.portfolio {
            if probe.members < 2 {
                return Err(AdaptError::InvalidOptions(
                    "portfolio with fewer than 2 members is not a race; omit it instead"
                        .to_string(),
                ));
            }
        }
        Ok(AdaptContext {
            options: self.options.try_build()?,
            limits: self.limits,
            tracer: self.tracer,
            cancel: self.cancel,
            warm_hint: self.warm_hint,
            portfolio: self.portfolio,
        })
    }

    /// Validates and builds, panicking on an invalid configuration.
    ///
    /// # Panics
    ///
    /// When [`try_build`](Self::try_build) would return an error.
    pub fn build(self) -> AdaptContext {
        match self.try_build() {
            Ok(ctx) => ctx,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_matches_default_options() {
        let ctx = AdaptContext::default();
        assert_eq!(ctx.options.objective, Objective::Fidelity);
        assert!(!ctx.options.exact);
        assert!(ctx.limits.total_conflicts.is_none());
        assert!(!ctx.tracer.enabled());
        assert!(ctx.cancel.is_none());
        assert!(!ctx.cancelled());
    }

    #[test]
    fn builder_round_trips_every_field() {
        let flag = Arc::new(AtomicBool::new(false));
        let (tracer, _sink) = Tracer::to_memory();
        let ctx = AdaptContext::builder()
            .objective(Objective::Combined)
            .strategy(Strategy::LinearSearch)
            .exact()
            .limits(Some(1234))
            .tracer(tracer)
            .cancel(flag.clone())
            .build();
        assert_eq!(ctx.options.objective, Objective::Combined);
        assert_eq!(ctx.options.strategy, Strategy::LinearSearch);
        assert!(ctx.options.exact);
        assert_eq!(ctx.limits.total_conflicts, Some(1234));
        assert!(ctx.tracer.enabled());
        assert!(!ctx.cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(ctx.cancelled());
    }

    #[test]
    fn warm_hint_and_portfolio_round_trip() {
        let ctx = AdaptContext::builder()
            .warm_hint(vec![0, 2])
            .portfolio(PortfolioProbe::default())
            .build();
        assert_eq!(ctx.warm_hint.as_deref(), Some(&[0, 2][..]));
        assert_eq!(ctx.portfolio, Some(PortfolioProbe::default()));
        assert!(AdaptContext::default().warm_hint.is_none());
        assert!(AdaptContext::default().portfolio.is_none());
    }

    #[test]
    fn single_member_portfolio_rejected() {
        let err = AdaptContext::builder()
            .portfolio(PortfolioProbe {
                members: 1,
                ..PortfolioProbe::default()
            })
            .try_build();
        assert!(matches!(err, Err(AdaptError::InvalidOptions(_))));
    }

    #[test]
    fn zero_conflict_budget_rejected() {
        let err = AdaptContext::builder().limits(Some(0)).try_build();
        assert!(matches!(err, Err(AdaptError::InvalidOptions(_))));
    }

    #[test]
    fn solve_control_mirrors_context() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = AdaptContext::builder()
            .limits(Some(77))
            .cancel(flag.clone())
            .build();
        let control = ctx.solve_control();
        assert_eq!(control.conflict_cap, Some(77));
        assert!(Arc::ptr_eq(control.stop.as_ref().unwrap(), &flag));
        assert!(!control.tracer.enabled());
    }

    #[test]
    fn conversions_set_objective() {
        let from_obj = AdaptContext::from(Objective::IdleTime);
        assert_eq!(from_obj.options.objective, Objective::IdleTime);
        let opts = AdaptOptions {
            objective: Objective::Combined,
            ..AdaptOptions::default()
        };
        let from_opts = AdaptContext::from(opts);
        assert_eq!(from_opts.options.objective, Objective::Combined);
    }
}
