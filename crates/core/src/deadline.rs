//! Wall-clock deadlines mapped onto cooperative cancellation.
//!
//! The solve pipeline has no internal notion of wall-clock time: the SAT
//! solver polls a shared [`AtomicBool`] at every decision and conflict
//! (see [`AdaptContext::cancel`](crate::AdaptContext)), so enforcing a
//! deadline means *someone* has to trip that flag when the clock runs out.
//! [`Watchdog`] is that someone — one background thread shared by any
//! number of concurrent solves, each armed with its own flag. The batch
//! engine uses it for `job_timeout`, and `qca-serve` uses it for
//! per-request `?deadline_ms=` budgets.
//!
//! Deadlines enforced this way are inherently *nondeterministic* (they
//! depend on machine speed). For a deterministic degrade that roughly
//! tracks wall time, [`AdaptLimits::for_deadline`](crate::AdaptLimits)
//! converts a deadline into a total-conflict budget at an assumed conflict
//! rate; callers that want both behaviors arm a watchdog flag *and* set
//! the derived budget — whichever trips first degrades the solve.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default polling resolution of the watchdog thread. Deadlines fire at
/// most this long after they expire.
pub const DEFAULT_RESOLUTION: Duration = Duration::from_millis(2);

struct Shared {
    entries: Mutex<Vec<(Instant, Arc<AtomicBool>)>>,
    shutdown: AtomicBool,
    /// Wakes the poll thread early on shutdown (so `Drop` never waits a
    /// full resolution interval) or when a new deadline is registered.
    wake: Condvar,
}

/// A background thread that trips cancellation flags at wall-clock
/// deadlines.
///
/// Dropping the watchdog stops the thread; flags armed but not yet expired
/// are never tripped after that, so keep the watchdog alive at least as
/// long as the solves it guards.
///
/// # Examples
///
/// ```
/// use qca_adapt::deadline::Watchdog;
/// use std::sync::atomic::Ordering;
/// use std::time::{Duration, Instant};
///
/// let wd = Watchdog::new();
/// let flag = wd.arm(Instant::now() + Duration::from_millis(5));
/// assert!(!flag.load(Ordering::Relaxed));
/// std::thread::sleep(Duration::from_millis(50));
/// assert!(flag.load(Ordering::Relaxed));
/// ```
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field(
                "pending",
                &self.entries.lock().map(|e| e.len()).unwrap_or(0),
            )
            .finish()
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Watchdog {
    /// A watchdog polling at [`DEFAULT_RESOLUTION`].
    pub fn new() -> Watchdog {
        Watchdog::with_resolution(DEFAULT_RESOLUTION)
    }

    /// A watchdog polling every `resolution`. A coarser resolution costs
    /// less CPU but lets deadlines overshoot by up to that much.
    pub fn with_resolution(resolution: Duration) -> Watchdog {
        let resolution = resolution.max(Duration::from_micros(100));
        let shared = Arc::new(Shared {
            entries: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            wake: Condvar::new(),
        });
        let poll = shared.clone();
        let thread = std::thread::Builder::new()
            .name("qca-watchdog".to_string())
            .spawn(move || {
                let mut entries = poll.entries.lock().unwrap_or_else(|e| e.into_inner());
                while !poll.shutdown.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    entries.retain(|(deadline, flag)| {
                        if now >= *deadline {
                            flag.store(true, Ordering::Relaxed);
                            false
                        } else {
                            true
                        }
                    });
                    let (guard, _) = poll
                        .wake
                        .wait_timeout(entries, resolution)
                        .unwrap_or_else(|e| e.into_inner());
                    entries = guard;
                }
            })
            .expect("spawning the watchdog thread");
        Watchdog {
            shared,
            thread: Some(thread),
        }
    }

    /// Arms a fresh cancellation flag that trips at `deadline`. The flag is
    /// ready to install on an [`AdaptContext`](crate::AdaptContext) or an
    /// engine job.
    pub fn arm(&self, deadline: Instant) -> Arc<AtomicBool> {
        let flag = Arc::new(AtomicBool::new(false));
        self.register(deadline, flag.clone());
        flag
    }

    /// Registers a caller-owned flag to be tripped at `deadline`.
    pub fn register(&self, deadline: Instant, flag: Arc<AtomicBool>) {
        self.shared
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((deadline, flag));
        self.shared.wake.notify_one();
    }

    /// Number of armed deadlines that have not fired yet.
    pub fn pending(&self) -> usize {
        self.shared
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_deadlines_trip_their_flags() {
        let wd = Watchdog::with_resolution(Duration::from_millis(1));
        let now = Instant::now();
        let soon = wd.arm(now + Duration::from_millis(5));
        let later = wd.arm(now + Duration::from_secs(3600));
        // Generous bound: CI machines stall, but 2 s ≫ a 5 ms deadline.
        let limit = now + Duration::from_secs(2);
        while !soon.load(Ordering::Relaxed) && Instant::now() < limit {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(soon.load(Ordering::Relaxed), "short deadline never fired");
        assert!(!later.load(Ordering::Relaxed), "distant deadline fired");
        assert_eq!(wd.pending(), 1);
    }

    #[test]
    fn already_expired_deadline_fires_immediately() {
        let wd = Watchdog::with_resolution(Duration::from_millis(1));
        let flag = wd.arm(Instant::now() - Duration::from_millis(1));
        let limit = Instant::now() + Duration::from_secs(2);
        while !flag.load(Ordering::Relaxed) && Instant::now() < limit {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn drop_joins_the_poll_thread() {
        let wd = Watchdog::new();
        let _flag = wd.arm(Instant::now() + Duration::from_secs(3600));
        drop(wd); // must return promptly (condvar wake, not a full sleep)
    }
}
