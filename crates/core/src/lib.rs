//! # qca-adapt
//!
//! SAT-based quantum circuit adaptation — the core contribution of
//! *"SAT-Based Quantum Circuit Adaptation"* (Brandhofer, Kim, Niu, Bronn;
//! DATE 2023), reproduced end to end:
//!
//! 1. [`preprocess`](preprocess::preprocess) — partition the circuit into
//!    two-qubit blocks, derive the block dependency graph, compute the
//!    reference (direct-basis-translation) adaptation and its costs,
//! 2. [`evaluate_substitutions`](rules::evaluate_substitutions) — evaluate
//!    every substitution rule (KAK with CZ / diabatic CZ, conditional
//!    rotation, SWAP_d / SWAP_c realizations) on the circuit,
//! 3. `solve_model` ([`model`]) — build the SMT model (Eqs. 1–10)
//!    and maximize the chosen objective with the OMT engine,
//! 4. [`extract_circuit`] — apply the selected
//!    substitutions to obtain the adapted circuit.
//!
//! The one-call entry point is [`adapt`], which takes an [`AdaptContext`]
//! bundling the options with run-time concerns (conflict budgets,
//! cancellation, span tracing — see the [`context`] module).
//!
//! # Examples
//!
//! ```
//! use qca_adapt::{adapt, AdaptContext, Objective};
//! use qca_circuit::{Circuit, Gate};
//! use qca_hw::{spin_qubit_model, GateTimes};
//!
//! // Three alternating CNOTs form a SWAP: the solver swaps in a native
//! // swap realization instead of translating each CNOT to CZ.
//! let mut c = Circuit::new(2);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::Cx, &[1, 0]);
//! c.push(Gate::Cx, &[0, 1]);
//! let hw = spin_qubit_model(GateTimes::D0);
//! let result = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity))?;
//! let f_new = hw.circuit_fidelity(&result.circuit).unwrap();
//! let f_ref = hw.circuit_fidelity(&result.reference).unwrap();
//! assert!(f_new >= f_ref);
//! # Ok::<(), qca_adapt::AdaptError>(())
//! ```
//!
//! To watch where the time goes, install a tracer:
//!
//! ```
//! use qca_adapt::{adapt, AdaptOptions, Objective};
//! use qca_circuit::{Circuit, Gate};
//! use qca_hw::{spin_qubit_model, GateTimes};
//! use qca_trace::{report::Report, Tracer};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::Cx, &[1, 0]);
//! c.push(Gate::Cx, &[0, 1]);
//! let hw = spin_qubit_model(GateTimes::D0);
//! let (tracer, sink) = Tracer::to_memory();
//! let ctx = AdaptOptions::builder()
//!     .objective(Objective::Combined)
//!     .tracer(tracer)
//!     .build();
//! adapt(&c, &hw, &ctx)?;
//! let report = Report::from_events(&sink.take());
//! assert!(report.phase_total_ns("omt.search").is_some());
//! # Ok::<(), qca_adapt::AdaptError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adapt;
pub mod context;
pub mod deadline;
mod error;
pub mod model;
pub mod preflight;
pub mod preprocess;
pub mod rules;

#[allow(deprecated)]
pub use adapt::adapt_with_options;
pub use adapt::{
    adapt, extract_circuit, recalibrate_adaptation, AdaptOptions, AdaptOptionsBuilder, Adaptation,
    Recalibration,
};
pub use context::{AdaptContext, AdaptContextBuilder};
pub use error::AdaptError;
pub use model::{
    evaluate_selection, recheck_optimum, AdaptLimits, Objective, RecheckOutcome, SmtAdaptation,
    VerificationData, LOG_SCALE,
};
pub use preflight::{preflight, preflight_with_coupling, Diagnostic, RuleToggles};
pub use qca_smt::omt::PortfolioProbe;
pub use rules::{append_routing_substitutions, Route, RuleOptions, Substitution, SubstitutionKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qca_circuit::{Circuit, Gate};
    use qca_hw::{spin_qubit_model, GateTimes};
    use qca_num::phase::approx_eq_up_to_phase;

    fn arb_ibm_circuit(nq: usize) -> impl Strategy<Value = Circuit> {
        proptest::collection::vec((0usize..4, 0..nq, 0..nq, -3.0..3.0f64), 1..10).prop_map(
            move |ops| {
                let mut c = Circuit::new(nq);
                for (kind, a, b, angle) in ops {
                    match kind {
                        0 if a != b => c.push(Gate::Cx, &[a, b]),
                        1 => c.push(Gate::Sx, &[a]),
                        2 => c.push(Gate::Rz(angle), &[a]),
                        _ => c.push(Gate::X, &[b]),
                    }
                }
                c
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// End-to-end adaptation preserves the circuit unitary and produces
        /// hardware-native output, for every objective.
        #[test]
        fn adaptation_sound_on_random_ibm_circuits(c in arb_ibm_circuit(3)) {
            let hw = spin_qubit_model(GateTimes::D0);
            for obj in [Objective::Fidelity, Objective::Combined] {
                let r = adapt(&c, &hw, &AdaptContext::with_objective(obj)).unwrap();
                prop_assert!(hw.supports_circuit(&r.circuit));
                prop_assert!(
                    approx_eq_up_to_phase(&r.circuit.unitary(), &c.unitary(), 1e-6),
                    "{obj} broke equivalence"
                );
            }
        }

        /// The SAT F objective never yields worse fidelity than the
        /// reference adaptation.
        #[test]
        fn fidelity_never_below_reference(c in arb_ibm_circuit(3)) {
            let hw = spin_qubit_model(GateTimes::D0);
            let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
            let fa = hw.circuit_fidelity(&r.circuit).unwrap();
            let fr = hw.circuit_fidelity(&r.reference).unwrap();
            prop_assert!(fa >= fr - 1e-9, "adapted {fa} < reference {fr}");
        }

        /// An explicit all-to-all coupling map is bit-identical to the
        /// default (no map): same encoding size, same selection, same
        /// objective value, same output circuit.
        #[test]
        fn all_to_all_coupling_is_bit_identical(c in arb_ibm_circuit(3)) {
            use qca_hw::CouplingMap;
            let hw = spin_qubit_model(GateTimes::D0);
            for obj in [Objective::Fidelity, Objective::Combined] {
                let plain = adapt(&c, &hw, &AdaptContext::with_objective(obj)).unwrap();
                let ctx = AdaptOptions::builder()
                    .objective(obj)
                    .coupling(CouplingMap::all_to_all(3))
                    .context();
                let full = adapt(&c, &hw, &ctx).unwrap();
                prop_assert_eq!(plain.solver.chosen, full.solver.chosen);
                prop_assert_eq!(plain.solver.objective_value, full.solver.objective_value);
                prop_assert_eq!(plain.solver.sat_vars, full.solver.sat_vars);
                prop_assert_eq!(plain.catalog_size, full.catalog_size);
                prop_assert_eq!(plain.circuit, full.circuit);
            }
        }

        /// Topology-constrained adaptation on a star stays sound: every
        /// two-qubit gate in the output lands on a coupled pair and the
        /// unitary is preserved.
        #[test]
        fn star_routed_adaptation_is_sound(c in arb_ibm_circuit(3)) {
            use qca_hw::CouplingMap;
            let hw = spin_qubit_model(GateTimes::D0);
            let star = CouplingMap::star(3);
            let ctx = AdaptOptions::builder()
                .objective(Objective::Fidelity)
                .coupling(star.clone())
                .context();
            let r = adapt(&c, &hw, &ctx).unwrap();
            prop_assert!(hw.supports_circuit(&r.circuit));
            for i in r.circuit.iter().filter(|i| i.qubits.len() == 2) {
                prop_assert!(star.is_coupled(i.qubits[0], i.qubits[1]),
                    "2q gate on uncoupled pair {:?}", i.qubits);
            }
            prop_assert!(
                approx_eq_up_to_phase(&r.circuit.unitary(), &c.unitary(), 1e-6),
                "routing broke equivalence"
            );
        }
    }
}
