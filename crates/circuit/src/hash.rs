//! Canonical structural circuit hashing.
//!
//! [`structural_hash`] fingerprints a circuit by its *dependency structure*
//! rather than its textual gate order: instructions are bucketed into ASAP
//! dependency layers (the same frontier construction as
//! [`Circuit::depth`]), sorted canonically within each layer, and folded
//! through a 64-bit FNV-1a hash. Two circuits that differ only by
//!
//! * reordering of same-layer instructions on disjoint qubits (which
//!   commute by construction), or
//! * operand order of symmetric two-qubit gates (CZ, CPhase, the swap
//!   family, iSWAP),
//!
//! hash identically, while any change to a gate, an angle, an operand, or
//! the dependency structure changes the hash. Rotation angles participate
//! via their IEEE-754 bit patterns (`-0.0` normalized to `0.0`), so the
//! hash is exact — no epsilon comparisons and no false merges from rounding.
//!
//! The hash is the cache identity used by the batch-adaptation engine:
//! adapting the same structural circuit against the same hardware
//! fingerprint and objective is a cache hit.
//!
//! # Examples
//!
//! ```
//! use qca_circuit::{hash::structural_hash, Circuit, Gate};
//!
//! let mut a = Circuit::new(3);
//! a.push(Gate::H, &[0]);
//! a.push(Gate::H, &[2]);
//! a.push(Gate::Cz, &[0, 1]);
//!
//! // Same structure: commuting first-layer gates reordered, CZ operands
//! // flipped (CZ is symmetric).
//! let mut b = Circuit::new(3);
//! b.push(Gate::H, &[2]);
//! b.push(Gate::H, &[0]);
//! b.push(Gate::Cz, &[1, 0]);
//!
//! assert_eq!(structural_hash(&a), structural_hash(&b));
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Incremental 64-bit FNV-1a hasher.
///
/// Shared by circuit hashing and the hardware-model fingerprint so all
/// engine cache-key components use one stable, dependency-free function.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher in the standard FNV-1a initial state.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian bytes) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` into the hash (widened to `u64` for portability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` into the hash by bit pattern, normalizing `-0.0` to
    /// `0.0` so the two zero representations hash identically.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64((v + 0.0).to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One instruction in canonical form: dependency layer, operands (symmetric
/// gates normalized to ascending order), and gate identity.
#[derive(PartialEq, PartialOrd)]
struct CanonInstr<'a> {
    layer: usize,
    qubits: Vec<usize>,
    name: &'a str,
    param_bits: Vec<u64>,
}

fn canonical_operands(gate: &Gate, qubits: &[usize]) -> Vec<usize> {
    let mut qs = qubits.to_vec();
    if gate.is_symmetric() {
        qs.sort_unstable();
    }
    qs
}

/// Canonical structural hash of a circuit (see the module docs for the
/// equivalence it induces).
pub fn structural_hash(circuit: &Circuit) -> u64 {
    // ASAP layer per instruction — identical to the Circuit::depth frontier,
    // and insensitive to the relative order of disjoint-support
    // instructions.
    let mut frontier = vec![0usize; circuit.num_qubits()];
    let mut canon: Vec<CanonInstr<'_>> = circuit
        .iter()
        .map(|instr| {
            let layer = instr.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for &q in &instr.qubits {
                frontier[q] = layer;
            }
            CanonInstr {
                layer,
                qubits: canonical_operands(&instr.gate, &instr.qubits),
                name: instr.gate.name(),
                param_bits: instr
                    .gate
                    .params()
                    .into_iter()
                    .map(|p| (p + 0.0).to_bits())
                    .collect(),
            }
        })
        .collect();
    // Within a layer all instructions touch disjoint qubits, so ordering by
    // (layer, operands) is a strict total order; gate identity is carried
    // in the comparison only for stability of the derive.
    canon.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in canonical keys"));

    let mut h = Fnv64::new();
    h.write_usize(circuit.num_qubits());
    for ci in &canon {
        h.write_usize(ci.layer);
        h.write_usize(ci.qubits.len());
        for &q in &ci.qubits {
            h.write_usize(q);
        }
        h.write_bytes(ci.name.as_bytes());
        // Length-prefix the name so e.g. ("s", "dg") cannot collide with
        // ("sdg", "").
        h.write_usize(ci.name.len());
        for &p in &ci.param_bits {
            h.write_u64(p);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_circuits_hash_equal() {
        let mut a = Circuit::new(2);
        a.push(Gate::H, &[0]);
        a.push(Gate::Cx, &[0, 1]);
        assert_eq!(structural_hash(&a), structural_hash(&a.clone()));
    }

    #[test]
    fn commuting_reorder_hashes_equal() {
        let mut a = Circuit::new(4);
        a.push(Gate::H, &[0]);
        a.push(Gate::Rz(0.5), &[3]);
        a.push(Gate::Cx, &[1, 2]);
        let mut b = Circuit::new(4);
        b.push(Gate::Cx, &[1, 2]);
        b.push(Gate::H, &[0]);
        b.push(Gate::Rz(0.5), &[3]);
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn dependent_reorder_hashes_differently() {
        let mut a = Circuit::new(2);
        a.push(Gate::H, &[0]);
        a.push(Gate::Cx, &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(Gate::Cx, &[0, 1]);
        b.push(Gate::H, &[0]);
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn symmetric_gate_operand_order_is_canonical() {
        for gate in [Gate::Cz, Gate::CzDiabatic, Gate::Swap, Gate::CPhase(1.2)] {
            let mut a = Circuit::new(2);
            a.push(gate, &[0, 1]);
            let mut b = Circuit::new(2);
            b.push(gate, &[1, 0]);
            assert_eq!(structural_hash(&a), structural_hash(&b), "{gate}");
        }
    }

    #[test]
    fn asymmetric_gate_operand_order_matters() {
        for gate in [Gate::Cx, Gate::CRot(1.0)] {
            let mut a = Circuit::new(2);
            a.push(gate, &[0, 1]);
            let mut b = Circuit::new(2);
            b.push(gate, &[1, 0]);
            assert_ne!(structural_hash(&a), structural_hash(&b), "{gate}");
        }
    }

    #[test]
    fn angle_changes_hash() {
        let mut a = Circuit::new(1);
        a.push(Gate::Rz(0.5), &[0]);
        let mut b = Circuit::new(1);
        b.push(Gate::Rz(0.5000001), &[0]);
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn negative_zero_angle_normalized() {
        let mut a = Circuit::new(1);
        a.push(Gate::Rz(0.0), &[0]);
        let mut b = Circuit::new(1);
        b.push(Gate::Rz(-0.0), &[0]);
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn qubit_count_changes_hash() {
        let mut a = Circuit::new(2);
        a.push(Gate::H, &[0]);
        let mut b = Circuit::new(3);
        b.push(Gate::H, &[0]);
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn gate_variant_changes_hash() {
        let mut a = Circuit::new(2);
        a.push(Gate::Cz, &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(Gate::CzDiabatic, &[0, 1]);
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn empty_circuits_distinguished_by_width() {
        assert_ne!(
            structural_hash(&Circuit::new(1)),
            structural_hash(&Circuit::new(2))
        );
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the hash function itself: a silent change to FNV constants or
        // byte order would invalidate persisted cache keys.
        let mut h = Fnv64::new();
        h.write_bytes(b"qca");
        assert_eq!(h.finish(), 0x70e1_3819_530b_5ae4);
    }
}
