//! The circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Instr`]s on a fixed number of
//! qubits. Structural queries (depth, gate counts) and the full circuit
//! unitary (for small qubit counts) live here; scheduling and cost analysis
//! live in `qca-hw`/`qca-adapt`.

use crate::gate::Gate;
use qca_num::CMat;
use std::fmt;

/// One gate application: a gate and its qubit operands (control first for
/// controlled gates).
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// The gate.
    pub gate: Gate,
    /// Operand qubit indices; length matches `gate.num_qubits()`.
    pub qubits: Vec<usize>,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, "{} {}", self.gate, qs.join(","))
    }
}

/// A quantum circuit: a gate sequence over `num_qubits` qubits.
///
/// # Examples
///
/// ```
/// use qca_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.depth(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    instrs: Vec<Instr>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instrs: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gate applications.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends a gate application.
    ///
    /// # Panics
    ///
    /// Panics if the operand count mismatches the gate arity, an operand is
    /// out of range, or a two-qubit gate addresses the same qubit twice.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "gate {gate} expects {} operand(s)",
            gate.num_qubits()
        );
        for &q in qubits {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate on identical qubits");
        }
        self.instrs.push(Instr {
            gate,
            qubits: qubits.to_vec(),
        });
    }

    /// Appends an existing instruction.
    ///
    /// # Panics
    ///
    /// Same validation as [`Circuit::push`].
    pub fn push_instr(&mut self, instr: Instr) {
        let Instr { gate, qubits } = instr;
        self.push(gate, &qubits);
    }

    /// Appends all instructions of `other` (qubit indices taken verbatim).
    ///
    /// # Panics
    ///
    /// Panics if `other` addresses qubits outside this circuit.
    pub fn extend_from(&mut self, other: &Circuit) {
        for instr in &other.instrs {
            self.push(instr.gate, &instr.qubits);
        }
    }

    /// The instruction list.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Iterator over instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// Total gate count per arity: `(one_qubit, two_qubit)`.
    pub fn gate_counts(&self) -> (usize, usize) {
        let two = self.two_qubit_gate_count();
        (self.instrs.len() - two, two)
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.gate.is_two_qubit()).count()
    }

    /// Circuit depth: length of the longest qubit-wise dependency chain,
    /// counting every gate as one layer.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        for instr in &self.instrs {
            let layer = instr.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for &q in &instr.qubits {
                frontier[q] = layer;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// The circuit's unitary matrix (dimension `2^n`), applying gates left to
    /// right (first instruction acts first).
    ///
    /// # Panics
    ///
    /// Panics for circuits with more than 12 qubits (matrix would exceed
    /// sensible memory bounds).
    pub fn unitary(&self) -> CMat {
        assert!(
            self.num_qubits <= 12,
            "unitary() limited to 12 qubits ({} requested)",
            self.num_qubits
        );
        let dim = 1usize << self.num_qubits;
        let mut u = CMat::identity(dim);
        for instr in &self.instrs {
            let g = instr
                .gate
                .matrix()
                .embed_qubits(&instr.qubits, self.num_qubits);
            u = &g * &u;
        }
        u
    }

    /// Returns the circuit with gate order reversed and every gate inverted.
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for instr in self.instrs.iter().rev() {
            out.push(instr.gate.dagger(), &instr.qubits);
        }
        out
    }

    /// Histogram of gate names to occurrence counts.
    pub fn gate_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for i in &self.instrs {
            *h.entry(i.gate.name()).or_insert(0) += 1;
        }
        h
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.num_qubits)?;
        for i in &self.instrs {
            writeln!(f, "  {i}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qca_num::phase::approx_eq_up_to_phase;
    use std::f64::consts::PI;

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        let u = c.unitary();
        // |00> -> (|00> + |11>)/sqrt(2)
        let s = 1.0 / 2.0_f64.sqrt();
        assert!((u[(0, 0)].re - s).abs() < 1e-12);
        assert!((u[(3, 0)].re - s).abs() < 1e-12);
        assert!(u[(1, 0)].norm() < 1e-12);
        assert!(u[(2, 0)].norm() < 1e-12);
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::H, &[2]);
        assert_eq!(c.depth(), 1);
        c.push(Gate::Cx, &[0, 1]);
        assert_eq!(c.depth(), 2);
        c.push(Gate::Cx, &[1, 2]);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn inverse_gives_identity() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(0.3), &[1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Ry(1.1), &[0]);
        let mut full = c.clone();
        full.extend_from(&c.inverse());
        assert!(approx_eq_up_to_phase(
            &full.unitary(),
            &CMat::identity(4),
            1e-10
        ));
    }

    #[test]
    fn swap_via_three_cnots() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        c.push(Gate::Cx, &[0, 1]);
        assert!(approx_eq_up_to_phase(
            &c.unitary(),
            &Gate::Swap.matrix(),
            1e-12
        ));
    }

    #[test]
    fn cz_symmetric_under_operand_swap() {
        let mut a = Circuit::new(2);
        a.push(Gate::Cz, &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(Gate::Cz, &[1, 0]);
        assert!(a.unitary().approx_eq(&b.unitary(), 1e-12));
    }

    #[test]
    fn cx_conjugated_by_h_is_cz() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[1]);
        assert!(approx_eq_up_to_phase(
            &c.unitary(),
            &Gate::Cz.matrix(),
            1e-12
        ));
    }

    #[test]
    fn gate_counts_and_histogram() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Cx, &[0, 1]);
        assert_eq!(c.gate_counts(), (2, 1));
        assert_eq!(c.gate_histogram()["h"], 2);
        assert_eq!(c.gate_histogram()["cx"], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_range() {
        let mut c = Circuit::new(1);
        c.push(Gate::H, &[1]);
    }

    #[test]
    #[should_panic(expected = "identical qubits")]
    fn push_validates_distinct_operands() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[1, 1]);
    }

    #[test]
    fn rz_phase_relationship() {
        // Rz(t) equals Phase(t) up to global phase.
        let mut a = Circuit::new(1);
        a.push(Gate::Rz(0.7), &[0]);
        let mut b = Circuit::new(1);
        b.push(Gate::Phase(0.7), &[0]);
        assert!(approx_eq_up_to_phase(&a.unitary(), &b.unitary(), 1e-12));
    }

    #[test]
    fn big_endian_embedding() {
        // X on qubit 0 of 2: flips the most significant bit.
        let mut c = Circuit::new(2);
        c.push(Gate::X, &[0]);
        let u = c.unitary();
        assert!(u[(2, 0)].approx_eq(qca_num::C64::ONE, 1e-12)); // |00> -> |10>
    }

    #[test]
    fn crot_pi_vs_cx_differ_by_s_on_control() {
        // CX = (S on control) . CROT(pi) up to global phase:
        // diag(1,1,i,i) * CROT(pi) has lower block i*(-i)X = X.
        let mut c = Circuit::new(2);
        c.push(Gate::CRot(PI), &[0, 1]);
        c.push(Gate::S, &[0]);
        assert!(approx_eq_up_to_phase(
            &c.unitary(),
            &Gate::Cx.matrix(),
            1e-12
        ));
    }
}
