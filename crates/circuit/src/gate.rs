//! The gate library.
//!
//! [`Gate`] covers the abstract gates used by IBM-basis circuits (CX, RZ, SX,
//! X, U3, ...) and the hardware-native realizations of the semiconducting
//! spin-qubit modality of the paper: CZ, diabatic CZ, conditional rotation
//! (CROT, modeled as a controlled X-rotation), and the two swap realizations
//! SWAP_d (diabatic) and SWAP_c (composite pulse). Realization variants share
//! a unitary with their abstract counterpart but are distinct gates so cost
//! models can price them differently.
//!
//! Qubit-ordering convention: the first operand is the most significant bit
//! of the basis index (big-endian), matching
//! [`CMat::embed_qubits`](qca_num::CMat::embed_qubits).

use qca_num::{CMat, C64};
use std::fmt;

/// A quantum gate, possibly parameterized by rotation angles (radians).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = sqrt(Z).
    S,
    /// Inverse phase gate.
    Sdg,
    /// T = sqrt(S).
    T,
    /// Inverse T.
    Tdg,
    /// Square root of X.
    Sx,
    /// Rotation about X by the angle.
    Rx(f64),
    /// Rotation about Y by the angle.
    Ry(f64),
    /// Rotation about Z by the angle.
    Rz(f64),
    /// Diagonal phase gate `diag(1, e^{i a})` (a.k.a. u1 / p).
    Phase(f64),
    /// General single-qubit gate `U3(theta, phi, lambda)`.
    U3(f64, f64, f64),
    /// Controlled-NOT (control first).
    Cx,
    /// Controlled-Z.
    Cz,
    /// Diabatic controlled-Z realization (same unitary as [`Gate::Cz`]).
    CzDiabatic,
    /// Controlled phase `diag(1,1,1,e^{i a})`.
    CPhase(f64),
    /// Conditional rotation: controlled X-rotation of the target
    /// (the spin-qubit CROT; `CRot(pi)` equals CNOT up to single-qubit
    /// phases).
    CRot(f64),
    /// Swap.
    Swap,
    /// Diabatic swap realization (same unitary as [`Gate::Swap`]).
    SwapDiabatic,
    /// Composite-pulse swap realization (same unitary as [`Gate::Swap`]).
    SwapComposite,
    /// iSWAP.
    ISwap,
    /// Inverse of iSWAP.
    ISwapDg,
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U3(..) => 1,
            _ => 2,
        }
    }

    /// `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.num_qubits() == 2
    }

    /// `true` when the gate's unitary is invariant under swapping its two
    /// operands (always `false` for single-qubit gates).
    pub fn is_symmetric(&self) -> bool {
        matches!(
            self,
            Gate::Cz
                | Gate::CzDiabatic
                | Gate::CPhase(_)
                | Gate::Swap
                | Gate::SwapDiabatic
                | Gate::SwapComposite
                | Gate::ISwap
                | Gate::ISwapDg
        )
    }

    /// The canonical lowercase mnemonic (OpenQASM-style).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U3(..) => "u3",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::CzDiabatic => "cz_db",
            Gate::CPhase(_) => "cp",
            Gate::CRot(_) => "crot",
            Gate::Swap => "swap",
            Gate::SwapDiabatic => "swap_d",
            Gate::SwapComposite => "swap_c",
            Gate::ISwap => "iswap",
            Gate::ISwapDg => "iswapdg",
        }
    }

    /// Rotation parameters, if any.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::Rx(a)
            | Gate::Ry(a)
            | Gate::Rz(a)
            | Gate::Phase(a)
            | Gate::CPhase(a)
            | Gate::CRot(a) => vec![a],
            Gate::U3(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }

    /// The gate's unitary matrix (2x2 or 4x4, big-endian operand order).
    pub fn matrix(&self) -> CMat {
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::I;
        match *self {
            Gate::I => CMat::identity(2),
            Gate::X => CMat::from_rows(2, 2, &[z, o, o, z]),
            Gate::Y => CMat::from_rows(2, 2, &[z, -i, i, z]),
            Gate::Z => CMat::from_rows(2, 2, &[o, z, z, -o]),
            Gate::H => {
                let s = C64::real(1.0 / 2.0_f64.sqrt());
                CMat::from_rows(2, 2, &[s, s, s, -s])
            }
            Gate::S => CMat::from_rows(2, 2, &[o, z, z, i]),
            Gate::Sdg => CMat::from_rows(2, 2, &[o, z, z, -i]),
            Gate::T => CMat::from_rows(2, 2, &[o, z, z, C64::cis(std::f64::consts::FRAC_PI_4)]),
            Gate::Tdg => CMat::from_rows(2, 2, &[o, z, z, C64::cis(-std::f64::consts::FRAC_PI_4)]),
            Gate::Sx => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                CMat::from_rows(2, 2, &[a, b, b, a])
            }
            Gate::Rx(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                CMat::from_rows(2, 2, &[c, s, s, c])
            }
            Gate::Ry(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                CMat::from_rows(2, 2, &[c, -s, s, c])
            }
            Gate::Rz(t) => CMat::from_rows(2, 2, &[C64::cis(-t / 2.0), z, z, C64::cis(t / 2.0)]),
            Gate::Phase(t) => CMat::from_rows(2, 2, &[o, z, z, C64::cis(t)]),
            Gate::U3(t, p, l) => {
                let ct = C64::real((t / 2.0).cos());
                let st = C64::real((t / 2.0).sin());
                CMat::from_rows(
                    2,
                    2,
                    &[
                        ct,
                        -(C64::cis(l) * st),
                        C64::cis(p) * st,
                        C64::cis(p + l) * ct,
                    ],
                )
            }
            Gate::Cx => CMat::from_real(
                4,
                4,
                &[
                    1.0, 0.0, 0.0, 0.0, //
                    0.0, 1.0, 0.0, 0.0, //
                    0.0, 0.0, 0.0, 1.0, //
                    0.0, 0.0, 1.0, 0.0,
                ],
            ),
            Gate::Cz | Gate::CzDiabatic => CMat::diag(&[o, o, o, -o]),
            Gate::CPhase(t) => CMat::diag(&[o, o, o, C64::cis(t)]),
            Gate::CRot(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                CMat::from_rows(
                    4,
                    4,
                    &[
                        o, z, z, z, //
                        z, o, z, z, //
                        z, z, c, s, //
                        z, z, s, c,
                    ],
                )
            }
            Gate::Swap | Gate::SwapDiabatic | Gate::SwapComposite => CMat::from_real(
                4,
                4,
                &[
                    1.0, 0.0, 0.0, 0.0, //
                    0.0, 0.0, 1.0, 0.0, //
                    0.0, 1.0, 0.0, 0.0, //
                    0.0, 0.0, 0.0, 1.0,
                ],
            ),
            Gate::ISwap => CMat::from_rows(
                4,
                4,
                &[
                    o, z, z, z, //
                    z, z, i, z, //
                    z, i, z, z, //
                    z, z, z, o,
                ],
            ),
            Gate::ISwapDg => CMat::from_rows(
                4,
                4,
                &[
                    o, z, z, z, //
                    z, z, -i, z, //
                    z, -i, z, z, //
                    z, z, z, o,
                ],
            ),
        }
    }

    /// The inverse gate.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Rx(-std::f64::consts::FRAC_PI_2), // up to phase
            Gate::Rx(a) => Gate::Rx(-a),
            Gate::Ry(a) => Gate::Ry(-a),
            Gate::Rz(a) => Gate::Rz(-a),
            Gate::Phase(a) => Gate::Phase(-a),
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            Gate::CPhase(a) => Gate::CPhase(-a),
            Gate::CRot(a) => Gate::CRot(-a),
            Gate::ISwap => Gate::ISwapDg,
            Gate::ISwapDg => Gate::ISwap,
            g => g, // self-inverse or realization variants
        }
    }

    /// `true` when this gate is a hardware realization variant that shares a
    /// unitary with an abstract gate (e.g. [`Gate::SwapDiabatic`]).
    pub fn is_realization_variant(&self) -> bool {
        matches!(
            self,
            Gate::CzDiabatic | Gate::SwapDiabatic | Gate::SwapComposite
        )
    }

    /// The abstract gate underlying a realization variant (identity for
    /// everything else).
    pub fn canonical(&self) -> Gate {
        match self {
            Gate::CzDiabatic => Gate::Cz,
            Gate::SwapDiabatic | Gate::SwapComposite => Gate::Swap,
            g => *g,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.params();
        if ps.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined: Vec<String> = ps.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), joined.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qca_num::phase::approx_eq_up_to_phase;
    use std::f64::consts::PI;

    #[test]
    fn all_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rx(0.3),
            Gate::Ry(1.2),
            Gate::Rz(-0.7),
            Gate::Phase(0.9),
            Gate::U3(0.5, 1.0, -0.4),
            Gate::Cx,
            Gate::Cz,
            Gate::CzDiabatic,
            Gate::CPhase(0.6),
            Gate::CRot(1.1),
            Gate::Swap,
            Gate::SwapDiabatic,
            Gate::SwapComposite,
            Gate::ISwap,
        ];
        for g in gates {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
            assert_eq!(g.matrix().rows(), 1 << g.num_qubits());
        }
    }

    #[test]
    fn dagger_inverts() {
        let gates = [
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.3),
            Gate::Ry(1.2),
            Gate::Rz(-0.7),
            Gate::U3(0.5, 1.0, -0.4),
            Gate::CPhase(0.6),
            Gate::CRot(1.1),
            Gate::Cx,
            Gate::Swap,
            Gate::ISwap,
        ];
        for g in gates {
            let prod = &g.matrix() * &g.dagger().matrix();
            assert!(
                approx_eq_up_to_phase(&prod, &CMat::identity(prod.rows()), 1e-10),
                "{g} dagger fails"
            );
        }
    }

    #[test]
    fn crot_pi_is_cnot_up_to_phase_on_target_block() {
        // CROT(pi): lower 2x2 block is -iX; CX differs only by that phase on
        // the control=1 subspace, so they agree up to *local* corrections but
        // not a single global phase. Verify block structure instead.
        let m = Gate::CRot(PI).matrix();
        assert!(m[(0, 0)].approx_eq(C64::ONE, 1e-12));
        assert!(m[(2, 3)].approx_eq(-C64::I, 1e-12));
        assert!(m[(3, 2)].approx_eq(-C64::I, 1e-12));
        assert!(m[(2, 2)].norm() < 1e-12);
    }

    #[test]
    fn cphase_pi_is_cz() {
        assert!(approx_eq_up_to_phase(
            &Gate::CPhase(PI).matrix(),
            &Gate::Cz.matrix(),
            1e-12
        ));
    }

    #[test]
    fn realization_variants_share_unitary() {
        assert!(Gate::CzDiabatic.matrix().approx_eq(&Gate::Cz.matrix(), 0.0));
        assert!(Gate::SwapDiabatic
            .matrix()
            .approx_eq(&Gate::Swap.matrix(), 0.0));
        assert!(Gate::SwapComposite
            .matrix()
            .approx_eq(&Gate::Swap.matrix(), 0.0));
        assert_eq!(Gate::SwapDiabatic.canonical(), Gate::Swap);
        assert!(Gate::SwapDiabatic.is_realization_variant());
        assert!(!Gate::Swap.is_realization_variant());
    }

    #[test]
    fn u3_specializations() {
        // U3(0,0,l) = Phase(l) up to global phase
        assert!(approx_eq_up_to_phase(
            &Gate::U3(0.0, 0.0, 0.8).matrix(),
            &Gate::Phase(0.8).matrix(),
            1e-12
        ));
        // U3(pi/2, 0, pi) = H
        assert!(approx_eq_up_to_phase(
            &Gate::U3(PI / 2.0, 0.0, PI).matrix(),
            &Gate::H.matrix(),
            1e-12
        ));
        // U3(t, -pi/2, pi/2) = Rx(t)
        assert!(approx_eq_up_to_phase(
            &Gate::U3(0.7, -PI / 2.0, PI / 2.0).matrix(),
            &Gate::Rx(0.7).matrix(),
            1e-12
        ));
    }

    #[test]
    fn hzh_is_x() {
        let h = Gate::H.matrix();
        let z = Gate::Z.matrix();
        let hzh = &(&h * &z) * &h;
        assert!(approx_eq_up_to_phase(&hzh, &Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::Sx.matrix();
        assert!(approx_eq_up_to_phase(
            &(&sx * &sx),
            &Gate::X.matrix(),
            1e-12
        ));
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::Cx.to_string(), "cx");
        assert!(Gate::Rz(0.5).to_string().starts_with("rz(0.5"));
    }
}
