//! Instruction-level dependency DAG.
//!
//! Two instructions depend on each other when they share a qubit; the DAG
//! chains each qubit's instructions in circuit order. Used for depth/layer
//! analysis and as the substrate for block dependency extraction.

use crate::circuit::Circuit;

/// Dependency DAG over the instructions of a circuit.
#[derive(Debug, Clone)]
pub struct CircuitDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    n: usize,
}

impl CircuitDag {
    /// Builds the DAG for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, instr) in circuit.iter().enumerate() {
            for &q in &instr.qubits {
                if let Some(p) = last_on_qubit[q] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_qubit[q] = Some(i);
            }
        }
        CircuitDag { preds, succs, n }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the circuit had no instructions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct predecessors of instruction `i`.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of instruction `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Instructions grouped into parallel layers (ASAP levelization).
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.n];
        for i in 0..self.n {
            // preds always have smaller index, so one pass suffices
            level[i] = self.preds[i]
                .iter()
                .map(|&p| level[p] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = level.iter().copied().max().map_or(0, |d| d + 1);
        let mut layers = vec![Vec::new(); depth];
        for (i, &l) in level.iter().enumerate() {
            layers[l].push(i);
        }
        layers
    }

    /// A topological order (instruction indices are already topologically
    /// sorted by construction, so this is the identity order).
    pub fn topological_order(&self) -> Vec<usize> {
        (0..self.n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn chain_dependencies() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[1]);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn independent_gates_share_layer() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::H, &[2]);
        c.push(Gate::Cx, &[0, 1]);
        let dag = CircuitDag::new(&c);
        let layers = dag.layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1, 2]);
        assert_eq!(layers[1], vec![3]);
    }

    #[test]
    fn two_qubit_gate_single_pred_edge() {
        // A 2q gate whose both operands were last touched by the same gate
        // gets a single dedup'd predecessor edge.
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn layers_match_circuit_depth() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::H, &[0]);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.layers().len(), c.depth());
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2);
        let dag = CircuitDag::new(&c);
        assert!(dag.is_empty());
        assert!(dag.layers().is_empty());
    }
}
