//! # qca-circuit
//!
//! Quantum circuit intermediate representation for the SAT-based circuit
//! adaptation workspace:
//!
//! * the gate library ([`Gate`]) including the spin-qubit hardware
//!   realizations of the paper (diabatic CZ, SWAP_d, SWAP_c, CROT),
//! * the circuit IR ([`Circuit`], [`Instr`]),
//! * instruction-level dependency analysis ([`dag`]),
//! * two-qubit block partitioning with the block dependency graph
//!   ([`blocks`], the paper's preprocessing step §IV-A),
//! * OpenQASM 2.0 parsing/printing ([`qasm`]),
//! * canonical structural hashing for adaptation caching ([`hash`]).
//!
//! # Examples
//!
//! ```
//! use qca_circuit::{Circuit, Gate, blocks::partition_blocks};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::H, &[0]);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::Cx, &[1, 2]);
//! let partition = partition_blocks(&c);
//! assert_eq!(partition.blocks.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blocks;
mod circuit;
pub mod dag;
mod gate;
pub mod hash;
pub mod qasm;

pub use circuit::{Circuit, Instr};
pub use gate::Gate;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qca_num::phase::approx_eq_up_to_phase;

    /// Strategy producing a random circuit over `nq` qubits.
    fn arb_circuit(nq: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
        let gate = prop_oneof![
            Just(GateSpec::H),
            Just(GateSpec::X),
            Just(GateSpec::S),
            (-3.0..3.0f64).prop_map(GateSpec::Rz),
            (-3.0..3.0f64).prop_map(GateSpec::Ry),
            Just(GateSpec::Cx),
            Just(GateSpec::Cz),
            Just(GateSpec::Swap),
            (-3.0..3.0f64).prop_map(GateSpec::CPhase),
        ];
        proptest::collection::vec((gate, 0..nq, 0..nq), 0..max_len).prop_map(move |specs| {
            let mut c = Circuit::new(nq);
            for (g, a, b) in specs {
                match g {
                    GateSpec::H => c.push(Gate::H, &[a]),
                    GateSpec::X => c.push(Gate::X, &[a]),
                    GateSpec::S => c.push(Gate::S, &[a]),
                    GateSpec::Rz(t) => c.push(Gate::Rz(t), &[a]),
                    GateSpec::Ry(t) => c.push(Gate::Ry(t), &[a]),
                    GateSpec::Cx | GateSpec::Cz | GateSpec::Swap | GateSpec::CPhase(_)
                        if a == b => {}
                    GateSpec::Cx => c.push(Gate::Cx, &[a, b]),
                    GateSpec::Cz => c.push(Gate::Cz, &[a, b]),
                    GateSpec::Swap => c.push(Gate::Swap, &[a, b]),
                    GateSpec::CPhase(t) => c.push(Gate::CPhase(t), &[a, b]),
                }
            }
            c
        })
    }

    #[derive(Debug, Clone, Copy)]
    enum GateSpec {
        H,
        X,
        S,
        Rz(f64),
        Ry(f64),
        Cx,
        Cz,
        Swap,
        CPhase(f64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(60))]

        #[test]
        fn circuit_unitary_is_unitary(c in arb_circuit(3, 12)) {
            prop_assert!(c.unitary().is_unitary(1e-9));
        }

        #[test]
        fn inverse_composes_to_identity(c in arb_circuit(3, 10)) {
            let mut full = c.clone();
            full.extend_from(&c.inverse());
            let id = qca_num::CMat::identity(8);
            prop_assert!(approx_eq_up_to_phase(&full.unitary(), &id, 1e-8));
        }

        #[test]
        fn qasm_round_trip(c in arb_circuit(3, 12)) {
            let text = qasm::to_qasm(&c);
            let c2 = qasm::parse_qasm(&text).unwrap();
            prop_assert_eq!(c.len(), c2.len());
            prop_assert!(approx_eq_up_to_phase(&c.unitary(), &c2.unitary(), 1e-8));
        }

        #[test]
        fn partition_covers_all_ops(c in arb_circuit(4, 20)) {
            let p = blocks::partition_blocks(&c);
            let mut count = 0;
            for b in &p.blocks {
                count += b.ops.len();
                // ops sorted ascending within block
                for w in b.ops.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
            prop_assert_eq!(count, c.len());
        }

        #[test]
        fn partition_reconstruction_equivalent(c in arb_circuit(3, 14)) {
            let p = blocks::partition_blocks(&c);
            let mut rebuilt = Circuit::new(c.num_qubits());
            for id in p.topological_order() {
                for &op in &p.blocks[id].ops {
                    let instr = &c.instrs()[op];
                    rebuilt.push(instr.gate, &instr.qubits);
                }
            }
            prop_assert!(approx_eq_up_to_phase(&c.unitary(), &rebuilt.unitary(), 1e-8));
        }

        #[test]
        fn dag_layer_count_equals_depth(c in arb_circuit(4, 20)) {
            let dag = dag::CircuitDag::new(&c);
            prop_assert_eq!(dag.layers().len(), c.depth());
        }
    }
}
