//! Two-qubit block partitioning and the block dependency graph.
//!
//! The preprocessing step of the paper (§IV-A): the circuit is partitioned
//! into *blocks* of gates interacting on the same qubit pair; block order is
//! captured by a dependency graph with an edge `(b', b)` when block `b'` must
//! complete before block `b` starts.

use crate::circuit::{Circuit, Instr};

/// A block: a maximal run of gates on one qubit pair (or a trailing run of
/// single-qubit gates on one qubit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Dense block id (index into [`BlockPartition::blocks`]).
    pub id: usize,
    /// The qubits the block acts on, sorted ascending (length 1 or 2).
    pub qubits: Vec<usize>,
    /// Indices into the source circuit's instruction list, ascending.
    pub ops: Vec<usize>,
}

impl Block {
    /// `true` for a two-qubit block.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits.len() == 2
    }
}

/// The result of partitioning a circuit into blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockPartition {
    /// Blocks in creation (topological) order.
    pub blocks: Vec<Block>,
    /// Dependency edges `(before, after)` between block ids.
    pub edges: Vec<(usize, usize)>,
}

impl BlockPartition {
    /// Successor lists per block.
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut s = vec![Vec::new(); self.blocks.len()];
        for &(a, b) in &self.edges {
            s[a].push(b);
        }
        s
    }

    /// Predecessor lists per block.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.blocks.len()];
        for &(a, b) in &self.edges {
            p[b].push(a);
        }
        p
    }

    /// A topological order of block ids (blocks are created in a
    /// topologically consistent order, so this is ascending id order).
    pub fn topological_order(&self) -> Vec<usize> {
        (0..self.blocks.len()).collect()
    }

    /// Extracts a block as a standalone circuit over its local qubits
    /// (operands remapped to positions in the sorted `qubits` list).
    pub fn block_circuit(&self, source: &Circuit, id: usize) -> Circuit {
        let block = &self.blocks[id];
        let mut c = Circuit::new(block.qubits.len());
        for &op in &block.ops {
            let instr: &Instr = &source.instrs()[op];
            let local: Vec<usize> = instr
                .qubits
                .iter()
                .map(|q| {
                    block
                        .qubits
                        .iter()
                        .position(|bq| bq == q)
                        .expect("block op uses only block qubits")
                })
                .collect();
            c.push(instr.gate, &local);
        }
        c
    }
}

/// Partitions `circuit` into two-qubit blocks plus trailing single-qubit
/// blocks, and derives the block dependency graph.
///
/// Single-qubit gates are absorbed into the two-qubit block that next uses
/// (or currently uses) their qubit; single-qubit gates never followed by a
/// two-qubit gate on the same qubit form their own single-qubit block.
///
/// # Examples
///
/// ```
/// use qca_circuit::{Circuit, Gate, blocks::partition_blocks};
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// c.push(Gate::Cx, &[1, 2]);
/// let p = partition_blocks(&c);
/// assert_eq!(p.blocks.len(), 2);
/// assert_eq!(p.edges, vec![(0, 1)]);
/// ```
pub fn partition_blocks(circuit: &Circuit) -> BlockPartition {
    let nq = circuit.num_qubits();
    // Open block per qubit (id into `blocks`).
    let mut open: Vec<Option<usize>> = vec![None; nq];
    // Single-qubit instructions waiting for a block, per qubit.
    let mut pending: Vec<Vec<usize>> = vec![Vec::new(); nq];
    let mut blocks: Vec<Block> = Vec::new();

    let close_qubit = |open: &mut Vec<Option<usize>>, q: usize| {
        if let Some(id) = open[q] {
            // Close the whole block: clear every qubit pointing at it.
            for o in open.iter_mut() {
                if *o == Some(id) {
                    *o = None;
                }
            }
        }
    };

    for (i, instr) in circuit.iter().enumerate() {
        match instr.qubits.len() {
            1 => {
                let q = instr.qubits[0];
                if let Some(id) = open[q] {
                    blocks[id].ops.push(i);
                } else {
                    pending[q].push(i);
                }
            }
            2 => {
                let (a, b) = (instr.qubits[0], instr.qubits[1]);
                let mut pair = vec![a, b];
                pair.sort_unstable();
                let same = match (open[a], open[b]) {
                    (Some(x), Some(y)) if x == y && blocks[x].qubits == pair => Some(x),
                    _ => None,
                };
                match same {
                    Some(id) => blocks[id].ops.push(i),
                    None => {
                        close_qubit(&mut open, a);
                        close_qubit(&mut open, b);
                        let id = blocks.len();
                        let mut ops: Vec<usize> = Vec::new();
                        // Absorb pending 1q gates on both qubits, in
                        // original order.
                        let mut merged: Vec<usize> = pending[a].drain(..).collect();
                        merged.append(&mut pending[b]);
                        merged.sort_unstable();
                        ops.extend(merged);
                        ops.push(i);
                        blocks.push(Block {
                            id,
                            qubits: pair,
                            ops,
                        });
                        open[a] = Some(id);
                        open[b] = Some(id);
                    }
                }
            }
            n => unreachable!("{n}-qubit instructions are not supported"),
        }
    }
    // Leftover pending single-qubit gates become single-qubit blocks.
    for (q, ops) in pending.into_iter().enumerate() {
        if !ops.is_empty() {
            let id = blocks.len();
            blocks.push(Block {
                id,
                qubits: vec![q],
                ops,
            });
        }
    }
    // Block ids follow creation order, which is topological: along any qubit
    // chain, block segments are contiguous and open in scan order (absorbed
    // pending gates are always a qubit's earliest unclaimed gates, so they
    // can only join the *next* block to claim that qubit).

    // Dependency edges: chain blocks along each qubit in order of the
    // earliest op that the block applies on that qubit.
    let mut edges = Vec::new();
    let mut op_block = vec![usize::MAX; circuit.len()];
    for b in &blocks {
        for &op in &b.ops {
            op_block[op] = b.id;
        }
    }
    let mut last_block_on_qubit: Vec<Option<usize>> = vec![None; nq];
    for (i, instr) in circuit.iter().enumerate() {
        let bid = op_block[i];
        for &q in &instr.qubits {
            if let Some(prev) = last_block_on_qubit[q] {
                if prev != bid && !edges.contains(&(prev, bid)) {
                    edges.push((prev, bid));
                }
            }
            last_block_on_qubit[q] = Some(bid);
        }
    }
    BlockPartition { blocks, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use qca_num::phase::approx_eq_up_to_phase;

    fn example_circuit() -> Circuit {
        // The flavor of Fig. 4: 3 qubits, blocks on (0,1), (1,2), (0,1).
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.3), &[1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::H, &[2]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Cx, &[0, 1]);
        c
    }

    #[test]
    fn blocks_cover_all_ops_exactly_once() {
        let c = example_circuit();
        let p = partition_blocks(&c);
        let mut seen = vec![false; c.len()];
        for b in &p.blocks {
            for &op in &b.ops {
                assert!(!seen[op], "op {op} in two blocks");
                seen[op] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some op missing from blocks");
    }

    #[test]
    fn block_ops_use_only_block_qubits() {
        let c = example_circuit();
        let p = partition_blocks(&c);
        for b in &p.blocks {
            for &op in &b.ops {
                for q in &c.instrs()[op].qubits {
                    assert!(b.qubits.contains(q));
                }
            }
        }
    }

    #[test]
    fn example_block_structure() {
        let c = example_circuit();
        let p = partition_blocks(&c);
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.blocks[0].qubits, vec![0, 1]);
        assert_eq!(p.blocks[1].qubits, vec![1, 2]);
        assert_eq!(p.blocks[2].qubits, vec![0, 1]);
        // ops: h(0), cx01, rz(1), cx01 in block 0
        assert_eq!(p.blocks[0].ops, vec![0, 1, 2, 3]);
        assert_eq!(p.blocks[1].ops, vec![4, 5, 6]);
        assert_eq!(p.blocks[2].ops, vec![7]);
        assert!(p.edges.contains(&(0, 1)));
        assert!(p.edges.contains(&(1, 2)));
    }

    #[test]
    fn trailing_single_qubit_gates_form_blocks() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[0]); // joins open block (0,1)
        let p = partition_blocks(&c);
        assert_eq!(p.blocks.len(), 1);

        let mut c2 = Circuit::new(2);
        c2.push(Gate::H, &[0]);
        c2.push(Gate::H, &[1]);
        let p2 = partition_blocks(&c2);
        assert_eq!(p2.blocks.len(), 2);
        assert!(p2.blocks.iter().all(|b| !b.is_two_qubit()));
        assert!(p2.edges.is_empty());
    }

    #[test]
    fn reconstruction_preserves_unitary() {
        let c = example_circuit();
        let p = partition_blocks(&c);
        // Re-emit the circuit block by block in topological (id) order.
        let mut rebuilt = Circuit::new(c.num_qubits());
        for id in p.topological_order() {
            for &op in &p.blocks[id].ops {
                let instr = &c.instrs()[op];
                rebuilt.push(instr.gate, &instr.qubits);
            }
        }
        assert!(approx_eq_up_to_phase(
            &c.unitary(),
            &rebuilt.unitary(),
            1e-10
        ));
    }

    #[test]
    fn block_circuit_extraction() {
        let c = example_circuit();
        let p = partition_blocks(&c);
        let b0 = p.block_circuit(&c, 0);
        assert_eq!(b0.num_qubits(), 2);
        assert_eq!(b0.len(), 4);
        // First op: H on local qubit 0 (global 0 -> position 0).
        assert_eq!(b0.instrs()[0].gate, Gate::H);
        assert_eq!(b0.instrs()[0].qubits, vec![0]);
    }

    #[test]
    fn interleaved_pairs_split_blocks() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Cx, &[0, 1]);
        let p = partition_blocks(&c);
        assert_eq!(p.blocks.len(), 3, "alternating pairs cannot merge");
        assert!(p.edges.contains(&(0, 1)));
        assert!(p.edges.contains(&(1, 2)));
    }

    #[test]
    fn operand_order_within_pair_is_irrelevant() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 0]);
        let p = partition_blocks(&c);
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0].ops.len(), 2);
    }

    #[test]
    fn edges_are_acyclic() {
        let c = example_circuit();
        let p = partition_blocks(&c);
        for &(a, b) in &p.edges {
            assert!(a < b, "edge ({a},{b}) violates topological id order");
        }
    }
}
