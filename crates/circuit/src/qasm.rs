//! OpenQASM 2.0 subset parser and printer.
//!
//! Supports the constructs produced by common transpilers for the gate sets
//! this workspace handles: a single quantum register, the `qelib1` gate
//! names used here (`x`, `h`, `rz`, `u1`/`u2`/`u3`, `cx`, `cz`, `swap`,
//! `iswap`, `cp`/`cu1`, `crx`, ...), `barrier` (ignored) and `measure`
//! (excluded from the [`Circuit`] but retained — with positions — on
//! [`QasmProgram`] for diagnostics). Parameter expressions support `pi`,
//! numeric literals, unary minus, `+ - * /` and parentheses.
//!
//! [`parse_qasm_program`] additionally reports a 1-based line *and* column
//! ([`SrcSpan`]) for every parsed statement, so downstream diagnostics (and
//! [`ParseQasmError`]) can point at exact source positions.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::error::Error;
use std::fmt;

/// A position in OpenQASM source: 1-based line and column.
///
/// Columns count characters (not bytes) from the start of the physical
/// line, so they match what an editor displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SrcSpan {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column of the statement's first character.
    pub col: usize,
}

impl fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error produced when parsing OpenQASM source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// 1-based source column of the offending statement.
    pub col: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseQasmError {}

fn err(span: SrcSpan, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        line: span.line,
        col: span.col,
        message: message.into(),
    }
}

/// One `measure` statement, retained for diagnostics.
///
/// [`parse_qasm`] drops measurements from the returned [`Circuit`] (the
/// adaptation pipeline works on the unitary part), but static analysis
/// needs to know *where* in the gate stream each qubit was measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureStmt {
    /// Measured qubit indices (the whole register for `measure q -> c`).
    pub qubits: Vec<usize>,
    /// Number of gate instructions parsed before this measurement.
    pub at_op: usize,
    /// Source position of the statement.
    pub span: SrcSpan,
}

/// A parsed OpenQASM program with per-statement source metadata.
///
/// Produced by [`parse_qasm_program`]; [`parse_qasm`] is the plain-circuit
/// view. `spans` is parallel to `circuit.instrs()`.
#[derive(Debug, Clone)]
pub struct QasmProgram {
    /// The unitary part of the program.
    pub circuit: Circuit,
    /// Source position of every instruction (parallel to the circuit).
    pub spans: Vec<SrcSpan>,
    /// Measurement statements, in program order.
    pub measures: Vec<MeasureStmt>,
    /// Source position of the `qreg` declaration, when present.
    pub qreg_span: Option<SrcSpan>,
}

/// Parses a full OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unsupported or malformed constructs.
///
/// # Examples
///
/// ```
/// use qca_circuit::qasm::parse_qasm;
///
/// let src = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[2];
/// h q[0];
/// cx q[0],q[1];
/// rz(pi/4) q[1];
/// "#;
/// let c = parse_qasm(src)?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.len(), 3);
/// # Ok::<(), qca_circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse_qasm(src: &str) -> Result<Circuit, ParseQasmError> {
    parse_qasm_program(src).map(|p| p.circuit)
}

/// Parses a full OpenQASM 2.0 program, retaining per-statement source
/// spans and measurement statements for diagnostics.
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unsupported or malformed constructs; the
/// error carries the exact line *and* column of the offending statement.
///
/// # Examples
///
/// ```
/// use qca_circuit::qasm::parse_qasm_program;
///
/// let src = "qreg q[2];\nh q[0];\nmeasure q[0] -> c[0];\n";
/// let p = parse_qasm_program(src)?;
/// assert_eq!(p.circuit.len(), 1);
/// assert_eq!(p.spans[0].line, 2);
/// assert_eq!(p.measures[0].qubits, vec![0]);
/// # Ok::<(), qca_circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse_qasm_program(src: &str) -> Result<QasmProgram, ParseQasmError> {
    let mut num_qubits: Option<usize> = None;
    let mut reg_name = String::from("q");
    let mut program = QasmProgram {
        circuit: Circuit::new(0),
        spans: Vec::new(),
        measures: Vec::new(),
        qreg_span: None,
    };
    // Split each physical line on ';' to allow multi-statement lines,
    // tracking byte offsets so every statement gets a line:column span.
    for (lineno, raw_line) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let mut seg_start = 0usize;
        for segment in line.split(';') {
            let stmt = segment.trim();
            let start_byte = seg_start + (segment.len() - segment.trim_start().len());
            seg_start += segment.len() + 1;
            if stmt.is_empty() {
                continue;
            }
            let span = SrcSpan {
                line: lineno,
                col: raw_line[..start_byte].chars().count() + 1,
            };
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let rest = rest.trim();
                let (name, size) = parse_reg_decl(rest)
                    .ok_or_else(|| err(span, format!("bad qreg declaration {rest:?}")))?;
                if num_qubits.is_some() {
                    return Err(err(span, "multiple qreg declarations are unsupported"));
                }
                reg_name = name;
                num_qubits = Some(size);
                program.circuit = Circuit::new(size);
                program.qreg_span = Some(span);
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("measure") {
                if let Some(nq) = num_qubits {
                    if let Some(qubits) = parse_measure_operand(rest, &reg_name, nq) {
                        program.measures.push(MeasureStmt {
                            qubits,
                            at_op: program.circuit.len(),
                            span,
                        });
                    }
                }
                continue;
            }
            if stmt.starts_with("creg") || stmt.starts_with("barrier") {
                continue;
            }
            // Gate application: name[(params)] operands
            let nq = num_qubits.ok_or_else(|| err(span, "gate before qreg declaration"))?;
            let (gate, qubits) = parse_gate_stmt(stmt, &reg_name, nq, span)?;
            if qubits.iter().any(|&q| q >= nq) {
                return Err(err(span, "qubit index out of range"));
            }
            if qubits.len() == 2 && qubits[0] == qubits[1] {
                return Err(err(span, "two-qubit gate on identical qubits"));
            }
            program.circuit.push(gate, &qubits);
            program.spans.push(span);
        }
    }
    Ok(program)
}

/// Parses the quantum operand of `measure <q> -> <c>`: a single qubit for
/// `q[i]`, the whole register for a bare register name. Malformed
/// measurements are skipped (`None`), matching the parser's historical
/// leniency toward non-unitary statements.
fn parse_measure_operand(rest: &str, reg: &str, nq: usize) -> Option<Vec<usize>> {
    let lhs = rest.split("->").next()?.trim();
    if lhs == reg {
        return Some((0..nq).collect());
    }
    let idx = parse_operand(lhs, reg)?;
    (idx < nq).then(|| vec![idx])
}

fn parse_reg_decl(s: &str) -> Option<(String, usize)> {
    let open = s.find('[')?;
    let close = s.find(']')?;
    let name = s[..open].trim().to_string();
    let size: usize = s[open + 1..close].trim().parse().ok()?;
    Some((name, size))
}

fn parse_gate_stmt(
    stmt: &str,
    reg: &str,
    _nq: usize,
    span: SrcSpan,
) -> Result<(Gate, Vec<usize>), ParseQasmError> {
    // Split off the mnemonic (up to '(' or whitespace).
    let name_end = stmt
        .find(|c: char| c == '(' || c.is_whitespace())
        .unwrap_or(stmt.len());
    let name = &stmt[..name_end];
    let mut rest = stmt[name_end..].trim();
    let mut params: Vec<f64> = Vec::new();
    if rest.starts_with('(') {
        let close = find_matching_paren(rest)
            .ok_or_else(|| err(span, "unbalanced parameter parentheses"))?;
        let inner = &rest[1..close];
        for p in split_top_level_commas(inner) {
            params.push(parse_expr_detailed(p.trim()).map_err(|detail| {
                err(span, format!("bad parameter expression {p:?}: {detail}"))
            })?);
        }
        rest = rest[close + 1..].trim();
    }
    let mut qubits = Vec::new();
    for operand in rest.split(',') {
        let operand = operand.trim();
        if operand.is_empty() {
            continue;
        }
        let idx = parse_operand(operand, reg)
            .ok_or_else(|| err(span, format!("bad operand {operand:?}")))?;
        qubits.push(idx);
    }
    let p = |i: usize| -> Result<f64, ParseQasmError> {
        params
            .get(i)
            .copied()
            .ok_or_else(|| err(span, format!("gate {name} missing parameter {i}")))
    };
    let gate = match name {
        "id" | "i" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::Sx,
        "rx" => Gate::Rx(p(0)?),
        "ry" => Gate::Ry(p(0)?),
        "rz" => Gate::Rz(p(0)?),
        "p" | "u1" => Gate::Phase(p(0)?),
        "u2" => Gate::U3(std::f64::consts::FRAC_PI_2, p(0)?, p(1)?),
        "u3" | "u" => Gate::U3(p(0)?, p(1)?, p(2)?),
        "cx" | "CX" => Gate::Cx,
        "cz" => Gate::Cz,
        "cz_db" => Gate::CzDiabatic,
        "cp" | "cu1" => Gate::CPhase(p(0)?),
        "crx" | "crot" => Gate::CRot(p(0)?),
        "swap" => Gate::Swap,
        "swap_d" => Gate::SwapDiabatic,
        "swap_c" => Gate::SwapComposite,
        "iswap" => Gate::ISwap,
        "iswapdg" => Gate::ISwapDg,
        other => return Err(err(span, format!("unsupported gate {other:?}"))),
    };
    let expect = gate.num_qubits();
    if qubits.len() != expect {
        return Err(err(
            span,
            format!(
                "gate {name} expects {expect} operand(s), got {}",
                qubits.len()
            ),
        ));
    }
    Ok((gate, qubits))
}

fn find_matching_paren(s: &str) -> Option<usize> {
    let mut depth = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn parse_operand(s: &str, reg: &str) -> Option<usize> {
    let open = s.find('[')?;
    let close = s.find(']')?;
    if s[..open].trim() != reg {
        return None;
    }
    s[open + 1..close].trim().parse().ok()
}

/// Parses a parameter arithmetic expression (`pi/2`, `-0.5*pi`, `3.25`, ...).
///
/// Returns `None` on malformed input. Use [`parse_expr_detailed`] when the
/// caller needs to know *why* the expression was rejected.
pub fn parse_expr(s: &str) -> Option<f64> {
    parse_expr_detailed(s).ok()
}

/// Parses a parameter arithmetic expression, reporting what went wrong on
/// malformed input (a dangling exponent like `1e` or `2.5e+`, a stray
/// character, trailing tokens, ...). [`parse_qasm`] surfaces the message —
/// with the offending source line — as a [`ParseQasmError`].
pub fn parse_expr_detailed(s: &str) -> Result<f64, String> {
    let tokens = tokenize(s)?;
    if tokens.is_empty() {
        return Err("empty expression".to_string());
    }
    let mut pos = 0;
    let v = parse_add(&tokens, &mut pos).ok_or_else(|| "malformed expression".to_string())?;
    if pos == tokens.len() {
        Ok(v)
    } else {
        Err(format!(
            "trailing tokens after a complete expression (token {} of {})",
            pos + 1,
            tokens.len()
        ))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(s: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            'p' | 'P' if s[i..].to_lowercase().starts_with("pi") => {
                out.push(Token::Num(std::f64::consts::PI));
                i += 2;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let lit = &s[start..i];
                // A literal that stops right after its exponent marker
                // (`1e`, `2.5E+`) would fail the f64 parse below anyway,
                // but deserves a precise message.
                if lit.ends_with(['e', 'E', '+', '-']) {
                    return Err(format!("dangling exponent in numeric literal {lit:?}"));
                }
                out.push(
                    lit.parse()
                        .map(Token::Num)
                        .map_err(|_| format!("bad numeric literal {lit:?}"))?,
                );
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

fn parse_add(tokens: &[Token], pos: &mut usize) -> Option<f64> {
    let mut v = parse_mul(tokens, pos)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Token::Plus => {
                *pos += 1;
                v += parse_mul(tokens, pos)?;
            }
            Token::Minus => {
                *pos += 1;
                v -= parse_mul(tokens, pos)?;
            }
            _ => break,
        }
    }
    Some(v)
}

fn parse_mul(tokens: &[Token], pos: &mut usize) -> Option<f64> {
    let mut v = parse_unary(tokens, pos)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Token::Star => {
                *pos += 1;
                v *= parse_unary(tokens, pos)?;
            }
            Token::Slash => {
                *pos += 1;
                v /= parse_unary(tokens, pos)?;
            }
            _ => break,
        }
    }
    Some(v)
}

fn parse_unary(tokens: &[Token], pos: &mut usize) -> Option<f64> {
    match tokens.get(*pos)? {
        Token::Minus => {
            *pos += 1;
            Some(-parse_unary(tokens, pos)?)
        }
        Token::Plus => {
            *pos += 1;
            parse_unary(tokens, pos)
        }
        Token::Num(v) => {
            let v = *v;
            *pos += 1;
            Some(v)
        }
        Token::LParen => {
            *pos += 1;
            let v = parse_add(tokens, pos)?;
            if tokens.get(*pos) == Some(&Token::RParen) {
                *pos += 1;
                Some(v)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Serializes a circuit as OpenQASM 2.0.
///
/// Hardware realization variants (`cz_db`, `swap_d`, `swap_c`) are emitted
/// under those names; [`parse_qasm`] reads them back, and a standard QASM
/// consumer can `gate`-define them as their canonical equivalents.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for instr in circuit.iter() {
        let params = instr.gate.params();
        let name = instr.gate.name();
        if params.is_empty() {
            out.push_str(name);
        } else {
            let joined: Vec<String> = params.iter().map(|p| format!("{p:.17}")).collect();
            out.push_str(&format!("{name}({})", joined.join(",")));
        }
        let qs: Vec<String> = instr.qubits.iter().map(|q| format!("q[{q}]")).collect();
        out.push_str(&format!(" {};\n", qs.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qca_num::phase::approx_eq_up_to_phase;
    use std::f64::consts::PI;

    #[test]
    fn parse_basic_program() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn crlf_line_endings_parse_identically() {
        // Files written on Windows arrive with \r\n terminators; the parser
        // must treat them exactly like \n (no ParseQasmError, same circuit).
        let unix = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
        let dos = unix.replace('\n', "\r\n");
        let a = parse_qasm(unix).unwrap();
        let b = parse_qasm(&dos).unwrap();
        assert_eq!(a.num_qubits(), b.num_qubits());
        assert_eq!(a.len(), b.len());
        assert_eq!(to_qasm(&a), to_qasm(&b));
    }

    #[test]
    fn missing_trailing_newline_parses() {
        let src = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
        // Same without a trailing newline *and* with CRLF endings.
        let src = "OPENQASM 2.0;\r\nqreg q[2];\r\ncx q[0],q[1];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn spans_report_correct_lines_under_crlf() {
        // Lint diagnostics anchor on these spans; a CRLF file must not
        // shift line numbers or columns (the \r is not part of the line).
        let src = "OPENQASM 2.0;\r\nqreg q[2];\r\n  h q[0];\r\ncx q[0],q[1];\r\n";
        let program = parse_qasm_program(src).unwrap();
        assert_eq!(program.qreg_span, Some(SrcSpan { line: 2, col: 1 }));
        assert_eq!(program.spans.len(), 2);
        assert_eq!(program.spans[0], SrcSpan { line: 3, col: 3 });
        assert_eq!(program.spans[1], SrcSpan { line: 4, col: 1 });
    }

    #[test]
    fn parse_parameter_expressions() {
        for (expr, expect) in [
            ("pi", PI),
            ("pi/2", PI / 2.0),
            ("-pi/4", -PI / 4.0),
            ("2*pi", 2.0 * PI),
            ("(1+2)*3", 9.0),
            ("1.5e-2", 0.015),
            ("pi/2 + pi/4", 3.0 * PI / 4.0),
            ("-(2-5)", 3.0),
        ] {
            let got = parse_expr(expr).unwrap_or_else(|| panic!("failed on {expr}"));
            assert!((got - expect).abs() < 1e-12, "{expr}: {got} != {expect}");
        }
    }

    #[test]
    fn bad_expressions_rejected() {
        for expr in ["", "pi pi", "1+", "(1", "q[0]", "foo"] {
            assert!(parse_expr(expr).is_none(), "{expr:?} should fail");
        }
    }

    #[test]
    fn exponent_forms_parse() {
        for (expr, expect) in [
            ("1e3", 1e3),
            ("1E3", 1e3),
            ("2.5e+2", 250.0),
            ("2.5e-2", 0.025),
            ("1e0*pi", PI),
            ("-3E-1", -0.3),
            ("1.5e2/pi", 150.0 / PI),
        ] {
            let got = parse_expr(expr).unwrap_or_else(|| panic!("failed on {expr}"));
            assert!((got - expect).abs() < 1e-12, "{expr}: {got} != {expect}");
        }
    }

    #[test]
    fn dangling_exponents_report_detail() {
        for expr in ["1e", "2.5e+", "2.5E-", "1e*2", "pi/2.5e"] {
            let detail = parse_expr_detailed(expr).unwrap_err();
            assert!(
                detail.contains("dangling exponent"),
                "{expr:?} gave {detail:?}"
            );
        }
        // The Option view stays silent, for callers that only branch.
        assert!(parse_expr("1e").is_none());
    }

    #[test]
    fn pi_arithmetic_forms_parse() {
        for (expr, expect) in [
            ("pi*pi", PI * PI),
            ("PI/2", PI / 2.0),
            ("-pi + 2*pi", PI),
            ("(pi - pi/2)/2", PI / 4.0),
        ] {
            let got = parse_expr(expr).unwrap_or_else(|| panic!("failed on {expr}"));
            assert!((got - expect).abs() < 1e-12, "{expr}: {got} != {expect}");
        }
    }

    #[test]
    fn malformed_parameter_carries_line_and_detail() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nrz(1e) q[1];\n";
        let e = parse_qasm(src).unwrap_err();
        assert_eq!(e.line, 4, "error points at the offending source line");
        assert!(e.message.contains("dangling exponent"), "{}", e.message);
        let src = "qreg q[1];\nrz(2.5e+) q[0];\n";
        let e = parse_qasm(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("2.5e+"), "{}", e.message);
        let src = "qreg q[1];\nrz(1$2) q[0];\n";
        let e = parse_qasm(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unexpected character"), "{}", e.message);
    }

    #[test]
    fn parse_parameterized_gates() {
        let src = "qreg q[2];\nrz(pi/2) q[0];\nu3(0.1,0.2,0.3) q[1];\ncp(-pi) q[0],q[1];\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.instrs()[0].gate, Gate::Rz(PI / 2.0));
        assert_eq!(c.instrs()[1].gate, Gate::U3(0.1, 0.2, 0.3));
        assert_eq!(c.instrs()[2].gate, Gate::CPhase(-PI));
    }

    #[test]
    fn unsupported_gate_errors() {
        let src = "qreg q[1];\nfrobnicate q[0];\n";
        let e = parse_qasm(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn out_of_range_qubit_errors() {
        let src = "qreg q[1];\nh q[3];\n";
        assert!(parse_qasm(src).is_err());
    }

    #[test]
    fn gate_before_qreg_errors() {
        let src = "h q[0];\n";
        assert!(parse_qasm(src).is_err());
    }

    #[test]
    fn wrong_arity_errors() {
        let src = "qreg q[2];\ncx q[0];\n";
        assert!(parse_qasm(src).is_err());
    }

    #[test]
    fn round_trip_preserves_unitary() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(0.7), &[1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::U3(0.1, -0.2, 0.3), &[2]);
        c.push(Gate::CPhase(1.3), &[1, 2]);
        c.push(Gate::Swap, &[0, 2]);
        let qasm = to_qasm(&c);
        let c2 = parse_qasm(&qasm).unwrap();
        assert_eq!(c.len(), c2.len());
        assert!(approx_eq_up_to_phase(&c.unitary(), &c2.unitary(), 1e-9));
    }

    #[test]
    fn round_trip_realization_variants() {
        let mut c = Circuit::new(2);
        c.push(Gate::SwapDiabatic, &[0, 1]);
        c.push(Gate::CzDiabatic, &[0, 1]);
        c.push(Gate::SwapComposite, &[0, 1]);
        let c2 = parse_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(c.instrs(), c2.instrs());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "// header\nqreg q[1];\n\nh q[0]; // inline comment\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn barrier_is_ignored() {
        let src = "qreg q[2];\nh q[0];\nbarrier q;\ncx q[0],q[1];\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn program_spans_are_parallel_to_instrs() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0]; cx q[0],q[1];\n  rz(0.5) q[1];\n";
        let p = parse_qasm_program(src).unwrap();
        assert_eq!(p.circuit.len(), 3);
        assert_eq!(p.spans.len(), p.circuit.len());
        assert_eq!(p.spans[0], SrcSpan { line: 3, col: 1 });
        // Second statement on the same line starts after "h q[0]; ".
        assert_eq!(p.spans[1], SrcSpan { line: 3, col: 9 });
        // Leading whitespace is skipped when computing the column.
        assert_eq!(p.spans[2], SrcSpan { line: 4, col: 3 });
        assert_eq!(p.qreg_span, Some(SrcSpan { line: 2, col: 1 }));
    }

    #[test]
    fn measures_are_recorded_with_positions() {
        let src = "qreg q[3];\nh q[0];\nmeasure q[0] -> c[0];\nx q[1];\nmeasure q -> c;\n";
        let p = parse_qasm_program(src).unwrap();
        assert_eq!(p.circuit.len(), 2, "measures stay out of the circuit");
        assert_eq!(p.measures.len(), 2);
        assert_eq!(p.measures[0].qubits, vec![0]);
        assert_eq!(p.measures[0].at_op, 1);
        assert_eq!(p.measures[0].span, SrcSpan { line: 3, col: 1 });
        // Bare register name measures every qubit.
        assert_eq!(p.measures[1].qubits, vec![0, 1, 2]);
        assert_eq!(p.measures[1].at_op, 2);
    }

    #[test]
    fn parse_errors_carry_column() {
        let src = "qreg q[2];\nh q[0]; frobnicate q[1];\n";
        let e = parse_qasm(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 9, "error points at the second statement");
        assert!(e.to_string().contains("line 2, column 9"), "{e}");
    }
}
