//! # qca-hw
//!
//! Hardware modality models for quantum circuit adaptation:
//!
//! * [`HardwareModel`] — gate cost tables (fidelity + duration) and
//!   coherence times,
//! * [`spin_qubit_model`] — the semiconducting spin-qubit target of the
//!   paper with Table I costs in both timing columns ([`GateTimes::D0`],
//!   [`GateTimes::D1`]),
//! * [`ibm_source_model`] — the CX-basis source modality,
//! * [`CircuitSchedule`] — ASAP scheduling and the qubit idle-time metric
//!   (Eq. 9 / Fig. 6 of the paper),
//! * [`CouplingMap`] — qubit connectivity graphs (line/ring/grid/star,
//!   Starmon-5, JSON-described devices) for topology-aware adaptation.
//!
//! # Examples
//!
//! ```
//! use qca_circuit::{Circuit, Gate};
//! use qca_hw::{spin_qubit_model, CircuitSchedule, GateTimes};
//!
//! let hw = spin_qubit_model(GateTimes::D0);
//! let mut c = Circuit::new(2);
//! c.push(Gate::H, &[0]);
//! c.push(Gate::Cz, &[0, 1]);
//! let sched = CircuitSchedule::asap(&c, &hw).expect("all gates native");
//! assert_eq!(sched.total_duration, 182.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coupling;
mod modality;
mod schedule;

pub use coupling::CouplingMap;
pub use modality::{
    ibm_source_model, spin_qubit_model, CostClass, GateCost, GateTimes, HardwareModel, SPIN_T1_NS,
    SPIN_T2_NS,
};
pub use schedule::{CircuitSchedule, ScheduleError};
