//! Hardware modality models: gate sets, fidelities, durations, coherence.
//!
//! The central data is Table I of the paper — measured fidelities and
//! durations for the gate realizations of the semiconducting spin-qubit
//! platform of Petit et al. (2022), in two variants: `D0` (as measured) and
//! `D1` (projected scaled-up device timings).

use qca_circuit::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// Cost of executing one gate: fidelity and duration in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCost {
    /// Average gate fidelity in `(0, 1]`.
    pub fidelity: f64,
    /// Gate duration in nanoseconds.
    pub duration: f64,
}

impl GateCost {
    /// Creates a cost entry.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fidelity <= 1` and `duration >= 0`.
    pub fn new(fidelity: f64, duration: f64) -> Self {
        assert!(
            fidelity > 0.0 && fidelity <= 1.0,
            "fidelity must be in (0, 1]"
        );
        assert!(duration >= 0.0, "duration must be non-negative");
        GateCost { fidelity, duration }
    }

    /// Creates a cost entry, returning a description of the violation
    /// instead of panicking when the values are out of range. Useful when
    /// tables come from external calibration data rather than literals.
    pub fn try_new(fidelity: f64, duration: f64) -> Result<Self, String> {
        if !(fidelity > 0.0 && fidelity <= 1.0) {
            return Err(format!("fidelity {fidelity} must be in (0, 1]"));
        }
        if duration < 0.0 || duration.is_nan() {
            return Err(format!("duration {duration} must be non-negative"));
        }
        Ok(GateCost { fidelity, duration })
    }

    /// Natural log of the fidelity (negative or zero).
    pub fn log_fidelity(&self) -> f64 {
        self.fidelity.ln()
    }
}

/// Cost classes a hardware model prices individually.
///
/// Parameterized single-qubit gates all fall into [`CostClass::OneQubit`]
/// (the spin platform drives arbitrary SU(2) rotations at one cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostClass {
    /// Any single-qubit gate.
    OneQubit,
    /// Controlled-NOT.
    Cx,
    /// Adiabatic controlled-Z.
    Cz,
    /// Diabatic controlled-Z.
    CzDiabatic,
    /// Controlled phase (arbitrary angle).
    CPhase,
    /// Conditional rotation (CROT).
    CRot,
    /// Abstract swap.
    Swap,
    /// Diabatic swap realization.
    SwapDiabatic,
    /// Composite-pulse swap realization.
    SwapComposite,
    /// iSWAP.
    ISwap,
}

impl CostClass {
    /// The cost class of a gate.
    pub fn of(gate: &Gate) -> CostClass {
        if gate.num_qubits() == 1 {
            return CostClass::OneQubit;
        }
        match gate {
            Gate::Cx => CostClass::Cx,
            Gate::Cz => CostClass::Cz,
            Gate::CzDiabatic => CostClass::CzDiabatic,
            Gate::CPhase(_) => CostClass::CPhase,
            Gate::CRot(_) => CostClass::CRot,
            Gate::Swap => CostClass::Swap,
            Gate::SwapDiabatic => CostClass::SwapDiabatic,
            Gate::SwapComposite => CostClass::SwapComposite,
            Gate::ISwap | Gate::ISwapDg => CostClass::ISwap,
            _ => unreachable!("all two-qubit gates are classified"),
        }
    }
}

/// Which of the two gate-time columns of Table I to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateTimes {
    /// As-measured device timings (column `D0`).
    #[default]
    D0,
    /// Projected scaled-up timings (column `D1`).
    D1,
}

impl fmt::Display for GateTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateTimes::D0 => write!(f, "D0"),
            GateTimes::D1 => write!(f, "D1"),
        }
    }
}

/// A hardware modality: its priced gate classes and coherence times.
#[derive(Debug, Clone)]
pub struct HardwareModel {
    name: String,
    table: BTreeMap<CostClass, GateCost>,
    t1: f64,
    t2: f64,
}

impl HardwareModel {
    /// Creates a model from a cost table and coherence times (ns).
    ///
    /// # Panics
    ///
    /// Panics if a coherence time is non-positive.
    pub fn new(
        name: impl Into<String>,
        table: BTreeMap<CostClass, GateCost>,
        t1: f64,
        t2: f64,
    ) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0, "coherence times must be positive");
        HardwareModel {
            name: name.into(),
            table,
            t1,
            t2,
        }
    }

    /// Creates a model, returning a description of the first violation —
    /// non-positive coherence times or an out-of-range table entry —
    /// instead of panicking. The non-panicking counterpart of
    /// [`HardwareModel::new`] for externally sourced tables.
    pub fn try_new(
        name: impl Into<String>,
        table: BTreeMap<CostClass, GateCost>,
        t1: f64,
        t2: f64,
    ) -> Result<Self, String> {
        if t1 <= 0.0 || t2 <= 0.0 || t1.is_nan() || t2.is_nan() {
            return Err(format!("coherence times T1={t1}, T2={t2} must be positive"));
        }
        for (class, cost) in &table {
            GateCost::try_new(cost.fidelity, cost.duration)
                .map_err(|e| format!("{class:?}: {e}"))?;
        }
        Ok(HardwareModel {
            name: name.into(),
            table,
            t1,
            t2,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relaxation time T1 in nanoseconds.
    pub fn t1(&self) -> f64 {
        self.t1
    }

    /// Dephasing time T2 in nanoseconds.
    pub fn t2(&self) -> f64 {
        self.t2
    }

    /// Cost of a gate, or `None` when the modality does not implement it.
    pub fn cost(&self, gate: &Gate) -> Option<GateCost> {
        self.table.get(&CostClass::of(gate)).copied()
    }

    /// `true` when the modality implements the gate natively.
    pub fn supports(&self, gate: &Gate) -> bool {
        self.cost(gate).is_some()
    }

    /// `true` when every gate of `circuit` is native.
    pub fn supports_circuit(&self, circuit: &qca_circuit::Circuit) -> bool {
        circuit.iter().all(|i| self.supports(&i.gate))
    }

    /// Product of gate fidelities over a circuit.
    ///
    /// Returns `None` if the circuit contains unsupported gates.
    pub fn circuit_fidelity(&self, circuit: &qca_circuit::Circuit) -> Option<f64> {
        let mut f = 1.0;
        for i in circuit.iter() {
            f *= self.cost(&i.gate)?.fidelity;
        }
        Some(f)
    }

    /// Probability that an idle qubit survives `duration` ns unscathed,
    /// `exp(-d/T2)` (Eq. 7 of the paper with `T = T2`).
    pub fn idle_survival(&self, duration: f64) -> f64 {
        (-duration / self.t2).exp()
    }

    /// The priced cost classes.
    pub fn cost_classes(&self) -> impl Iterator<Item = (&CostClass, &GateCost)> {
        self.table.iter()
    }

    /// A copy of this model with every gate infidelity scaled by `factor`
    /// (`f ← 1 − factor·(1 − f)`, clamped into `(0, 1]`); durations and
    /// coherence times are unchanged. This simulates a drifted calibration
    /// snapshot: `factor > 1` degrades every gate, `factor < 1` improves
    /// them, and `factor == 1` is an exact copy (same
    /// [`fingerprint`](Self::fingerprint)). Recalibration smoke tests use
    /// it to perturb a fidelity table without hand-editing cost entries.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative, NaN, or infinite.
    pub fn with_scaled_infidelity(&self, factor: f64) -> HardwareModel {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "infidelity scale factor must be finite and non-negative"
        );
        let table = self
            .table
            .iter()
            .map(|(class, cost)| {
                let fid = (1.0 - factor * (1.0 - cost.fidelity)).clamp(f64::MIN_POSITIVE, 1.0);
                (*class, GateCost::new(fid, cost.duration))
            })
            .collect();
        HardwareModel {
            name: self.name.clone(),
            table,
            t1: self.t1,
            t2: self.t2,
        }
    }

    /// Semantic fingerprint of the model: a stable 64-bit hash of the cost
    /// table and coherence times.
    ///
    /// The model *name* is deliberately excluded — two models priced
    /// identically fingerprint identically, so adaptation caches keyed on
    /// the fingerprint share entries across renames. Costs participate by
    /// IEEE-754 bit pattern: any change to a fidelity, duration, or
    /// coherence time changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = qca_circuit::hash::Fnv64::new();
        h.write_f64(self.t1);
        h.write_f64(self.t2);
        h.write_usize(self.table.len());
        // BTreeMap iteration order is the CostClass Ord order: stable.
        for (class, cost) in &self.table {
            h.write_u64(class_tag(class));
            h.write_f64(cost.fidelity);
            h.write_f64(cost.duration);
        }
        h.finish()
    }
}

/// Stable fingerprint tag per cost class (independent of declaration order,
/// so enum reordering does not silently invalidate cache keys).
fn class_tag(class: &CostClass) -> u64 {
    match class {
        CostClass::OneQubit => 1,
        CostClass::Cx => 2,
        CostClass::Cz => 3,
        CostClass::CzDiabatic => 4,
        CostClass::CPhase => 5,
        CostClass::CRot => 6,
        CostClass::Swap => 7,
        CostClass::SwapDiabatic => 8,
        CostClass::SwapComposite => 9,
        CostClass::ISwap => 10,
    }
}

/// Table I of the paper, shared fidelity column.
const SPIN_FIDELITY: [(CostClass, f64); 6] = [
    (CostClass::OneQubit, 0.999),
    (CostClass::Cz, 0.999),
    (CostClass::CzDiabatic, 0.99),
    (CostClass::CRot, 0.994),
    (CostClass::SwapDiabatic, 0.99),
    (CostClass::SwapComposite, 0.999),
];

/// Table I durations, column `D0` (ns).
const SPIN_D0: [(CostClass, f64); 6] = [
    (CostClass::OneQubit, 30.0),
    (CostClass::Cz, 152.0),
    (CostClass::CzDiabatic, 67.0),
    (CostClass::CRot, 660.0),
    (CostClass::SwapDiabatic, 19.0),
    (CostClass::SwapComposite, 89.0),
];

/// Table I durations, column `D1` (ns).
const SPIN_D1: [(CostClass, f64); 6] = [
    (CostClass::OneQubit, 30.0),
    (CostClass::Cz, 151.0),
    (CostClass::CzDiabatic, 7.0),
    (CostClass::CRot, 660.0),
    (CostClass::SwapDiabatic, 9.0),
    (CostClass::SwapComposite, 13.0),
];

/// T2 coherence time for the spin platform (ns), per Petit et al. \[6\].
pub const SPIN_T2_NS: f64 = 2900.0;

/// T1 is three orders of magnitude larger than T2 (paper §V-B).
pub const SPIN_T1_NS: f64 = SPIN_T2_NS * 1000.0;

/// The semiconducting spin-qubit target modality with Table I costs
/// (Petit et al. 2022, ref. \[6\] of the paper).
///
/// # Examples
///
/// ```
/// use qca_hw::{spin_qubit_model, GateTimes};
/// use qca_circuit::Gate;
///
/// let hw = spin_qubit_model(GateTimes::D0);
/// assert!(hw.supports(&Gate::Cz));
/// assert!(!hw.supports(&Gate::Cx)); // CNOT is not native to spins
/// assert_eq!(hw.cost(&Gate::CzDiabatic).unwrap().duration, 67.0);
/// ```
pub fn spin_qubit_model(times: GateTimes) -> HardwareModel {
    let durations = match times {
        GateTimes::D0 => &SPIN_D0,
        GateTimes::D1 => &SPIN_D1,
    };
    let mut table = BTreeMap::new();
    for ((class, fid), (class2, dur)) in SPIN_FIDELITY.iter().zip(durations.iter()) {
        debug_assert_eq!(class, class2);
        table.insert(*class, GateCost::new(*fid, *dur));
    }
    HardwareModel::new(format!("spin-qubit/{times}"), table, SPIN_T1_NS, SPIN_T2_NS)
}

/// An IBM-superconducting-like source modality (CX + single-qubit basis).
///
/// Used as the *source* basis of circuits to adapt; costs are representative
/// transmon values and only matter when computing relative comparisons on
/// the source hardware.
pub fn ibm_source_model() -> HardwareModel {
    let mut table = BTreeMap::new();
    table.insert(CostClass::OneQubit, GateCost::new(0.9995, 35.0));
    table.insert(CostClass::Cx, GateCost::new(0.99, 300.0));
    HardwareModel::new("ibm-source", table, 100_000.0, 100_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qca_circuit::Circuit;

    #[test]
    fn table_one_d0_values() {
        let hw = spin_qubit_model(GateTimes::D0);
        let cases = [
            (Gate::H, 0.999, 30.0),
            (Gate::Cz, 0.999, 152.0),
            (Gate::CzDiabatic, 0.99, 67.0),
            (Gate::CRot(1.0), 0.994, 660.0),
            (Gate::SwapDiabatic, 0.99, 19.0),
            (Gate::SwapComposite, 0.999, 89.0),
        ];
        for (g, f, d) in cases {
            let c = hw.cost(&g).unwrap_or_else(|| panic!("{g} unsupported"));
            assert_eq!(c.fidelity, f, "{g} fidelity");
            assert_eq!(c.duration, d, "{g} duration");
        }
    }

    #[test]
    fn table_one_d1_values() {
        let hw = spin_qubit_model(GateTimes::D1);
        assert_eq!(hw.cost(&Gate::CzDiabatic).unwrap().duration, 7.0);
        assert_eq!(hw.cost(&Gate::SwapDiabatic).unwrap().duration, 9.0);
        assert_eq!(hw.cost(&Gate::SwapComposite).unwrap().duration, 13.0);
        assert_eq!(hw.cost(&Gate::Cz).unwrap().duration, 151.0);
        // Fidelities identical across columns.
        assert_eq!(hw.cost(&Gate::Cz).unwrap().fidelity, 0.999);
    }

    #[test]
    fn unsupported_gates() {
        let hw = spin_qubit_model(GateTimes::D0);
        for g in [Gate::Cx, Gate::Swap, Gate::ISwap, Gate::CPhase(0.5)] {
            assert!(!hw.supports(&g), "{g} should be unsupported");
        }
    }

    #[test]
    fn circuit_fidelity_product() {
        let hw = spin_qubit_model(GateTimes::D0);
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cz, &[0, 1]);
        let f = hw.circuit_fidelity(&c).unwrap();
        assert!((f - 0.999 * 0.999).abs() < 1e-12);
        // Unsupported gate -> None
        c.push(Gate::Cx, &[0, 1]);
        assert!(hw.circuit_fidelity(&c).is_none());
    }

    #[test]
    fn idle_survival_decays() {
        let hw = spin_qubit_model(GateTimes::D0);
        assert!((hw.idle_survival(0.0) - 1.0).abs() < 1e-12);
        let s = hw.idle_survival(SPIN_T2_NS);
        assert!((s - (-1.0f64).exp()).abs() < 1e-12);
        assert!(hw.idle_survival(100.0) > hw.idle_survival(200.0));
    }

    #[test]
    fn ibm_source_supports_cx_basis() {
        let hw = ibm_source_model();
        assert!(hw.supports(&Gate::Cx));
        assert!(hw.supports(&Gate::Rz(0.3)));
        assert!(!hw.supports(&Gate::Cz));
    }

    #[test]
    fn one_qubit_gates_share_cost_class() {
        for g in [
            Gate::X,
            Gate::H,
            Gate::Rz(0.1),
            Gate::U3(0.1, 0.2, 0.3),
            Gate::Sx,
        ] {
            assert_eq!(CostClass::of(&g), CostClass::OneQubit);
        }
    }

    #[test]
    #[should_panic(expected = "fidelity")]
    fn cost_validation() {
        let _ = GateCost::new(1.5, 10.0);
    }

    #[test]
    fn fingerprint_reflects_costs_not_name() {
        let d0 = spin_qubit_model(GateTimes::D0);
        let d1 = spin_qubit_model(GateTimes::D1);
        assert_eq!(
            d0.fingerprint(),
            spin_qubit_model(GateTimes::D0).fingerprint()
        );
        assert_ne!(d0.fingerprint(), d1.fingerprint());
        assert_ne!(d0.fingerprint(), ibm_source_model().fingerprint());
        // Renamed but identically priced model: same fingerprint.
        let mut table = BTreeMap::new();
        for (class, cost) in d0.cost_classes() {
            table.insert(*class, *cost);
        }
        let renamed = HardwareModel::new("other-name", table, d0.t1(), d0.t2());
        assert_eq!(renamed.fingerprint(), d0.fingerprint());
    }

    #[test]
    fn scaled_infidelity_perturbs_and_round_trips() {
        let d0 = spin_qubit_model(GateTimes::D0);
        // factor 1 is an exact copy — same fingerprint, same costs.
        assert_eq!(
            d0.with_scaled_infidelity(1.0).fingerprint(),
            d0.fingerprint()
        );
        let worse = d0.with_scaled_infidelity(2.0);
        assert_ne!(worse.fingerprint(), d0.fingerprint());
        for (class, cost) in worse.cost_classes() {
            let orig = d0.cost_classes().find(|(c, _)| *c == class).unwrap().1;
            assert!(cost.fidelity > 0.0 && cost.fidelity <= 1.0);
            assert!(cost.fidelity <= orig.fidelity, "{class:?} got better");
            assert_eq!(cost.duration, orig.duration);
        }
        // Extreme factors stay in-range instead of panicking.
        let floor = d0.with_scaled_infidelity(1e20);
        for (_, cost) in floor.cost_classes() {
            assert!(cost.fidelity > 0.0 && cost.fidelity <= 1.0);
        }
    }

    #[test]
    fn coherence_constants() {
        let hw = spin_qubit_model(GateTimes::D0);
        assert_eq!(hw.t2(), 2900.0);
        assert_eq!(hw.t1(), 2_900_000.0);
    }

    #[test]
    fn try_new_rejects_what_new_panics_on() {
        assert!(GateCost::try_new(0.99, 10.0).is_ok());
        assert!(GateCost::try_new(0.0, 10.0).is_err());
        assert!(GateCost::try_new(1.5, 10.0).is_err());
        assert!(GateCost::try_new(f64::NAN, 10.0).is_err());
        assert!(GateCost::try_new(0.99, -1.0).is_err());

        let mut table = BTreeMap::new();
        table.insert(CostClass::OneQubit, GateCost::new(0.999, 10.0));
        assert!(HardwareModel::try_new("m", table.clone(), 1e6, 1e3).is_ok());
        assert!(HardwareModel::try_new("m", table.clone(), 0.0, 1e3).is_err());
        // A struct-literal entry bypassing GateCost::new is caught.
        table.insert(
            CostClass::Cz,
            GateCost {
                fidelity: 2.0,
                duration: 10.0,
            },
        );
        let err = HardwareModel::try_new("m", table, 1e6, 1e3).unwrap_err();
        assert!(err.contains("Cz"), "{err}");
    }
}
