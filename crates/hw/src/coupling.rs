//! Qubit connectivity: which pairs may host a two-qubit gate.
//!
//! The paper's model (and the rest of the pipeline) assumes all-to-all
//! coupling; real backends are topology-constrained. A [`CouplingMap`] is an
//! undirected graph over physical qubits — two-qubit gates are only
//! executable on its edges, and anything else must be routed there with
//! SWAP insertions priced from the gate table (Table I's `SWAP_d` /
//! `SWAP_c` realizations).
//!
//! Constructors cover the standard families (line, ring, grid, star, full
//! coupling) plus the Starmon-5 star-plus-center layout, and a
//! QASM-adjacent JSON loader accepts externally described devices.

use qca_circuit::hash::Fnv64;
use std::collections::VecDeque;

/// An undirected qubit-connectivity graph.
///
/// Edges are stored normalized (`a < b`), sorted, and deduplicated, so two
/// maps over the same topology compare equal and
/// [`fingerprint`](CouplingMap::fingerprint) identically regardless of the
/// edge order they were built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
    adj: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Creates a map over `num_qubits` qubits with the given undirected
    /// edges. Edge order and orientation are irrelevant; duplicates are
    /// dropped.
    ///
    /// # Errors
    ///
    /// Returns a description of the first self-loop or out-of-range
    /// endpoint.
    pub fn new(
        num_qubits: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<CouplingMap, String> {
        let mut normalized: Vec<(usize, usize)> = Vec::new();
        for (a, b) in edges {
            if a == b {
                return Err(format!("self-loop on qubit {a}"));
            }
            if a >= num_qubits || b >= num_qubits {
                return Err(format!("edge ({a}, {b}) exceeds qubit count {num_qubits}"));
            }
            normalized.push((a.min(b), a.max(b)));
        }
        normalized.sort_unstable();
        normalized.dedup();
        let mut adj = vec![Vec::new(); num_qubits];
        for &(a, b) in &normalized {
            adj[a].push(b);
            adj[b].push(a);
        }
        for neighbors in &mut adj {
            neighbors.sort_unstable();
        }
        Ok(CouplingMap {
            num_qubits,
            edges: normalized,
            adj,
        })
    }

    /// Every pair coupled: the topology today's encoder implicitly assumes.
    pub fn all_to_all(num_qubits: usize) -> CouplingMap {
        let edges = (0..num_qubits).flat_map(|a| ((a + 1)..num_qubits).map(move |b| (a, b)));
        CouplingMap::new(num_qubits, edges).expect("generated edges are valid")
    }

    /// A linear chain `0 — 1 — … — n-1`.
    pub fn line(num_qubits: usize) -> CouplingMap {
        let edges = (1..num_qubits).map(|b| (b - 1, b));
        CouplingMap::new(num_qubits, edges).expect("generated edges are valid")
    }

    /// A cycle: the line plus the closing edge `n-1 — 0` (for `n >= 3`).
    pub fn ring(num_qubits: usize) -> CouplingMap {
        let mut edges: Vec<(usize, usize)> = (1..num_qubits).map(|b| (b - 1, b)).collect();
        if num_qubits >= 3 {
            edges.push((0, num_qubits - 1));
        }
        CouplingMap::new(num_qubits, edges).expect("generated edges are valid")
    }

    /// A `rows × cols` rectangular lattice, qubits numbered row-major.
    pub fn grid(rows: usize, cols: usize) -> CouplingMap {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        CouplingMap::new(rows * cols, edges).expect("generated edges are valid")
    }

    /// A star with qubit 0 at the center: every two-qubit gate must touch
    /// qubit 0.
    pub fn star(num_qubits: usize) -> CouplingMap {
        let edges = (1..num_qubits).map(|b| (0, b));
        CouplingMap::new(num_qubits, edges).expect("generated edges are valid")
    }

    /// The Starmon-5 layout: five qubits in a plus shape with the
    /// fully-connected qubit 2 at the center — every two-qubit gate must
    /// touch qubit 2.
    pub fn starmon5() -> CouplingMap {
        CouplingMap::new(5, [(0, 2), (1, 2), (2, 3), (2, 4)]).expect("generated edges are valid")
    }

    /// Loads a map from a QASM-adjacent JSON document of the shape
    /// `{"num_qubits": 5, "edges": [[0, 2], [1, 2], [2, 3], [2, 4]]}`.
    /// `"coupling_map"` is accepted as an alias for `"edges"` (the Qiskit
    /// spelling); whitespace is free-form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing field, malformed number,
    /// or invalid edge.
    pub fn from_json(text: &str) -> Result<CouplingMap, String> {
        let num_qubits = json_usize_field(text, "num_qubits")
            .ok_or_else(|| "missing or malformed \"num_qubits\" field".to_string())?;
        let ints = json_int_list(text, "edges")
            .or_else(|| json_int_list(text, "coupling_map"))
            .ok_or_else(|| "missing or malformed \"edges\" array".to_string())?;
        if ints.len() % 2 != 0 {
            return Err(format!(
                "edge list holds {} endpoints, expected an even count",
                ints.len()
            ));
        }
        let edges = ints.chunks(2).map(|pair| (pair[0], pair[1]));
        CouplingMap::new(num_qubits, edges)
    }

    /// Serializes the map into the JSON shape [`from_json`](Self::from_json)
    /// accepts.
    pub fn to_json(&self) -> String {
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|(a, b)| format!("[{a}, {b}]"))
            .collect();
        format!(
            "{{\"num_qubits\": {}, \"edges\": [{}]}}",
            self.num_qubits,
            edges.join(", ")
        )
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The normalized edge list (`a < b`, ascending).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of `q`, ascending.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adj[q]
    }

    /// `true` when `a` and `b` share an edge.
    pub fn is_coupled(&self, a: usize, b: usize) -> bool {
        a < self.num_qubits && self.adj[a].binary_search(&b).is_ok()
    }

    /// `true` when every pair of qubits is directly coupled — the topology
    /// under which routing degenerates to nothing.
    pub fn is_all_to_all(&self) -> bool {
        let n = self.num_qubits;
        self.edges.len() == n * n.saturating_sub(1) / 2
    }

    /// `true` when every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        let mut seen = vec![false; self.num_qubits];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(q) = queue.pop_front() {
            for &next in &self.adj[q] {
                if !seen[next] {
                    seen[next] = true;
                    count += 1;
                    queue.push_back(next);
                }
            }
        }
        count == self.num_qubits
    }

    /// BFS hop distance between `a` and `b`; `None` when disconnected or
    /// out of range.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        self.path(a, b).map(|p| p.len() - 1)
    }

    /// A shortest path from `a` to `b` inclusive. Deterministic: BFS
    /// explores neighbors in ascending index order, so ties always resolve
    /// to the smallest-index route. `None` when disconnected or out of
    /// range.
    pub fn path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a >= self.num_qubits || b >= self.num_qubits {
            return None;
        }
        if a == b {
            return Some(vec![a]);
        }
        let mut parent = vec![usize::MAX; self.num_qubits];
        let mut queue = VecDeque::from([a]);
        parent[a] = a;
        while let Some(q) = queue.pop_front() {
            for &next in &self.adj[q] {
                if parent[next] != usize::MAX {
                    continue;
                }
                parent[next] = q;
                if next == b {
                    let mut path = vec![b];
                    let mut cur = b;
                    while cur != a {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// The induced subgraph on qubits `0..num_qubits`: a device larger than
    /// the circuit routes only through qubits the circuit actually owns, so
    /// inserted SWAPs never touch out-of-range wires.
    pub fn restrict(&self, num_qubits: usize) -> CouplingMap {
        if num_qubits >= self.num_qubits {
            return self.clone();
        }
        let edges = self
            .edges
            .iter()
            .copied()
            .filter(|&(a, b)| a < num_qubits && b < num_qubits);
        CouplingMap::new(num_qubits, edges).expect("filtered edges are valid")
    }

    /// Stable 64-bit hash of the topology (qubit count + normalized edge
    /// list), for adaptation cache keys. Isomorphic-but-relabelled maps
    /// fingerprint differently: routing depends on labels.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.num_qubits);
        h.write_usize(self.edges.len());
        for &(a, b) in &self.edges {
            h.write_usize(a);
            h.write_usize(b);
        }
        h.finish()
    }
}

/// Parses the integer value of `"key": <int>` out of `text`.
fn json_usize_field(text: &str, key: &str) -> Option<usize> {
    let rest = after_key(text, key)?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses every integer inside the (possibly nested) array value of
/// `"key": [...]`, in order of appearance.
fn json_int_list(text: &str, key: &str) -> Option<Vec<usize>> {
    let rest = after_key(text, key)?.trim_start();
    if !rest.starts_with('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut ints = Vec::new();
    let mut digits = String::new();
    for c in rest.chars() {
        match c {
            '[' => depth += 1,
            ']' | ',' | ' ' | '\t' | '\n' | '\r' => {
                if !digits.is_empty() {
                    ints.push(digits.parse().ok()?);
                    digits.clear();
                }
                if c == ']' {
                    depth -= 1;
                    if depth == 0 {
                        return Some(ints);
                    }
                }
            }
            d if d.is_ascii_digit() => digits.push(d),
            _ => return None,
        }
    }
    None
}

/// Slice of `text` just past the colon of `"key":`.
fn after_key<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    rest.strip_prefix(':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_edge_counts() {
        assert_eq!(CouplingMap::all_to_all(4).edges().len(), 6);
        assert_eq!(CouplingMap::line(4).edges().len(), 3);
        assert_eq!(CouplingMap::ring(4).edges().len(), 4);
        assert_eq!(CouplingMap::grid(2, 3).edges().len(), 7);
        assert_eq!(CouplingMap::star(5).edges().len(), 4);
        assert_eq!(CouplingMap::starmon5().edges().len(), 4);
    }

    #[test]
    fn edges_normalize_and_dedup() {
        let a = CouplingMap::new(3, [(1, 0), (0, 1), (2, 1)]).unwrap();
        let b = CouplingMap::new(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn invalid_edges_rejected() {
        assert!(CouplingMap::new(3, [(1, 1)]).is_err());
        assert!(CouplingMap::new(3, [(0, 3)]).is_err());
    }

    #[test]
    fn coupling_and_distance_on_a_line() {
        let cm = CouplingMap::line(4);
        assert!(cm.is_coupled(1, 2));
        assert!(!cm.is_coupled(0, 3));
        assert_eq!(cm.distance(0, 3), Some(3));
        assert_eq!(cm.path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(cm.distance(2, 2), Some(0));
    }

    #[test]
    fn path_is_deterministic_smallest_index() {
        // Ring of 4: 1 -> 3 has two length-2 routes (via 0 or via 2);
        // ascending BFS must pick the one through 0.
        let cm = CouplingMap::ring(4);
        assert_eq!(cm.path(1, 3), Some(vec![1, 0, 3]));
    }

    #[test]
    fn starmon5_routes_through_center() {
        let cm = CouplingMap::starmon5();
        assert!(cm.is_coupled(0, 2));
        assert!(!cm.is_coupled(0, 1));
        assert_eq!(cm.path(0, 1), Some(vec![0, 2, 1]));
        assert!(cm.is_connected());
        assert!(!cm.is_all_to_all());
    }

    #[test]
    fn all_to_all_predicate() {
        assert!(CouplingMap::all_to_all(5).is_all_to_all());
        assert!(CouplingMap::all_to_all(1).is_all_to_all());
        assert!(!CouplingMap::line(3).is_all_to_all());
        // Two-qubit line is both a line and fully coupled.
        assert!(CouplingMap::line(2).is_all_to_all());
    }

    #[test]
    fn disconnected_map_detected() {
        let cm = CouplingMap::new(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!cm.is_connected());
        assert_eq!(cm.distance(0, 2), None);
        assert_eq!(cm.path(1, 3), None);
    }

    #[test]
    fn restrict_induces_subgraph() {
        let cm = CouplingMap::starmon5().restrict(3);
        assert_eq!(cm.num_qubits(), 3);
        assert_eq!(cm.edges(), &[(0, 2), (1, 2)]);
        // Restricting to more qubits than the map has is the identity.
        assert_eq!(CouplingMap::line(3).restrict(10), CouplingMap::line(3));
    }

    #[test]
    fn json_round_trip() {
        let cm = CouplingMap::starmon5();
        let parsed = CouplingMap::from_json(&cm.to_json()).unwrap();
        assert_eq!(parsed, cm);
    }

    #[test]
    fn json_accepts_qiskit_spelling_and_whitespace() {
        let text = "{\n  \"num_qubits\": 3,\n  \"coupling_map\": [ [0, 1], [1, 2] ]\n}";
        let cm = CouplingMap::from_json(text).unwrap();
        assert_eq!(cm, CouplingMap::line(3));
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(CouplingMap::from_json("{}").is_err());
        assert!(CouplingMap::from_json("{\"num_qubits\": 3}").is_err());
        assert!(CouplingMap::from_json("{\"num_qubits\": 3, \"edges\": [[0]]}").is_err());
        assert!(CouplingMap::from_json("{\"num_qubits\": 3, \"edges\": [[0, 5]]}").is_err());
        assert!(CouplingMap::from_json("{\"num_qubits\": x, \"edges\": []}").is_err());
    }

    #[test]
    fn fingerprint_separates_topologies() {
        let maps = [
            CouplingMap::line(4),
            CouplingMap::ring(4),
            CouplingMap::star(4),
            CouplingMap::all_to_all(4),
            CouplingMap::line(5),
        ];
        for (i, a) in maps.iter().enumerate() {
            for b in &maps[i + 1..] {
                assert_ne!(a.fingerprint(), b.fingerprint());
            }
        }
    }
}
