//! ASAP circuit scheduling and qubit idle-time accounting.
//!
//! The idle-time metric of the paper (Eq. 9 and Fig. 6): with total circuit
//! duration `D` over `Q` qubits, the aggregate idle time is
//! `Q*D - Σ_g duration(g)·arity-weighted busy time`.

use crate::modality::HardwareModel;
use qca_circuit::Circuit;

/// Why a circuit admits no schedule: the first instruction whose gate has
/// no cost entry in the hardware table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Display name of the unpriced gate.
    pub gate: String,
    /// Operand qubits of the offending instruction.
    pub qubits: Vec<usize>,
    /// Index of the offending instruction in the circuit.
    pub index: usize,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gate {} on qubit(s) {:?} (instruction {}) has no cost entry in the gate table",
            self.gate, self.qubits, self.index
        )
    }
}

impl std::error::Error for ScheduleError {}

/// An as-soon-as-possible schedule of a circuit on a hardware model.
#[derive(Debug, Clone)]
pub struct CircuitSchedule {
    /// Start time (ns) of each instruction, in circuit order.
    pub start: Vec<f64>,
    /// Duration (ns) of each instruction.
    pub duration: Vec<f64>,
    /// Total circuit duration (makespan, ns).
    pub total_duration: f64,
    /// Per-qubit busy time (ns).
    pub busy: Vec<f64>,
    /// Number of qubits.
    pub num_qubits: usize,
}

impl CircuitSchedule {
    /// Schedules `circuit` on `model`, starting each gate as soon as all of
    /// its operands are free.
    ///
    /// Returns `None` if the circuit contains gates the model does not
    /// support. Callers that need to *report* which gate blocked the
    /// schedule should use [`asap_checked`](Self::asap_checked) instead.
    pub fn asap(circuit: &Circuit, model: &HardwareModel) -> Option<CircuitSchedule> {
        Self::asap_checked(circuit, model).ok()
    }

    /// [`asap`](Self::asap), but a failure names the offending gate, its
    /// qubits, and its instruction index instead of collapsing to `None`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError`] for the first instruction whose gate the model
    /// does not price.
    pub fn asap_checked(
        circuit: &Circuit,
        model: &HardwareModel,
    ) -> Result<CircuitSchedule, ScheduleError> {
        let nq = circuit.num_qubits();
        let mut qubit_free = vec![0.0f64; nq];
        let mut busy = vec![0.0f64; nq];
        let mut start = Vec::with_capacity(circuit.len());
        let mut duration = Vec::with_capacity(circuit.len());
        for (index, instr) in circuit.iter().enumerate() {
            let cost = model.cost(&instr.gate).ok_or_else(|| ScheduleError {
                gate: instr.gate.to_string(),
                qubits: instr.qubits.clone(),
                index,
            })?;
            let s = instr
                .qubits
                .iter()
                .map(|&q| qubit_free[q])
                .fold(0.0f64, f64::max);
            for &q in &instr.qubits {
                qubit_free[q] = s + cost.duration;
                busy[q] += cost.duration;
            }
            start.push(s);
            duration.push(cost.duration);
        }
        let total_duration = qubit_free.iter().copied().fold(0.0f64, f64::max);
        Ok(CircuitSchedule {
            start,
            duration,
            total_duration,
            busy,
            num_qubits: nq,
        })
    }

    /// Aggregate qubit idle time: `Q*D - Σ_q busy_q` (ns).
    pub fn total_idle_time(&self) -> f64 {
        self.num_qubits as f64 * self.total_duration - self.busy.iter().sum::<f64>()
    }

    /// Idle time of a single qubit (ns).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit_idle_time(&self, q: usize) -> f64 {
        self.total_duration - self.busy[q]
    }

    /// Per-instruction idle gaps preceding each instruction on each of its
    /// qubits: `(instr_index, qubit, gap_ns)` for every positive gap.
    ///
    /// Useful for simulating thermal relaxation during idling.
    pub fn idle_gaps(&self, circuit: &Circuit) -> Vec<(usize, usize, f64)> {
        let mut qubit_free = vec![0.0f64; self.num_qubits];
        let mut gaps = Vec::new();
        for (i, instr) in circuit.iter().enumerate() {
            let s = self.start[i];
            for &q in &instr.qubits {
                let gap = s - qubit_free[q];
                if gap > 1e-9 {
                    gaps.push((i, q, gap));
                }
                qubit_free[q] = s + self.duration[i];
            }
        }
        // Trailing idles until circuit end.
        for (q, &free) in qubit_free.iter().enumerate() {
            let gap = self.total_duration - free;
            if gap > 1e-9 {
                gaps.push((circuit.len(), q, gap));
            }
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modality::{spin_qubit_model, GateTimes};
    use qca_circuit::Gate;

    fn hw() -> HardwareModel {
        spin_qubit_model(GateTimes::D0)
    }

    #[test]
    fn single_gate_schedule() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cz, &[0, 1]);
        let s = CircuitSchedule::asap(&c, &hw()).unwrap();
        assert_eq!(s.start, vec![0.0]);
        assert_eq!(s.total_duration, 152.0);
        assert_eq!(s.total_idle_time(), 0.0);
    }

    #[test]
    fn parallel_gates_do_not_serialize() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        let s = CircuitSchedule::asap(&c, &hw()).unwrap();
        assert_eq!(s.start, vec![0.0, 0.0]);
        assert_eq!(s.total_duration, 30.0);
        assert_eq!(s.total_idle_time(), 0.0);
    }

    #[test]
    fn dependent_gates_serialize() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cz, &[0, 1]);
        let s = CircuitSchedule::asap(&c, &hw()).unwrap();
        assert_eq!(s.start, vec![0.0, 30.0]);
        assert_eq!(s.total_duration, 182.0);
        // Qubit 1 idles while H runs on qubit 0.
        assert_eq!(s.qubit_idle_time(1), 30.0);
        assert_eq!(s.qubit_idle_time(0), 0.0);
        assert_eq!(s.total_idle_time(), 30.0);
    }

    #[test]
    fn idle_time_matches_eq9_form() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cz, &[0, 1]); // 152
        c.push(Gate::H, &[2]); // 30, then q2 idles
        let s = CircuitSchedule::asap(&c, &hw()).unwrap();
        assert_eq!(s.total_duration, 152.0);
        let manual = 3.0 * 152.0 - (152.0 + 152.0 + 30.0);
        assert_eq!(s.total_idle_time(), manual);
    }

    #[test]
    fn idle_gaps_enumerated() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]); // q1 idle for 30
        c.push(Gate::Cz, &[0, 1]);
        let s = CircuitSchedule::asap(&c, &hw()).unwrap();
        let gaps = s.idle_gaps(&c);
        assert_eq!(gaps, vec![(1, 1, 30.0)]);
    }

    #[test]
    fn trailing_idle_reported() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cz, &[0, 1]);
        c.push(Gate::H, &[0]); // q1 idles for final 30ns
        let s = CircuitSchedule::asap(&c, &hw()).unwrap();
        let gaps = s.idle_gaps(&c);
        assert_eq!(gaps, vec![(2, 1, 30.0)]);
    }

    #[test]
    fn unsupported_gate_returns_none() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        assert!(CircuitSchedule::asap(&c, &hw()).is_none());
    }

    #[test]
    fn asap_checked_names_the_offending_gate() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cz, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]); // not native to spins
        let err = CircuitSchedule::asap_checked(&c, &hw()).unwrap_err();
        assert_eq!(err.qubits, vec![1, 2]);
        assert_eq!(err.index, 2);
        let msg = err.to_string();
        assert!(
            msg.contains("cx") || msg.contains("Cx") || msg.contains("CX"),
            "{msg}"
        );
        assert!(msg.contains("[1, 2]"), "{msg}");
    }

    #[test]
    fn sum_of_gaps_equals_total_idle() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cz, &[0, 1]);
        c.push(Gate::SwapComposite, &[1, 2]);
        c.push(Gate::H, &[0]);
        let s = CircuitSchedule::asap(&c, &hw()).unwrap();
        let gap_sum: f64 = s.idle_gaps(&c).iter().map(|&(_, _, g)| g).sum();
        assert!((gap_sum - s.total_idle_time()).abs() < 1e-9);
    }
}
