//! End-to-end tests for the `qsat` binary's `--proof` flag: write a DIMACS
//! file, solve it through the CLI, and validate the emitted DRAT proof with
//! the independent checker from `qca-verify`.

use std::io::Write;
use std::process::Command;

use qca_sat::dimacs::{parse_dimacs, write_dimacs, Cnf};
use qca_sat::proof::parse_drat;
use qca_sat::Lit;
use qca_verify::check_drat;

fn dimacs_lit(d: i64) -> Lit {
    Lit::from_dimacs(d)
}

/// PHP(4, 3): four pigeons into three holes, UNSAT with real search.
fn pigeonhole() -> Cnf {
    let holes = 3usize;
    let pigeons = holes + 1;
    let var = |i: usize, j: usize| (i * holes + j + 1) as i64;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for i in 0..pigeons {
        clauses.push((0..holes).map(|j| dimacs_lit(var(i, j))).collect());
    }
    for j in 0..holes {
        for i in 0..pigeons {
            for k in i + 1..pigeons {
                clauses.push(vec![dimacs_lit(-var(i, j)), dimacs_lit(-var(k, j))]);
            }
        }
    }
    Cnf {
        num_vars: pigeons * holes,
        clauses,
    }
}

fn write_cnf_file(cnf: &Cnf, path: &std::path::Path) {
    let mut buf = Vec::new();
    write_dimacs(&mut buf, cnf).unwrap();
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(&buf).unwrap();
}

#[test]
fn qsat_proof_roundtrip_unsat() {
    let dir = std::env::temp_dir().join(format!("qsat-proof-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cnf_path = dir.join("php.cnf");
    let proof_path = dir.join("php.drat");
    let cnf = pigeonhole();
    write_cnf_file(&cnf, &cnf_path);

    let out = Command::new(env!("CARGO_BIN_EXE_qsat"))
        .arg("--proof")
        .arg(&proof_path)
        .arg(&cnf_path)
        .output()
        .expect("qsat runs");
    assert_eq!(out.status.code(), Some(20), "PHP must be UNSAT");

    // The DIMACS file round-trips through the same parser the CLI uses.
    let reread = parse_dimacs(std::io::BufReader::new(
        std::fs::File::open(&cnf_path).unwrap(),
    ))
    .unwrap();
    assert_eq!(reread, cnf);

    // The streamed proof parses and refutes the formula.
    let proof = parse_drat(std::io::BufReader::new(
        std::fs::File::open(&proof_path).unwrap(),
    ))
    .unwrap();
    assert!(!proof.is_empty(), "UNSAT run must emit proof steps");
    check_drat(&cnf, &proof).expect("independent checker accepts the CLI proof");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn qsat_proof_on_sat_instance_is_benign() {
    // SAT runs may emit (sound) learnt-clause additions but no refutation;
    // the file must still parse as DRAT.
    let dir = std::env::temp_dir().join(format!("qsat-proof-sat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cnf_path = dir.join("sat.cnf");
    let proof_path = dir.join("sat.drat");
    let cnf = Cnf {
        num_vars: 3,
        clauses: vec![
            vec![dimacs_lit(1), dimacs_lit(2)],
            vec![dimacs_lit(-1), dimacs_lit(3)],
            vec![dimacs_lit(-2), dimacs_lit(-3)],
        ],
    };
    write_cnf_file(&cnf, &cnf_path);

    let out = Command::new(env!("CARGO_BIN_EXE_qsat"))
        .arg("--proof")
        .arg(&proof_path)
        .arg(&cnf_path)
        .output()
        .expect("qsat runs");
    assert_eq!(out.status.code(), Some(10), "instance is SAT");
    let proof = parse_drat(std::io::BufReader::new(
        std::fs::File::open(&proof_path).unwrap(),
    ))
    .unwrap();
    assert!(
        proof.iter().all(|s| !s.lits().is_empty() || s.is_delete()),
        "a SAT run must not emit the empty clause"
    );

    std::fs::remove_dir_all(&dir).ok();
}
