//! `qsat` — a minimal DIMACS CNF solver front end.
//!
//! Usage:
//!
//! ```text
//! qsat [--stats] [--conflicts N] <file.cnf>      # solve a DIMACS file
//! qsat [--stats] [--conflicts N] -               # read DIMACS from stdin
//! ```
//!
//! Prints `s SATISFIABLE` with a `v ...` model line, `s UNSATISFIABLE`, or —
//! when the `--conflicts` cap aborts the solve — `s UNKNOWN`, following the
//! SAT-competition output conventions. With `--stats`, solver statistics
//! (`c`-prefixed comment lines: decisions, propagations, conflicts, restarts,
//! learnt clauses, ...) are printed on *every* verdict, including aborted
//! runs: the numbers are read from the solver's trace event stream (the
//! end-of-solve `sat.*` gauges), the same path the adaptation pipeline uses,
//! rather than by poking at solver internals. Exit code 10 for SAT, 20 for
//! UNSAT, 0 for UNKNOWN, 1 on input errors.

use qca_sat::dimacs::parse_dimacs;
use qca_sat::{SolveControl, SolveOutcome, Var};
use qca_trace::{report, MemorySink, Tracer};
use std::process::ExitCode;
use std::sync::Arc;

/// Print the `sat.*` statistics gauges recorded in `events` as
/// SAT-competition comment lines.
fn print_stats(events: &[qca_trace::TraceEvent]) {
    let gauges = report::last_gauges(events);
    let get = |name: &str| gauges.get(name).copied().unwrap_or(0);
    println!("c decisions        {}", get("sat.decisions"));
    println!("c propagations     {}", get("sat.propagations"));
    println!("c conflicts        {}", get("sat.conflicts"));
    println!("c restarts         {}", get("sat.restarts"));
    println!("c learnt clauses   {}", get("sat.learnt_clauses"));
    println!("c deleted clauses  {}", get("sat.deleted_clauses"));
    println!("c minimized lits   {}", get("sat.minimized_literals"));
}

fn usage() -> ExitCode {
    eprintln!("usage: qsat [--stats] [--conflicts N] <file.cnf | ->");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut stats = false;
    let mut conflict_cap: Option<u64> = None;
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => stats = true,
            "--conflicts" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                conflict_cap = Some(n);
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(input) = input else {
        return usage();
    };
    let cnf = if input == "-" {
        let stdin = std::io::stdin();
        parse_dimacs(stdin.lock())
    } else {
        match std::fs::File::open(&input) {
            Ok(f) => parse_dimacs(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("c cannot open {input}: {e}");
                return ExitCode::from(1);
            }
        }
    };
    let cnf = match cnf {
        Ok(c) => c,
        Err(e) => {
            eprintln!("c parse error: {e}");
            return ExitCode::from(1);
        }
    };
    let num_vars = cnf.num_vars;
    let mut solver = cnf.into_solver();
    let sink = Arc::new(MemorySink::new());
    solver.set_control(SolveControl {
        conflict_cap,
        stop: None,
        tracer: Tracer::new(sink.clone()),
    });
    match solver.solve_limited(&[]) {
        SolveOutcome::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..num_vars {
                let v = Var::from_index(i);
                let val = solver.value(v).unwrap_or(false);
                line.push_str(&format!(
                    " {}",
                    if val {
                        (i + 1) as i64
                    } else {
                        -((i + 1) as i64)
                    }
                ));
                if line.len() > 70 {
                    println!("{line}");
                    line = String::from("v");
                }
            }
            println!("{line} 0");
            if stats {
                print_stats(&sink.events());
            }
            ExitCode::from(10)
        }
        SolveOutcome::Unsat => {
            println!("s UNSATISFIABLE");
            if stats {
                print_stats(&sink.events());
            }
            ExitCode::from(20)
        }
        SolveOutcome::Unknown => {
            println!("s UNKNOWN");
            if stats {
                print_stats(&sink.events());
            }
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    // The binary logic is covered by `qca_sat::dimacs` unit tests; this
    // module exists so `cargo test` compiles the binary.
    #[test]
    fn smoke() {}
}
