//! `qsat` — a minimal DIMACS CNF solver front end.
//!
//! Usage:
//!
//! ```text
//! qsat <file.cnf>      # solve a DIMACS file
//! qsat -               # read DIMACS from stdin
//! ```
//!
//! Prints `s SATISFIABLE` with a `v ...` model line, or `s UNSATISFIABLE`,
//! following the SAT-competition output conventions. Exit code 10 for SAT,
//! 20 for UNSAT, 1 on input errors.

use qca_sat::dimacs::parse_dimacs;
use qca_sat::Var;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 2 {
        eprintln!("usage: qsat <file.cnf | ->");
        return ExitCode::from(1);
    }
    let cnf = if args[1] == "-" {
        let stdin = std::io::stdin();
        parse_dimacs(stdin.lock())
    } else {
        match std::fs::File::open(&args[1]) {
            Ok(f) => parse_dimacs(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("c cannot open {}: {e}", args[1]);
                return ExitCode::from(1);
            }
        }
    };
    let cnf = match cnf {
        Ok(c) => c,
        Err(e) => {
            eprintln!("c parse error: {e}");
            return ExitCode::from(1);
        }
    };
    let num_vars = cnf.num_vars;
    let mut solver = cnf.into_solver();
    if solver.solve() {
        println!("s SATISFIABLE");
        let mut line = String::from("v");
        for i in 0..num_vars {
            let v = Var::from_index(i);
            let val = solver.value(v).unwrap_or(false);
            line.push_str(&format!(" {}", if val { (i + 1) as i64 } else { -((i + 1) as i64) }));
            if line.len() > 70 {
                println!("{line}");
                line = String::from("v");
            }
        }
        println!("{line} 0");
        let st = solver.stats();
        println!(
            "c decisions {} conflicts {} propagations {} restarts {}",
            st.decisions, st.conflicts, st.propagations, st.restarts
        );
        ExitCode::from(10)
    } else {
        println!("s UNSATISFIABLE");
        ExitCode::from(20)
    }
}

#[cfg(test)]
mod tests {
    // The binary logic is covered by `qca_sat::dimacs` unit tests; this
    // module exists so `cargo test` compiles the binary.
    #[test]
    fn smoke() {}
}
