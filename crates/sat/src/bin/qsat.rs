//! `qsat` — a minimal DIMACS CNF solver front end.
//!
//! Usage:
//!
//! ```text
//! qsat [--stats] [--conflicts N] [--proof FILE] [--config SPEC] <file.cnf>
//! qsat [--stats] [--conflicts N] [--proof FILE] [--config SPEC] -   # stdin
//! ```
//!
//! `--config` takes a `key=value,...` spec mapping 1:1 onto
//! [`SolverConfig`] — e.g. `--config decay=0.95,restart=luby` or
//! `--config restart=geometric:128:1.3,phase=random,seed=7` — so a racing
//! portfolio's member presets are reproducible from the CLI.
//!
//! Prints `s SATISFIABLE` with a `v ...` model line, `s UNSATISFIABLE`, or —
//! when the `--conflicts` cap aborts the solve — `s UNKNOWN`, following the
//! SAT-competition output conventions. With `--stats`, solver statistics
//! (`c`-prefixed comment lines: decisions, propagations, conflicts, restarts,
//! learnt clauses, ...) are printed on *every* verdict, including aborted
//! runs: the numbers are read from the solver's trace event stream (the
//! end-of-solve `sat.*` gauges), the same path the adaptation pipeline uses,
//! rather than by poking at solver internals. With `--proof FILE`, a DRAT
//! proof is streamed to FILE during the solve; on an UNSAT verdict it is a
//! complete refutation checkable with `qca-drat-check` (or drat-trim). Exit
//! code 10 for SAT, 20 for UNSAT, 0 for UNKNOWN, 1 on input errors.

use qca_sat::dimacs::parse_dimacs;
use qca_sat::{FileProof, SolveControl, SolveOutcome, Solver, SolverConfig, Var};
use qca_trace::{report, MemorySink, Tracer};
use std::process::ExitCode;
use std::sync::Arc;

/// Print the `sat.*` statistics gauges recorded in `events` as
/// SAT-competition comment lines.
fn print_stats(events: &[qca_trace::TraceEvent]) {
    let gauges = report::last_gauges(events);
    let get = |name: &str| gauges.get(name).copied().unwrap_or(0);
    println!("c decisions        {}", get("sat.decisions"));
    println!("c propagations     {}", get("sat.propagations"));
    println!("c conflicts        {}", get("sat.conflicts"));
    println!("c restarts         {}", get("sat.restarts"));
    println!("c learnt clauses   {}", get("sat.learnt_clauses"));
    println!("c deleted clauses  {}", get("sat.deleted_clauses"));
    println!("c minimized lits   {}", get("sat.minimized_literals"));
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qsat [--stats] [--conflicts N] [--proof FILE] [--config SPEC] <file.cnf | ->"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut stats = false;
    let mut conflict_cap: Option<u64> = None;
    let mut proof_path: Option<String> = None;
    let mut config = SolverConfig::default();
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => stats = true,
            "--conflicts" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                conflict_cap = Some(n);
            }
            "--proof" => {
                let Some(path) = args.next() else {
                    return usage();
                };
                proof_path = Some(path);
            }
            "--config" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                config = match SolverConfig::parse(&spec) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("c bad --config: {e}");
                        return ExitCode::from(1);
                    }
                };
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(input) = input else {
        return usage();
    };
    let cnf = if input == "-" {
        let stdin = std::io::stdin();
        parse_dimacs(stdin.lock())
    } else {
        match std::fs::File::open(&input) {
            Ok(f) => parse_dimacs(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("c cannot open {input}: {e}");
                return ExitCode::from(1);
            }
        }
    };
    let cnf = match cnf {
        Ok(c) => c,
        Err(e) => {
            eprintln!("c parse error: {e}");
            return ExitCode::from(1);
        }
    };
    let num_vars = cnf.num_vars;
    // The proof sink must be installed *before* clauses are loaded so that
    // input simplification (and input-level conflicts) are logged too.
    let mut solver = Solver::with_config(config);
    if let Some(path) = &proof_path {
        match FileProof::create(std::path::Path::new(path)) {
            Ok(p) => solver.set_proof(Box::new(p)),
            Err(e) => {
                eprintln!("c cannot create proof file {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    while solver.num_vars() < num_vars {
        solver.new_var();
    }
    for clause in &cnf.clauses {
        if !solver.add_clause(clause) {
            break;
        }
    }
    let sink = Arc::new(MemorySink::new());
    solver.set_control(SolveControl {
        conflict_cap,
        stop: None,
        tracer: Tracer::new(sink.clone()),
    });
    let outcome = solver.solve_limited(&[]);
    if proof_path.is_some() {
        if let Err(e) = solver.flush_proof() {
            eprintln!("c proof write failed: {e}");
            return ExitCode::from(1);
        }
    }
    match outcome {
        SolveOutcome::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..num_vars {
                let v = Var::from_index(i);
                let val = solver.value(v).unwrap_or(false);
                line.push_str(&format!(
                    " {}",
                    if val {
                        (i + 1) as i64
                    } else {
                        -((i + 1) as i64)
                    }
                ));
                if line.len() > 70 {
                    println!("{line}");
                    line = String::from("v");
                }
            }
            println!("{line} 0");
            if stats {
                print_stats(&sink.events());
            }
            ExitCode::from(10)
        }
        SolveOutcome::Unsat => {
            println!("s UNSATISFIABLE");
            if stats {
                print_stats(&sink.events());
            }
            ExitCode::from(20)
        }
        SolveOutcome::Unknown => {
            println!("s UNKNOWN");
            if stats {
                print_stats(&sink.events());
            }
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    // The binary logic is covered by `qca_sat::dimacs` unit tests; this
    // module exists so `cargo test` compiles the binary.
    #[test]
    fn smoke() {}
}
