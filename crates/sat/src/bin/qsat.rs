//! `qsat` — a minimal DIMACS CNF solver front end.
//!
//! Usage:
//!
//! ```text
//! qsat [--stats] <file.cnf>      # solve a DIMACS file
//! qsat [--stats] -               # read DIMACS from stdin
//! ```
//!
//! Prints `s SATISFIABLE` with a `v ...` model line, or `s UNSATISFIABLE`,
//! following the SAT-competition output conventions. With `--stats`, solver
//! statistics (`c`-prefixed comment lines: decisions, propagations,
//! conflicts, restarts, learnt clauses, ...) are printed on both verdicts.
//! Exit code 10 for SAT, 20 for UNSAT, 1 on input errors.

use qca_sat::dimacs::parse_dimacs;
use qca_sat::{SolverStats, Var};
use std::process::ExitCode;

fn print_stats(st: &SolverStats) {
    println!("c decisions        {}", st.decisions);
    println!("c propagations     {}", st.propagations);
    println!("c conflicts        {}", st.conflicts);
    println!("c restarts         {}", st.restarts);
    println!("c learnt clauses   {}", st.learnt_clauses);
    println!("c deleted clauses  {}", st.deleted_clauses);
    println!("c minimized lits   {}", st.minimized_literals);
}

fn main() -> ExitCode {
    let mut stats = false;
    let mut input: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--stats" => stats = true,
            other => {
                if input.replace(other.to_string()).is_some() {
                    eprintln!("usage: qsat [--stats] <file.cnf | ->");
                    return ExitCode::from(1);
                }
            }
        }
    }
    let Some(input) = input else {
        eprintln!("usage: qsat [--stats] <file.cnf | ->");
        return ExitCode::from(1);
    };
    let cnf = if input == "-" {
        let stdin = std::io::stdin();
        parse_dimacs(stdin.lock())
    } else {
        match std::fs::File::open(&input) {
            Ok(f) => parse_dimacs(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("c cannot open {input}: {e}");
                return ExitCode::from(1);
            }
        }
    };
    let cnf = match cnf {
        Ok(c) => c,
        Err(e) => {
            eprintln!("c parse error: {e}");
            return ExitCode::from(1);
        }
    };
    let num_vars = cnf.num_vars;
    let mut solver = cnf.into_solver();
    if solver.solve() {
        println!("s SATISFIABLE");
        let mut line = String::from("v");
        for i in 0..num_vars {
            let v = Var::from_index(i);
            let val = solver.value(v).unwrap_or(false);
            line.push_str(&format!(
                " {}",
                if val {
                    (i + 1) as i64
                } else {
                    -((i + 1) as i64)
                }
            ));
            if line.len() > 70 {
                println!("{line}");
                line = String::from("v");
            }
        }
        println!("{line} 0");
        if stats {
            print_stats(solver.stats());
        }
        ExitCode::from(10)
    } else {
        println!("s UNSATISFIABLE");
        if stats {
            print_stats(solver.stats());
        }
        ExitCode::from(20)
    }
}

#[cfg(test)]
mod tests {
    // The binary logic is covered by `qca_sat::dimacs` unit tests; this
    // module exists so `cargo test` compiles the binary.
    #[test]
    fn smoke() {}
}
