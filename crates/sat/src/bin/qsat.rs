//! `qsat` — a minimal DIMACS CNF solver front end.
//!
//! Usage:
//!
//! ```text
//! qsat [--stats] [--conflicts N] [--proof FILE] [--config SPEC] [--preprocess] <file.cnf>
//! qsat [--stats] [--conflicts N] [--proof FILE] [--config SPEC] [--preprocess] -   # stdin
//! ```
//!
//! `--preprocess` (or `--config preprocess=true`) runs the proof-logging
//! static preprocessor (`qca_sat::analyze`) before search: the solver then
//! races the simplified formula, SAT models are extended back to the
//! original variables before the `v` lines are printed, and with `--proof`
//! the preprocessor's derivations prefix the solver's DRAT stream so the
//! combined proof still checks against the ORIGINAL formula.
//!
//! `--config` takes a `key=value,...` spec mapping 1:1 onto
//! [`SolverConfig`] — e.g. `--config decay=0.95,restart=luby` or
//! `--config restart=geometric:128:1.3,phase=random,seed=7` — so a racing
//! portfolio's member presets are reproducible from the CLI.
//!
//! Prints `s SATISFIABLE` with a `v ...` model line, `s UNSATISFIABLE`, or —
//! when the `--conflicts` cap aborts the solve — `s UNKNOWN`, following the
//! SAT-competition output conventions. With `--stats`, solver statistics
//! (`c`-prefixed comment lines: decisions, propagations, conflicts, restarts,
//! learnt clauses, ...) are printed on *every* verdict, including aborted
//! runs: the numbers are read from the solver's trace event stream (the
//! end-of-solve `sat.*` gauges), the same path the adaptation pipeline uses,
//! rather than by poking at solver internals. With `--proof FILE`, a DRAT
//! proof is streamed to FILE during the solve; on an UNSAT verdict it is a
//! complete refutation checkable with `qca-drat-check` (or drat-trim). Exit
//! code 10 for SAT, 20 for UNSAT, 0 for UNKNOWN, 1 on input errors.

use qca_sat::analyze::{preprocess, PreprocessOptions, PreprocessStats, Reconstruction};
use qca_sat::dimacs::parse_dimacs;
use qca_sat::proof::ProofSink;
use qca_sat::{FileProof, SolveControl, SolveOutcome, Solver, SolverConfig, Var};
use qca_trace::{report, MemorySink, Tracer};
use std::process::ExitCode;
use std::sync::Arc;

/// Print the `sat.*` statistics gauges recorded in `events` as
/// SAT-competition comment lines.
fn print_stats(events: &[qca_trace::TraceEvent]) {
    let gauges = report::last_gauges(events);
    let get = |name: &str| gauges.get(name).copied().unwrap_or(0);
    println!("c decisions        {}", get("sat.decisions"));
    println!("c propagations     {}", get("sat.propagations"));
    println!("c conflicts        {}", get("sat.conflicts"));
    println!("c restarts         {}", get("sat.restarts"));
    println!("c learnt clauses   {}", get("sat.learnt_clauses"));
    println!("c deleted clauses  {}", get("sat.deleted_clauses"));
    println!("c minimized lits   {}", get("sat.minimized_literals"));
}

/// Print the preprocessor's counters as comment lines.
fn print_pre_stats(stats: &PreprocessStats) {
    println!("c pre units        {}", stats.units);
    println!("c pre pures        {}", stats.pures);
    println!("c pre subsumed     {}", stats.subsumed);
    println!("c pre strengthened {}", stats.strengthened);
    println!("c pre eliminated   {}", stats.eliminated);
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qsat [--stats] [--conflicts N] [--proof FILE] [--config SPEC] [--preprocess] \
         <file.cnf | ->"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut stats = false;
    let mut conflict_cap: Option<u64> = None;
    let mut proof_path: Option<String> = None;
    let mut run_preprocess = false;
    let mut config = SolverConfig::default();
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => stats = true,
            "--preprocess" => run_preprocess = true,
            "--conflicts" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                conflict_cap = Some(n);
            }
            "--proof" => {
                let Some(path) = args.next() else {
                    return usage();
                };
                proof_path = Some(path);
            }
            "--config" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                config = match SolverConfig::parse(&spec) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("c bad --config: {e}");
                        return ExitCode::from(1);
                    }
                };
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(input) = input else {
        return usage();
    };
    let cnf = if input == "-" {
        let stdin = std::io::stdin();
        parse_dimacs(stdin.lock())
    } else {
        match std::fs::File::open(&input) {
            Ok(f) => parse_dimacs(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("c cannot open {input}: {e}");
                return ExitCode::from(1);
            }
        }
    };
    let cnf = match cnf {
        Ok(c) => c,
        Err(e) => {
            eprintln!("c parse error: {e}");
            return ExitCode::from(1);
        }
    };
    let num_vars = cnf.num_vars;
    let run_preprocess = run_preprocess || config.preprocess;
    // The proof sink is created *before* anything consumes clauses so that
    // both the preprocessor's derivations and the solver's input
    // simplification are logged into one stream.
    let mut proof_sink: Option<FileProof> = None;
    if let Some(path) = &proof_path {
        match FileProof::create(std::path::Path::new(path)) {
            Ok(p) => proof_sink = Some(p),
            Err(e) => {
                eprintln!("c cannot create proof file {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let mut reconstruction: Option<Reconstruction> = None;
    let mut pre_stats: Option<PreprocessStats> = None;
    let cnf = if run_preprocess {
        let result = preprocess(
            &cnf,
            &PreprocessOptions::default(),
            proof_sink.as_mut().map(|s| s as &mut dyn ProofSink),
        );
        reconstruction = Some(result.reconstruction);
        pre_stats = Some(result.stats);
        result.cnf
    } else {
        cnf
    };
    let mut solver = Solver::with_config(config);
    if let Some(sink) = proof_sink {
        solver.set_proof(Box::new(sink));
    }
    while solver.num_vars() < num_vars {
        solver.new_var();
    }
    for clause in &cnf.clauses {
        if !solver.add_clause(clause) {
            break;
        }
    }
    let sink = Arc::new(MemorySink::new());
    solver.set_control(SolveControl {
        conflict_cap,
        stop: None,
        tracer: Tracer::new(sink.clone()),
    });
    let outcome = solver.solve_limited(&[]);
    if proof_path.is_some() {
        if let Err(e) = solver.flush_proof() {
            eprintln!("c proof write failed: {e}");
            return ExitCode::from(1);
        }
    }
    match outcome {
        SolveOutcome::Sat => {
            println!("s SATISFIABLE");
            // With preprocessing on, eliminated variables are extended
            // back to a model of the ORIGINAL formula before printing.
            let mut model: Vec<Option<bool>> = (0..num_vars)
                .map(|i| solver.value(Var::from_index(i)))
                .collect();
            if let Some(recon) = &reconstruction {
                recon.extend(&mut model);
            }
            let mut line = String::from("v");
            for (i, val) in model.iter().enumerate() {
                let val = val.unwrap_or(false);
                line.push_str(&format!(
                    " {}",
                    if val {
                        (i + 1) as i64
                    } else {
                        -((i + 1) as i64)
                    }
                ));
                if line.len() > 70 {
                    println!("{line}");
                    line = String::from("v");
                }
            }
            println!("{line} 0");
            if stats {
                print_stats(&sink.events());
                if let Some(pre) = &pre_stats {
                    print_pre_stats(pre);
                }
            }
            ExitCode::from(10)
        }
        SolveOutcome::Unsat => {
            println!("s UNSATISFIABLE");
            if stats {
                print_stats(&sink.events());
                if let Some(pre) = &pre_stats {
                    print_pre_stats(pre);
                }
            }
            ExitCode::from(20)
        }
        SolveOutcome::Unknown => {
            println!("s UNKNOWN");
            if stats {
                print_stats(&sink.events());
                if let Some(pre) = &pre_stats {
                    print_pre_stats(pre);
                }
            }
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    // The binary logic is covered by `qca_sat::dimacs` unit tests; this
    // module exists so `cargo test` compiles the binary.
    #[test]
    fn smoke() {}
}
