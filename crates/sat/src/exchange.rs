//! Learnt-clause exchange between portfolio members.
//!
//! A [`ClauseExchange`] is a bounded ring of slots shared by the members of
//! a racing portfolio. Exporters publish *short* learnt clauses (length and
//! LBD capped) with a `try_lock` — a contended slot simply drops the clause,
//! so no solver ever blocks on sharing. Importers scan the ring at restarts
//! and pull every clause newer than their cursor that passes their
//! [`ImportFilter`] and was published by a *different* member.
//!
//! Soundness: every published clause is a learnt clause of some member, i.e.
//! a logical consequence of the shared formula (all members solve clause-for
//! -clause identical CNFs — see [`Solver::export_formula`]), so importing it
//! can never change the SAT/UNSAT answer or exclude a model.
//!
//! [`Solver::export_formula`]: crate::Solver::export_formula

use crate::lit::Lit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-member admission caps for imported (and exported) clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportFilter {
    /// Maximum literal count of an admitted clause.
    pub max_len: usize,
    /// Maximum LBD (number of distinct decision levels at learning time)
    /// of an admitted clause. Units are always admitted (LBD 0).
    pub max_lbd: u32,
}

impl Default for ImportFilter {
    fn default() -> Self {
        ImportFilter {
            max_len: 8,
            max_lbd: 4,
        }
    }
}

impl ImportFilter {
    /// `true` when a clause with this length/LBD passes the caps.
    pub fn admits(&self, len: usize, lbd: u32) -> bool {
        len <= self.max_len && lbd <= self.max_lbd
    }
}

#[derive(Debug, Default)]
struct Slot {
    /// Publication sequence number (0 = empty).
    seq: u64,
    /// Member that published the clause.
    source: usize,
    lbd: u32,
    lits: Vec<Lit>,
}

/// Bounded lock-light shared clause buffer; see the module docs.
#[derive(Debug)]
pub struct ClauseExchange {
    slots: Vec<Mutex<Slot>>,
    head: AtomicU64,
}

impl ClauseExchange {
    /// Creates an exchange with `capacity` slots (minimum 1).
    pub fn new(capacity: usize) -> Arc<ClauseExchange> {
        let capacity = capacity.max(1);
        Arc::new(ClauseExchange {
            slots: (0..capacity).map(|_| Mutex::new(Slot::default())).collect(),
            head: AtomicU64::new(0),
        })
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total clauses ever published (publications that lost their slot's
    /// `try_lock` still count — the sequence number was consumed).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes a clause from `source`. Returns `false` if the slot was
    /// contended and the clause dropped (never blocks).
    pub fn publish(&self, source: usize, lits: &[Lit], lbd: u32) -> bool {
        let seq = self.head.fetch_add(1, Ordering::Relaxed) + 1;
        let idx = (seq % self.slots.len() as u64) as usize;
        match self.slots[idx].try_lock() {
            Ok(mut slot) => {
                slot.seq = seq;
                slot.source = source;
                slot.lbd = lbd;
                slot.lits.clear();
                slot.lits.extend_from_slice(lits);
                true
            }
            Err(_) => false,
        }
    }

    /// Collects every clause published after `*cursor` that passes `filter`
    /// and was not published by `member`, appending to `out`; advances
    /// `*cursor` to the current head. Overwritten slots (ring wrapped) are
    /// silently skipped — the buffer is bounded by design.
    pub fn collect(
        &self,
        member: usize,
        cursor: &mut u64,
        filter: &ImportFilter,
        out: &mut Vec<Vec<Lit>>,
    ) {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let start = (*cursor + 1).max(head.saturating_sub(cap) + 1);
        for seq in start..=head {
            let idx = (seq % cap) as usize;
            let Ok(slot) = self.slots[idx].try_lock() else {
                continue;
            };
            // The slot may have been overwritten by a newer publication (or
            // not written at all if the publisher lost the try_lock): only a
            // matching sequence number is this clause.
            if slot.seq == seq && slot.source != member && filter.admits(slot.lits.len(), slot.lbd)
            {
                out.push(slot.lits.clone());
            }
        }
        *cursor = head;
    }
}

/// One member's connection to a [`ClauseExchange`]: identity, caps, cursor,
/// and export/import accounting. Installed on a solver with
/// [`Solver::set_exchange`](crate::Solver::set_exchange).
#[derive(Debug)]
pub struct ExchangeHandle {
    shared: Arc<ClauseExchange>,
    member: usize,
    filter: ImportFilter,
    cursor: u64,
    exported: u64,
    imported: u64,
    imported_log: Vec<Vec<Lit>>,
}

impl ExchangeHandle {
    /// Connects `member` to `shared` with the given admission caps (the
    /// same caps gate both export and import on this member's side).
    pub fn new(shared: Arc<ClauseExchange>, member: usize, filter: ImportFilter) -> Self {
        ExchangeHandle {
            shared,
            member,
            filter,
            cursor: 0,
            exported: 0,
            imported: 0,
            imported_log: Vec::new(),
        }
    }

    /// The member index this handle publishes as.
    pub fn member(&self) -> usize {
        self.member
    }

    /// Clauses this member exported so far.
    pub fn exported(&self) -> u64 {
        self.exported
    }

    /// Clauses this member imported so far.
    pub fn imported(&self) -> u64 {
        self.imported
    }

    /// Every clause imported through this handle, in import order — the
    /// audit trail for the import-soundness regression tests.
    pub fn imported_clauses(&self) -> &[Vec<Lit>] {
        &self.imported_log
    }

    /// Offers a freshly learnt clause for export; published only when it
    /// passes the caps.
    pub(crate) fn offer(&mut self, lits: &[Lit], lbd: u32) {
        if self.filter.admits(lits.len(), lbd) && self.shared.publish(self.member, lits, lbd) {
            self.exported += 1;
        }
    }

    /// Pulls all admissible foreign clauses newer than the cursor.
    pub(crate) fn pull(&mut self, out: &mut Vec<Vec<Lit>>) {
        let before = out.len();
        self.shared
            .collect(self.member, &mut self.cursor, &self.filter, out);
        let n = out.len() - before;
        self.imported += n as u64;
        self.imported_log.extend_from_slice(&out[before..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(codes: &[usize]) -> Vec<Lit> {
        codes
            .iter()
            .map(|&i| Var::from_index(i).positive())
            .collect()
    }

    #[test]
    fn publish_and_collect_skips_own_clauses() {
        let ex = ClauseExchange::new(8);
        assert!(ex.publish(0, &lits(&[1, 2]), 2));
        assert!(ex.publish(1, &lits(&[3, 4]), 2));
        let mut h0 = ExchangeHandle::new(ex.clone(), 0, ImportFilter::default());
        let mut out = Vec::new();
        h0.pull(&mut out);
        assert_eq!(out, vec![lits(&[3, 4])]);
        assert_eq!(h0.imported(), 1);
        // A second pull with nothing new is empty.
        out.clear();
        h0.pull(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn filter_caps_length_and_lbd() {
        let f = ImportFilter {
            max_len: 3,
            max_lbd: 2,
        };
        let ex = ClauseExchange::new(8);
        ex.publish(0, &lits(&[1, 2, 3, 4]), 1); // too long
        ex.publish(0, &lits(&[1, 2]), 5); // lbd too high
        ex.publish(0, &lits(&[1, 2]), 2); // admitted
        let mut h = ExchangeHandle::new(ex, 1, f);
        let mut out = Vec::new();
        h.pull(&mut out);
        assert_eq!(out, vec![lits(&[1, 2])]);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let ex = ClauseExchange::new(4);
        for i in 0..10 {
            ex.publish(0, &lits(&[i]), 1);
        }
        assert_eq!(ex.published(), 10);
        let mut h = ExchangeHandle::new(ex, 1, ImportFilter::default());
        let mut out = Vec::new();
        h.pull(&mut out);
        // Only the last `capacity` publications survive.
        assert_eq!(out.len(), 4);
        assert_eq!(out, vec![lits(&[6]), lits(&[7]), lits(&[8]), lits(&[9])]);
    }

    #[test]
    fn export_side_caps_apply_in_offer() {
        let ex = ClauseExchange::new(8);
        let mut h = ExchangeHandle::new(
            ex.clone(),
            0,
            ImportFilter {
                max_len: 2,
                max_lbd: 2,
            },
        );
        h.offer(&lits(&[1, 2, 3]), 1); // too long: not published
        h.offer(&lits(&[1, 2]), 1); // published
        assert_eq!(h.exported(), 1);
        assert_eq!(ex.published(), 1);
    }

    #[test]
    fn default_caps_admit_at_exact_boundary() {
        // The caps are inclusive: len == max_len and lbd == max_lbd pass,
        // one past either cap is rejected.
        let f = ImportFilter::default();
        let ex = ClauseExchange::new(8);
        let at_len: Vec<usize> = (0..f.max_len).collect();
        let over_len: Vec<usize> = (0..f.max_len + 1).collect();
        assert!(ex.publish(0, &lits(&at_len), f.max_lbd));
        assert!(ex.publish(0, &lits(&over_len), f.max_lbd)); // publish doesn't filter...
        assert!(ex.publish(0, &lits(&[1]), f.max_lbd + 1));
        let mut h = ExchangeHandle::new(ex.clone(), 1, f);
        let mut out = Vec::new();
        h.pull(&mut out);
        // ...but import does: only the exactly-at-cap clause arrives.
        assert_eq!(out, vec![lits(&at_len)]);
        // The export side rejects past-cap offers before publishing.
        let mut h0 = ExchangeHandle::new(ex.clone(), 0, f);
        h0.offer(&lits(&at_len), f.max_lbd);
        h0.offer(&lits(&over_len), f.max_lbd);
        h0.offer(&lits(&at_len), f.max_lbd + 1);
        assert_eq!(h0.exported(), 1);
    }

    #[test]
    fn stale_cursor_survives_ring_wraparound() {
        let ex = ClauseExchange::new(4);
        let mut h = ExchangeHandle::new(ex.clone(), 1, ImportFilter::default());
        ex.publish(0, &lits(&[0]), 1);
        let mut out = Vec::new();
        h.pull(&mut out); // cursor = 1
        assert_eq!(out.len(), 1);
        // The ring wraps several times past the cursor; the next pull must
        // recover exactly the surviving window, never duplicate, and leave
        // the cursor caught up.
        for i in 1..=11 {
            ex.publish(0, &lits(&[i]), 1);
        }
        out.clear();
        h.pull(&mut out);
        assert_eq!(out, vec![lits(&[8]), lits(&[9]), lits(&[10]), lits(&[11])]);
        out.clear();
        h.pull(&mut out);
        assert!(out.is_empty(), "cursor not caught up after wraparound");
    }

    #[test]
    fn contended_single_slot_ring_never_yields_garbage() {
        // Two publishers hammer a one-slot ring while a reader pulls: lost
        // try_locks drop clauses (that's the design), but every clause the
        // reader does import must be one that was actually published.
        let ex = ClauseExchange::new(1);
        let collected = std::thread::scope(|scope| {
            for m in 0..2 {
                let ex = ex.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        ex.publish(m, &lits(&[m * 1000 + i]), 1);
                    }
                });
            }
            let ex = ex.clone();
            scope
                .spawn(move || {
                    let mut h = ExchangeHandle::new(ex, 2, ImportFilter::default());
                    let mut out = Vec::new();
                    for _ in 0..200 {
                        h.pull(&mut out);
                    }
                    out
                })
                .join()
                .unwrap()
        });
        assert_eq!(ex.published(), 1000);
        for c in &collected {
            assert_eq!(c.len(), 1, "torn clause imported: {c:?}");
            let idx = c[0].var().index();
            assert!(
                idx % 1000 < 500,
                "imported a clause nobody published: {c:?}"
            );
        }
    }

    #[test]
    fn concurrent_publish_collect_is_safe() {
        let ex = ClauseExchange::new(16);
        std::thread::scope(|scope| {
            for m in 0..4 {
                let ex = ex.clone();
                scope.spawn(move || {
                    let mut h = ExchangeHandle::new(ex, m, ImportFilter::default());
                    let mut out = Vec::new();
                    for i in 0..200 {
                        h.offer(&lits(&[m * 1000 + i]), 1);
                        if i % 16 == 0 {
                            out.clear();
                            h.pull(&mut out);
                        }
                    }
                });
            }
        });
        assert_eq!(ex.published(), 800);
    }
}
