//! Solver configuration: one validating builder for every tunable knob.
//!
//! [`SolverConfig`] replaces the former scattered mutators
//! (`set_conflict_cap`, `set_stop_flag`, `set_conflict_budget`,
//! `set_control` + per-call tweaking) with a single value describing how a
//! [`Solver`] searches: VSIDS decay, restart schedule, phase
//! policy, random seed, per-call conflict budget, and the caller-side run
//! controls ([`SolveControl`]). A config is `Clone`, so a *portfolio* of
//! diverse solvers is just a `Vec<SolverConfig>`; parsing the same knobs
//! from a `decay=0.95,restart=luby` string keeps CLI presets reproducible.

use crate::proof::ProofSink;
use crate::solver::{SolveControl, Solver};
use qca_trace::Tracer;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Restart schedule for the CDCL search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RestartSchedule {
    /// Luby sequence scaled by `base` conflicts (the classic MiniSat
    /// schedule: 1, 1, 2, 1, 1, 2, 4, ... × base).
    Luby {
        /// Conflicts per Luby unit; must be ≥ 1.
        base: u64,
    },
    /// Geometric schedule: restart `i` (0-based) allows
    /// `initial * factor^i` conflicts.
    Geometric {
        /// Conflict limit of the first restart interval; must be ≥ 1.
        initial: u64,
        /// Growth factor between intervals; must be finite and > 1.
        factor: f64,
    },
}

impl Default for RestartSchedule {
    fn default() -> Self {
        RestartSchedule::Luby { base: 100 }
    }
}

impl RestartSchedule {
    /// Conflict limit of restart interval `idx` (0-based).
    pub fn limit(&self, idx: u64) -> u64 {
        match *self {
            RestartSchedule::Luby { base } => luby(idx).saturating_mul(base),
            RestartSchedule::Geometric { initial, factor } => {
                let exp = idx.min(4096) as i32;
                (initial as f64 * factor.powi(exp)) as u64
            }
        }
    }
}

/// Decision polarity policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhasePolicy {
    /// Classic phase saving: branch on the polarity the variable last held
    /// (seedable via [`Solver::set_phase`] for warm starts). The default.
    #[default]
    Saved,
    /// Always branch positive first.
    Positive,
    /// Always branch negative first.
    Negative,
    /// Random polarity from the config's seed — the diversification member
    /// of a portfolio.
    Random,
}

/// The Luby restart sequence value for index `x` (0-based):
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
pub(crate) fn luby(mut x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Minimal xorshift64* PRNG for decision-polarity jitter. Deterministic per
/// seed, `no_std`-grade simple, and good enough for diversification (this is
/// not a statistical-quality requirement).
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        // Splitmix-style scrambling so seeds 0, 1, 2... give unrelated
        // streams (and seed 0 is not a fixed point).
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        XorShift64 {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub(crate) fn next_bool(&mut self) -> bool {
        self.next_u64() & (1 << 60) != 0
    }
}

/// A validated, cloneable description of how a [`Solver`] searches.
///
/// Built with [`SolverConfig::builder`] (which validates every field) or
/// parsed from a `key=value,...` string with [`SolverConfig::parse`];
/// consumed by [`Solver::with_config`]. Because the config is `Clone`, a
/// racing portfolio is simply a `Vec<SolverConfig>` of presets.
///
/// The run controls ([`SolveControl`]: lifetime conflict cap, stop flag,
/// tracer) and the per-call conflict budget live here too, so *all* budget
/// accounting has one source of truth.
#[derive(Debug, Clone, Default)]
pub struct SolverConfig {
    /// VSIDS variable-activity decay, in (0, 1). `None` keeps 0.95.
    pub decay: Option<f64>,
    /// Learnt-clause activity decay, in (0, 1). `None` keeps 0.999.
    pub clause_decay: Option<f64>,
    /// Restart schedule.
    pub restart: RestartSchedule,
    /// Decision polarity policy.
    pub phase: PhasePolicy,
    /// Seed for the decision-polarity PRNG ([`PhasePolicy::Random`]).
    pub seed: u64,
    /// Per-call conflict budget: each `solve*` call gives up with
    /// `Unknown` after roughly this many conflicts *of its own*.
    pub conflict_budget: Option<u64>,
    /// Ask front ends that hold a whole formula (`qsat`, the portfolio
    /// race, the engine's OMT probes) to run the proof-logging
    /// preprocessor ([`crate::analyze::preprocess`]) before search. The
    /// solver itself ignores the flag — preprocessing needs the full CNF,
    /// which the incremental `add_clause` API never sees at once.
    pub preprocess: bool,
    /// Caller-side run controls: lifetime conflict cap, cooperative stop
    /// flag, tracer.
    pub control: SolveControl,
}

impl SolverConfig {
    /// Starts a validating builder over the default configuration.
    pub fn builder() -> SolverConfigBuilder {
        SolverConfigBuilder::default()
    }

    /// Effective VSIDS decay (default 0.95).
    pub(crate) fn var_decay(&self) -> f64 {
        self.decay.unwrap_or(0.95)
    }

    /// Effective clause-activity decay (default 0.999).
    pub(crate) fn cla_decay(&self) -> f64 {
        self.clause_decay.unwrap_or(0.999)
    }

    /// Parses a `key=value,key=value` configuration string (the `qsat
    /// --config` syntax). Recognised keys:
    ///
    /// * `decay=F` — VSIDS decay in (0, 1)
    /// * `clause_decay=F` — clause-activity decay in (0, 1)
    /// * `restart=luby` | `restart=luby:BASE` |
    ///   `restart=geometric` | `restart=geometric:INITIAL:FACTOR`
    /// * `phase=saved|positive|negative|random`
    /// * `seed=N`
    /// * `budget=N` — per-call conflict budget
    /// * `preprocess=true|false` — run the proof-logging preprocessor
    ///   before search (honored by whole-formula front ends)
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on unknown keys, malformed values, or values
    /// that fail the builder's validation.
    pub fn parse(spec: &str) -> Result<SolverConfig, ConfigError> {
        let mut b = SolverConfig::builder();
        for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| ConfigError::Parse(format!("expected key=value, got `{item}`")))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| ConfigError::Parse(format!("invalid {what}: `{value}`"));
            match key {
                "decay" => b = b.decay(value.parse().map_err(|_| bad("decay"))?),
                "clause_decay" => {
                    b = b.clause_decay(value.parse().map_err(|_| bad("clause_decay"))?)
                }
                "restart" => {
                    let mut parts = value.split(':');
                    let kind = parts.next().unwrap_or("");
                    b = match kind {
                        "luby" => {
                            let base = match parts.next() {
                                Some(s) => s.parse().map_err(|_| bad("luby base"))?,
                                None => 100,
                            };
                            b.restart(RestartSchedule::Luby { base })
                        }
                        "geometric" => {
                            let initial = match parts.next() {
                                Some(s) => s.parse().map_err(|_| bad("geometric initial"))?,
                                None => 128,
                            };
                            let factor = match parts.next() {
                                Some(s) => s.parse().map_err(|_| bad("geometric factor"))?,
                                None => 1.3,
                            };
                            b.restart(RestartSchedule::Geometric { initial, factor })
                        }
                        other => {
                            return Err(ConfigError::Parse(format!(
                                "unknown restart schedule `{other}`"
                            )))
                        }
                    };
                    if parts.next().is_some() {
                        return Err(bad("restart (trailing fields)"));
                    }
                }
                "phase" => {
                    b = b.phase(match value {
                        "saved" => PhasePolicy::Saved,
                        "positive" => PhasePolicy::Positive,
                        "negative" => PhasePolicy::Negative,
                        "random" => PhasePolicy::Random,
                        other => {
                            return Err(ConfigError::Parse(format!(
                                "unknown phase policy `{other}`"
                            )))
                        }
                    })
                }
                "seed" => b = b.seed(value.parse().map_err(|_| bad("seed"))?),
                "budget" => b = b.conflict_budget(Some(value.parse().map_err(|_| bad("budget"))?)),
                "preprocess" => {
                    b = b.preprocess(match value {
                        "true" | "on" | "1" => true,
                        "false" | "off" | "0" => false,
                        _ => return Err(bad("preprocess")),
                    })
                }
                other => return Err(ConfigError::Parse(format!("unknown config key `{other}`"))),
            }
        }
        b.build()
    }

    /// A short human-readable summary (`decay=0.95 restart=luby:100
    /// phase=saved seed=0`), stable enough for logs and benchmark labels.
    pub fn describe(&self) -> String {
        let restart = match self.restart {
            RestartSchedule::Luby { base } => format!("luby:{base}"),
            RestartSchedule::Geometric { initial, factor } => {
                format!("geometric:{initial}:{factor}")
            }
        };
        let phase = match self.phase {
            PhasePolicy::Saved => "saved",
            PhasePolicy::Positive => "positive",
            PhasePolicy::Negative => "negative",
            PhasePolicy::Random => "random",
        };
        let pre = if self.preprocess {
            " preprocess=on"
        } else {
            ""
        };
        format!(
            "decay={} restart={restart} phase={phase} seed={}{pre}",
            self.var_decay(),
            self.seed
        )
    }
}

/// Validation or parse failure from [`SolverConfigBuilder::build`] /
/// [`SolverConfig::parse`].
#[derive(Debug)]
pub enum ConfigError {
    /// VSIDS decay outside (0, 1).
    InvalidDecay(f64),
    /// Clause-activity decay outside (0, 1).
    InvalidClauseDecay(f64),
    /// Luby base of 0.
    InvalidLubyBase,
    /// Geometric schedule with `initial` 0 or `factor` ≤ 1 / non-finite.
    InvalidGeometric {
        /// Rejected initial interval.
        initial: u64,
        /// Rejected growth factor.
        factor: f64,
    },
    /// `key=value` string did not parse.
    Parse(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidDecay(d) => write!(f, "decay must be in (0, 1), got {d}"),
            ConfigError::InvalidClauseDecay(d) => {
                write!(f, "clause_decay must be in (0, 1), got {d}")
            }
            ConfigError::InvalidLubyBase => write!(f, "luby restart base must be >= 1"),
            ConfigError::InvalidGeometric { initial, factor } => write!(
                f,
                "geometric restart needs initial >= 1 and finite factor > 1, \
                 got initial={initial} factor={factor}"
            ),
            ConfigError::Parse(msg) => write!(f, "config parse error: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`SolverConfig`]; see [`SolverConfig::builder`].
///
/// Every knob of the solver is set here — including the run controls that
/// used to need separate `set_*` calls — and checked once in
/// [`SolverConfigBuilder::build`]. A DRAT proof sink (not cloneable, hence
/// not part of the config value) can be attached too, in which case
/// [`SolverConfigBuilder::build_solver`] installs it on the constructed
/// solver.
#[derive(Debug, Default)]
pub struct SolverConfigBuilder {
    config: SolverConfig,
    proof: Option<Box<dyn ProofSink>>,
}

impl SolverConfigBuilder {
    /// Sets the VSIDS variable-activity decay (validated to (0, 1)).
    #[must_use]
    pub fn decay(mut self, decay: f64) -> Self {
        self.config.decay = Some(decay);
        self
    }

    /// Sets the learnt-clause activity decay (validated to (0, 1)).
    #[must_use]
    pub fn clause_decay(mut self, decay: f64) -> Self {
        self.config.clause_decay = Some(decay);
        self
    }

    /// Sets the restart schedule.
    #[must_use]
    pub fn restart(mut self, restart: RestartSchedule) -> Self {
        self.config.restart = restart;
        self
    }

    /// Sets the decision polarity policy.
    #[must_use]
    pub fn phase(mut self, phase: PhasePolicy) -> Self {
        self.config.phase = phase;
        self
    }

    /// Sets the polarity-PRNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the per-call conflict budget.
    #[must_use]
    pub fn conflict_budget(mut self, budget: Option<u64>) -> Self {
        self.config.conflict_budget = budget;
        self
    }

    /// Asks whole-formula front ends to run the proof-logging
    /// preprocessor before search (see [`SolverConfig::preprocess`]).
    #[must_use]
    pub fn preprocess(mut self, preprocess: bool) -> Self {
        self.config.preprocess = preprocess;
        self
    }

    /// Sets the lifetime conflict cap (see [`SolveControl::conflict_cap`]).
    #[must_use]
    pub fn conflict_cap(mut self, cap: Option<u64>) -> Self {
        self.config.control.conflict_cap = cap;
        self
    }

    /// Attaches a cooperative stop flag (see [`SolveControl::stop`]).
    #[must_use]
    pub fn stop(mut self, stop: Arc<AtomicBool>) -> Self {
        self.config.control.stop = Some(stop);
        self
    }

    /// Installs a tracer (see [`SolveControl::tracer`]).
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.config.control.tracer = tracer;
        self
    }

    /// Attaches a DRAT proof sink, installed by
    /// [`SolverConfigBuilder::build_solver`]. Proof sinks are not `Clone`,
    /// so they are carried by the builder rather than the config value.
    #[must_use]
    pub fn proof(mut self, sink: Box<dyn ProofSink>) -> Self {
        self.proof = Some(sink);
        self
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if let Some(d) = self.config.decay {
            if !(d > 0.0 && d < 1.0) {
                return Err(ConfigError::InvalidDecay(d));
            }
        }
        if let Some(d) = self.config.clause_decay {
            if !(d > 0.0 && d < 1.0) {
                return Err(ConfigError::InvalidClauseDecay(d));
            }
        }
        match self.config.restart {
            RestartSchedule::Luby { base: 0 } => Err(ConfigError::InvalidLubyBase),
            RestartSchedule::Geometric { initial, factor }
                if initial == 0 || !factor.is_finite() || factor <= 1.0 =>
            {
                Err(ConfigError::InvalidGeometric { initial, factor })
            }
            _ => Ok(()),
        }
    }

    /// Validates and returns the configuration value.
    ///
    /// # Errors
    ///
    /// Any variant of [`ConfigError`] for out-of-range knobs; also an error
    /// if a proof sink was attached (a sink cannot live in the cloneable
    /// config — use [`SolverConfigBuilder::build_solver`] instead).
    pub fn build(self) -> Result<SolverConfig, ConfigError> {
        self.validate()?;
        if self.proof.is_some() {
            return Err(ConfigError::Parse(
                "a proof sink cannot be stored in a SolverConfig; \
                 use build_solver() to construct the solver directly"
                    .into(),
            ));
        }
        Ok(self.config)
    }

    /// Validates the configuration and constructs a [`Solver`] from it,
    /// installing the proof sink if one was attached.
    ///
    /// # Errors
    ///
    /// Same validation failures as [`SolverConfigBuilder::build`].
    pub fn build_solver(mut self) -> Result<Solver, ConfigError> {
        self.validate()?;
        let mut solver = Solver::with_config(self.config);
        if let Some(sink) = self.proof.take() {
            solver.set_proof(sink);
        }
        Ok(solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_legacy_constants() {
        let c = SolverConfig::default();
        assert_eq!(c.var_decay(), 0.95);
        assert_eq!(c.cla_decay(), 0.999);
        assert_eq!(c.restart, RestartSchedule::Luby { base: 100 });
        assert_eq!(c.phase, PhasePolicy::Saved);
        assert_eq!(c.conflict_budget, None);
    }

    #[test]
    fn builder_validates_every_knob() {
        assert!(SolverConfig::builder().decay(0.9).build().is_ok());
        assert!(matches!(
            SolverConfig::builder().decay(1.0).build(),
            Err(ConfigError::InvalidDecay(_))
        ));
        assert!(matches!(
            SolverConfig::builder().decay(0.0).build(),
            Err(ConfigError::InvalidDecay(_))
        ));
        assert!(matches!(
            SolverConfig::builder().clause_decay(-0.5).build(),
            Err(ConfigError::InvalidClauseDecay(_))
        ));
        assert!(matches!(
            SolverConfig::builder()
                .restart(RestartSchedule::Luby { base: 0 })
                .build(),
            Err(ConfigError::InvalidLubyBase)
        ));
        assert!(matches!(
            SolverConfig::builder()
                .restart(RestartSchedule::Geometric {
                    initial: 0,
                    factor: 1.5
                })
                .build(),
            Err(ConfigError::InvalidGeometric { .. })
        ));
        assert!(matches!(
            SolverConfig::builder()
                .restart(RestartSchedule::Geometric {
                    initial: 100,
                    factor: 1.0
                })
                .build(),
            Err(ConfigError::InvalidGeometric { .. })
        ));
        assert!(SolverConfig::builder()
            .restart(RestartSchedule::Geometric {
                initial: 128,
                factor: 1.3
            })
            .build()
            .is_ok());
    }

    #[test]
    fn parse_round_trips_common_specs() {
        let c = SolverConfig::parse("decay=0.9,restart=luby:50,phase=random,seed=7").unwrap();
        assert_eq!(c.var_decay(), 0.9);
        assert_eq!(c.restart, RestartSchedule::Luby { base: 50 });
        assert_eq!(c.phase, PhasePolicy::Random);
        assert_eq!(c.seed, 7);

        let c = SolverConfig::parse("restart=geometric:200:1.5,budget=1000").unwrap();
        assert_eq!(
            c.restart,
            RestartSchedule::Geometric {
                initial: 200,
                factor: 1.5
            }
        );
        assert_eq!(c.conflict_budget, Some(1000));

        let c = SolverConfig::parse("preprocess=true,seed=3").unwrap();
        assert!(c.preprocess);
        assert!(c.describe().contains("preprocess=on"), "{}", c.describe());
        let c = SolverConfig::parse("preprocess=off").unwrap();
        assert!(!c.preprocess);
        assert!(!c.describe().contains("preprocess"), "{}", c.describe());

        // Bare schedule names pick their documented defaults.
        let c = SolverConfig::parse("restart=geometric").unwrap();
        assert!(matches!(c.restart, RestartSchedule::Geometric { .. }));
        let c = SolverConfig::parse("restart=luby").unwrap();
        assert_eq!(c.restart, RestartSchedule::Luby { base: 100 });
        // Empty spec is the default config.
        assert_eq!(SolverConfig::parse("").unwrap().var_decay(), 0.95);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "decay",
            "decay=x",
            "decay=1.5",
            "restart=fib",
            "restart=luby:0",
            "restart=luby:100:9",
            "phase=sticky",
            "seed=-1",
            "budget=abc",
            "preprocess=maybe",
            "unknown=1",
        ] {
            assert!(SolverConfig::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn restart_limits_follow_their_schedules() {
        let luby = RestartSchedule::Luby { base: 100 };
        assert_eq!(luby.limit(0), 100);
        assert_eq!(luby.limit(2), 200);
        assert_eq!(luby.limit(6), 400);
        let geo = RestartSchedule::Geometric {
            initial: 100,
            factor: 2.0,
        };
        assert_eq!(geo.limit(0), 100);
        assert_eq!(geo.limit(1), 200);
        assert_eq!(geo.limit(3), 800);
        // Huge indices saturate instead of wrapping.
        assert_eq!(geo.limit(10_000), u64::MAX);
    }

    #[test]
    fn describe_is_stable_and_parseable_by_eye() {
        let c = SolverConfig::parse("decay=0.9,restart=geometric:128:1.3,phase=random").unwrap();
        let d = c.describe();
        assert!(d.contains("decay=0.9"), "{d}");
        assert!(d.contains("geometric:128:1.3"), "{d}");
        assert!(d.contains("phase=random"), "{d}");
    }

    #[test]
    fn xorshift_streams_differ_by_seed_and_are_deterministic() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let mut a2 = XorShift64::new(1);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sa2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(sa, sa2);
        assert_ne!(sa, sb);
        // Polarity stream is not constant.
        let mut r = XorShift64::new(42);
        let bools: Vec<bool> = (0..64).map(|_| r.next_bool()).collect();
        assert!(bools.iter().any(|&x| x) && bools.iter().any(|&x| !x));
    }
}
