//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! A from-scratch solver in the MiniSat lineage:
//!
//! * two-watched-literal propagation with blocker literals,
//! * first-UIP conflict analysis with basic clause minimization,
//! * exponential VSIDS variable activities with an indexed max-heap,
//! * phase saving,
//! * Luby-sequence restarts,
//! * activity-based learnt-clause database reduction,
//! * incremental solving under assumptions with failed-assumption
//!   (unsat-core) extraction.

use crate::config::{PhasePolicy, SolverConfig, XorShift64};
use crate::exchange::ExchangeHandle;
use crate::heap::ActivityHeap;
use crate::lit::{LBool, Lit, Var};
use crate::proof::ProofSink;
use qca_trace::Tracer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Reference to a clause in the solver's arena.
type ClauseRef = u32;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    activity: f64,
    learnt: bool,
    deleted: bool,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Statistics accumulated over the lifetime of a [`Solver`].
#[derive(Debug, Default, Clone)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Literals in learnt clauses removed by minimization.
    pub minimized_literals: u64,
}

impl SolverStats {
    /// Counter-wise difference `self - earlier`, for per-call rates on a
    /// reused solver: snapshot [`Solver::stats`] before a `solve*` call,
    /// diff afterwards, and divide by the call's wall time to get
    /// conflicts/sec and propagations/sec for *that call* rather than the
    /// solver's lifetime (which spans every incremental query). Monotonic
    /// counters use saturating subtraction; `learnt_clauses` is a level,
    /// not a counter, so the current value is carried through unchanged.
    #[must_use]
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses,
            deleted_clauses: self.deleted_clauses.saturating_sub(earlier.deleted_clauses),
            minimized_literals: self
                .minimized_literals
                .saturating_sub(earlier.minimized_literals),
        }
    }
}

/// External run controls for a [`Solver`], applied as one unit.
///
/// Groups everything a *caller* (as opposed to the encoding) may want to
/// impose on a solve: a lifetime conflict cap, a cooperative cancellation
/// flag, and a [`Tracer`] receiving CDCL milestones (restarts,
/// conflict-count checkpoints) and per-solve statistics. Replaces the former
/// scattered `set_conflict_cap` / `set_stop_flag` plumbing; install with
/// [`Solver::set_control`].
#[derive(Debug, Clone, Default)]
pub struct SolveControl {
    /// Lifetime conflict cap: any `solve*` call returns
    /// [`SolveOutcome::Unknown`] once [`SolverStats::conflicts`] reaches the
    /// cap, regardless of per-call budgets. Unlike
    /// [`Solver::set_conflict_budget`], the cap spans calls — it bounds the
    /// total work of an incremental session (e.g. every probe of an
    /// optimization loop sharing one solver).
    pub conflict_cap: Option<u64>,
    /// Cooperative cancellation flag: while it reads `true`, any in-flight
    /// or future `solve*` call returns [`SolveOutcome::Unknown`] at its next
    /// check point (every decision and every conflict). The flag is shared —
    /// a controller thread sets it to interrupt a solve in progress on
    /// another thread (the solver itself is `Send` but not `Sync`; the flag
    /// is the intended cross-thread channel).
    pub stop: Option<Arc<AtomicBool>>,
    /// Receives `sat.solve` spans, restart/conflict milestones and
    /// end-of-solve statistics gauges. Disabled by default.
    pub tracer: Tracer,
}

/// Outcome of a [`Solver::solve_limited`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable; the failed
    /// assumptions are available from [`Solver::unsat_core`].
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use qca_sat::Solver;
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[!a.positive()]);
/// assert!(s.solve());
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    free_slots: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: ActivityHeap,
    priority_heap: ActivityHeap,
    is_priority: Vec<bool>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    cla_inc: f64,
    ok: bool,
    model: Vec<LBool>,
    conflict_core: Vec<Lit>,
    stats: SolverStats,
    max_learnts: f64,
    config: SolverConfig,
    rng: XorShift64,
    exchange: Option<ExchangeHandle>,
    n_original_clauses: usize,
    proof: Option<Box<dyn ProofSink>>,
    recorded: Option<Vec<Vec<Lit>>>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with the default [`SolverConfig`].
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver searching as described by `config` (assumed
    /// already validated — construct it with [`SolverConfig::builder`] or
    /// [`SolverConfig::parse`]).
    pub fn with_config(config: SolverConfig) -> Self {
        let rng = XorShift64::new(config.seed);
        Solver {
            clauses: Vec::new(),
            free_slots: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: ActivityHeap::new(),
            priority_heap: ActivityHeap::new(),
            is_priority: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            cla_inc: 1.0,
            ok: true,
            model: Vec::new(),
            conflict_core: Vec::new(),
            stats: SolverStats::default(),
            max_learnts: 0.0,
            config,
            rng,
            exchange: None,
            n_original_clauses: 0,
            proof: None,
            recorded: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.is_priority.push(false);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Sets the saved phase of a variable: the polarity the solver will try
    /// first when branching on it. Useful for seeding the search with a
    /// known-good (warm-start) assignment.
    pub fn set_phase(&mut self, v: Var, phase: bool) {
        self.phase[v.index()] = phase;
    }

    /// Marks a variable as a *priority decision variable*: the solver always
    /// branches on unassigned priority variables before any other variable.
    ///
    /// Intended for models where a small set of semantic choices functionally
    /// determines a large auxiliary encoding (bit-blasted arithmetic): with
    /// the choices decided first, the rest follows by unit propagation.
    pub fn mark_priority_var(&mut self, v: Var) {
        let idx = v.index();
        if !self.is_priority[idx] {
            self.is_priority[idx] = true;
            self.priority_heap.insert(idx, &self.activity);
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of original (problem) clauses currently in the database.
    pub fn num_clauses(&self) -> usize {
        self.n_original_clauses
    }

    /// Solver statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Limits the next `solve*` call to roughly `budget` conflicts; `None`
    /// removes the limit. The budget is consumed per call. Equivalent to
    /// setting [`SolverConfig::conflict_budget`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.config.conflict_budget = budget;
    }

    /// Installs the caller-side run controls (lifetime conflict cap,
    /// cancellation flag, tracer) in one call. See [`SolveControl`].
    /// Equivalent to setting [`SolverConfig::control`].
    pub fn set_control(&mut self, control: SolveControl) {
        self.config.control = control;
    }

    /// The currently installed run controls.
    pub fn control(&self) -> &SolveControl {
        &self.config.control
    }

    /// Caps the solver's *lifetime* conflict count. `None` removes the cap.
    #[deprecated(
        since = "0.1.0",
        note = "set `SolverConfig::builder().conflict_cap(..)` or `SolveControl::conflict_cap` via `set_control`"
    )]
    pub fn set_conflict_cap(&mut self, cap: Option<u64>) {
        self.config.control.conflict_cap = cap;
    }

    /// Installs a cooperative cancellation flag. `None` detaches the flag.
    #[deprecated(
        since = "0.1.0",
        note = "set `SolverConfig::builder().stop(..)` or `SolveControl::stop` via `set_control`"
    )]
    pub fn set_stop_flag(&mut self, stop: Option<Arc<AtomicBool>>) {
        self.config.control.stop = stop;
    }

    /// `true` when the attached stop flag (if any) requests cancellation.
    #[inline]
    fn stop_requested(&self) -> bool {
        self.config
            .control
            .stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// `true` once the lifetime conflict count has reached `halt_at` (the
    /// single unified limit computed per solve from the per-call budget and
    /// the lifetime cap — see [`Solver::solve_limited`]).
    #[inline]
    fn halted(&self, halt_at: Option<u64>) -> bool {
        halt_at.is_some_and(|h| self.stats.conflicts >= h) || self.stop_requested()
    }

    /// Installs a DRAT proof sink; every clause the solver derives from now
    /// on (learnt clauses, level-0 simplifications, the final empty clause)
    /// and every learnt-clause deletion is streamed to it. Install the sink
    /// *before* adding clauses so level-0 simplifications during loading are
    /// captured. `None`-equivalent: see [`Solver::take_proof`].
    pub fn set_proof(&mut self, sink: Box<dyn ProofSink>) {
        self.proof = Some(sink);
    }

    /// Removes and returns the installed proof sink, if any. Emission stops.
    pub fn take_proof(&mut self) -> Option<Box<dyn ProofSink>> {
        self.proof.take()
    }

    /// `true` while a proof sink is installed.
    pub fn proof_enabled(&self) -> bool {
        self.proof.is_some()
    }

    /// Flushes the installed proof sink (no-op without one).
    ///
    /// # Errors
    ///
    /// Returns the sink's first deferred I/O error, if any.
    pub fn flush_proof(&mut self) -> std::io::Result<()> {
        match self.proof.as_mut() {
            Some(p) => p.flush(),
            None => Ok(()),
        }
    }

    /// Starts recording a *shadow formula*: every clause subsequently given
    /// to [`Solver::add_clause`] is stored verbatim (pre-simplification), so
    /// the axiom set can later be exported with [`Solver::recorded_cnf`] and
    /// re-checked by an independent tool. Clauses added through
    /// [`Solver::add_clause_derived`] are deliberately *not* recorded — they
    /// are consequences, not axioms.
    pub fn enable_clause_recording(&mut self) {
        if self.recorded.is_none() {
            self.recorded = Some(Vec::new());
        }
    }

    /// `true` while shadow-formula recording is enabled.
    pub fn recording_enabled(&self) -> bool {
        self.recorded.is_some()
    }

    /// The shadow formula recorded since [`Solver::enable_clause_recording`],
    /// as a [`Cnf`](crate::dimacs::Cnf) over this solver's current variable
    /// range. `None` if recording was never enabled.
    pub fn recorded_cnf(&self) -> Option<crate::dimacs::Cnf> {
        self.recorded.as_ref().map(|clauses| crate::dimacs::Cnf {
            num_vars: self.num_vars(),
            clauses: clauses.clone(),
        })
    }

    #[inline]
    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.add_clause(lits);
        }
    }

    #[inline]
    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.delete_clause(lits);
        }
    }

    /// Connects this solver to a shared [`ClauseExchange`] as one portfolio
    /// member: short learnt clauses passing the handle's caps are published,
    /// and foreign clauses are imported at every restart. Import is
    /// suppressed while a proof sink is installed (an imported clause is a
    /// consequence of the *shared* formula, but not necessarily RUP at this
    /// point of *this* solver's derivation, which would break DRAT
    /// checking).
    ///
    /// [`ClauseExchange`]: crate::ClauseExchange
    pub fn set_exchange(&mut self, handle: ExchangeHandle) {
        self.exchange = Some(handle);
    }

    /// The installed exchange handle, if any (accounting and import log).
    pub fn exchange(&self) -> Option<&ExchangeHandle> {
        self.exchange.as_ref()
    }

    /// Removes and returns the installed exchange handle, if any.
    pub fn take_exchange(&mut self) -> Option<ExchangeHandle> {
        self.exchange.take()
    }

    /// Exports the solver's current formula as a CNF over the same variable
    /// numbering: the level-0 trail as unit clauses (units are enqueued
    /// directly and never stored in the clause database) plus every live
    /// stored clause — original, derived, and learnt alike. Learnt and
    /// derived clauses are consequences of the rest, so the export is
    /// equisatisfiable with the solver's formula and every model of it maps
    /// back verbatim; this is what portfolio members race on.
    pub fn export_formula(&self) -> crate::dimacs::Cnf {
        let mut clauses = Vec::new();
        if !self.ok {
            clauses.push(Vec::new());
        }
        let root = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for &l in &self.trail[..root] {
            clauses.push(vec![l]);
        }
        for c in &self.clauses {
            if !c.deleted {
                clauses.push(c.lits.clone());
            }
        }
        crate::dimacs::Cnf {
            num_vars: self.num_vars(),
            clauses,
        }
    }

    /// Raises a variable's branching priority by bumping its VSIDS activity,
    /// steering the solver toward deciding it early. Useful when a model has
    /// a small set of semantic decision variables whose assignment
    /// functionally determines large auxiliary encodings.
    pub fn boost_variable(&mut self, v: Var) {
        self.bump_var(v);
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause; returns `false` if the solver became trivially
    /// unsatisfiable (empty clause or conflicting units at level 0).
    ///
    /// Duplicate literals are removed and tautological clauses are silently
    /// accepted (and dropped). Must be called when no solve is in progress;
    /// assignments from previous solves are rolled back automatically.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_inner(lits, true)
    }

    /// Adds a clause the caller asserts to be a *consequence* of the formula
    /// (e.g. an optimizer's refuted-bound clause) rather than an axiom.
    ///
    /// Identical to [`Solver::add_clause`] except the clause is excluded from
    /// the shadow formula ([`Solver::enable_clause_recording`]), so exported
    /// certificates are stated over the axioms alone. The clause *is* still
    /// reported to an installed [`ProofSink`] as an addition; the resulting
    /// proof remains checkable only if the clause is RUP at that point.
    pub fn add_clause_derived(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_inner(lits, false)
    }

    fn add_clause_inner(&mut self, lits: &[Lit], record: bool) -> bool {
        if !self.ok {
            return false;
        }
        if record {
            if let Some(rec) = self.recorded.as_mut() {
                rec.push(lits.to_vec());
            }
        }
        self.cancel_until(0);
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(ls.len());
        let mut dropped_lits = false;
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and !l (adjacent after sort)
            }
            match self.lit_value(l) {
                LBool::True => return true,          // already satisfied at level 0
                LBool::False => dropped_lits = true, // falsified at level 0: drop
                LBool::Undef => simplified.push(l),
            }
        }
        // A simplified clause that lost literals (or a derived clause, which
        // the checker has never seen) is a derivation step of its own; a
        // clause passed through verbatim is already in the input formula.
        if self.proof.is_some() && (dropped_lits || !record) && !simplified.is_empty() {
            let emit = simplified.clone();
            self.proof_add(&emit);
        }
        match simplified.len() {
            0 => {
                self.proof_add(&[]);
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.proof_add(&[]);
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                self.n_original_clauses += 1;
                true
            }
        }
    }

    fn alloc_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        let clause = Clause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
        };
        if let Some(slot) = self.free_slots.pop() {
            self.clauses[slot as usize] = clause;
            slot
        } else {
            self.clauses.push(clause);
            (self.clauses.len() - 1) as ClauseRef
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let (l0, l1) = (lits[0], lits[1]);
        let cref = self.alloc_clause(lits, learnt);
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    fn detach_clause(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = &self.clauses[cref as usize];
            (c.lits[0], c.lits[1])
        };
        for l in [l0, l1] {
            let ws = &mut self.watches[(!l).code()];
            if let Some(pos) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(pos);
            }
        }
        // Only learnt clauses are ever detached (database reduction); their
        // removal must reach the proof so the checker's database matches.
        let deleted_lits = if self.proof.is_some() && self.clauses[cref as usize].learnt {
            Some(self.clauses[cref as usize].lits.clone())
        } else {
            None
        };
        let c = &mut self.clauses[cref as usize];
        c.deleted = true;
        if c.learnt {
            self.stats.learnt_clauses -= 1;
            self.stats.deleted_clauses += 1;
        }
        c.lits.clear();
        c.lits.shrink_to_fit();
        self.free_slots.push(cref);
        if let Some(lits) = deleted_lits {
            self.proof_delete(&lits);
        }
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut confl = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let first;
                {
                    let c = &mut self.clauses[w.cref as usize];
                    let false_lit = !p;
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                    first = c.lits[0];
                }
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Search a replacement watch.
                let len = self.clauses[w.cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[w.cref as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[w.cref as usize].lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    confl = Some(w.cref);
                    self.qhead = self.trail.len();
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
        }
        confl
    }

    fn bump_var(&mut self, v: Var) {
        let idx = v.index();
        self.activity[idx] += self.var_inc;
        if self.activity[idx] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(idx, &self.activity);
        self.priority_heap.update(idx, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay();
        self.cla_inc /= self.config.cla_decay();
    }

    /// Literal Block Distance of a clause under the current assignment: the
    /// number of distinct non-zero decision levels among its literals. Low
    /// LBD ("glue") clauses are the ones worth sharing.
    fn clause_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut lbd = 0u32;
        for &l in lits {
            let level = self.level[l.var().index()];
            if level > 0 && !self.seen[l.var().index()] {
                self.seen[l.var().index()] = true;
                lbd += 1;
            }
        }
        for &l in lits {
            self.seen[l.var().index()] = false;
        }
        lbd
    }

    /// Imports one foreign clause at decision level 0, attaching it as a
    /// learnt clause (so database reduction may drop it again). The clause
    /// must be a consequence of the formula; see [`Solver::set_exchange`].
    fn import_clause(&mut self, lits: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return; // tautology
            }
            match self.lit_value(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False => {}     // falsified at level 0: drop literal
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => self.ok = false,
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.attach_clause(simplified, true);
            }
        }
    }

    /// Pulls every admissible foreign clause from the exchange (restart-time
    /// hook; no-op without an exchange or while a proof sink is installed).
    fn import_shared(&mut self) {
        if self.proof.is_some() {
            return;
        }
        let Some(mut ex) = self.exchange.take() else {
            return;
        };
        let mut batch = Vec::new();
        ex.pull(&mut batch);
        self.exchange = Some(ex);
        for lits in &batch {
            if !self.ok {
                break;
            }
            self.import_clause(lits);
        }
    }

    /// Offers a freshly learnt clause to the exchange (no-op without one).
    #[inline]
    fn export_learnt(&mut self, learnt: &[Lit]) {
        if self.exchange.is_none() {
            return;
        }
        let lbd = self.clause_lbd(learnt);
        if let Some(mut ex) = self.exchange.take() {
            ex.offer(learnt, lbd);
            self.exchange = Some(ex);
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let cur_level = self.decision_level() as u32;

        loop {
            if self.clauses[confl as usize].learnt {
                self.bump_clause(confl);
            }
            let start = usize::from(p.is_some());
            let nlits = self.clauses[confl as usize].lits.len();
            for k in start..nlits {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal on the trail that participates in the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("analysis must find a UIP");

        // Mark literals for minimization membership tests.
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = true;
        }
        // Basic clause minimization: drop literals implied by the rest.
        let mut k = 1;
        let mut kept = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        while k < learnt.len() {
            let l = learnt[k];
            k += 1;
            let redundant = match self.reason[l.var().index()] {
                None => false,
                Some(r) => {
                    let c = &self.clauses[r as usize];
                    c.lits.iter().all(|&q| {
                        q.var() == l.var()
                            || self.seen[q.var().index()]
                            || self.level[q.var().index()] == 0
                    })
                }
            };
            if redundant {
                self.stats.minimized_literals += 1;
            } else {
                kept.push(l);
            }
        }
        // Clear seen flags.
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        self.seen[learnt[0].var().index()] = false;
        let mut learnt = kept;

        // Find backtrack level: max level among learnt[1..].
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt_level)
    }

    /// Computes the set of assumption literals responsible for forcing `!p`.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            // p itself is falsified at the root level: the failed assumption
            // !p is the entire core.
            self.conflict_core[0] = !p;
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if !self.seen[x.index()] {
                continue;
            }
            match self.reason[x.index()] {
                None => {
                    debug_assert!(self.level[x.index()] > 0);
                    self.conflict_core.push(!self.trail[i]);
                }
                Some(r) => {
                    let nlits = self.clauses[r as usize].lits.len();
                    for k in 1..nlits {
                        let q = self.clauses[r as usize].lits[k];
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[x.index()] = false;
        }
        self.seen[p.var().index()] = false;
        // conflict_core currently holds literals l whose conjunction of !l is
        // implied; keep the assumption literals themselves (the failed set).
        let core: Vec<Lit> = self.conflict_core.iter().map(|&l| !l).collect();
        self.conflict_core = core;
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.phase[v] = l.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
            self.heap.insert(v, &self.activity);
            if self.is_priority[v] {
                self.priority_heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.priority_heap.pop_max(&self.activity) {
            if self.assigns[v] == LBool::Undef {
                return Some(Var::from_index(v));
            }
        }
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v] == LBool::Undef {
                return Some(Var::from_index(v));
            }
        }
        None
    }

    /// Reduces the learnt-clause database, removing the low-activity half.
    fn reduce_db(&mut self) {
        let mut learnts: Vec<(ClauseRef, f64, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, c)| (i as ClauseRef, c.activity, c.lits.len()))
            .collect();
        // Sort ascending by activity (ties: longer first for removal).
        learnts.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.2.cmp(&a.2)));
        let n_remove = learnts.len() / 2;
        let mut removed = 0;
        for &(cref, _, len) in &learnts {
            if removed >= n_remove {
                break;
            }
            if len <= 2 || self.is_locked(cref) {
                continue;
            }
            self.detach_clause(cref);
            removed += 1;
        }
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let c = &self.clauses[cref as usize];
        if c.lits.is_empty() {
            return false;
        }
        let first = c.lits[0];
        self.lit_value(first) == LBool::True && self.reason[first.var().index()] == Some(cref)
    }

    /// The Luby restart sequence value for restart index `x` (0-based):
    /// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    /// (Lives in [`crate::config`] now; kept here for the unit tests.)
    #[cfg(test)]
    fn luby(x: u64) -> u64 {
        crate::config::luby(x)
    }

    /// Solves the formula with no assumptions. Returns `true` when
    /// satisfiable.
    pub fn solve(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. Returns `true` when
    /// satisfiable; on `false`, [`Solver::unsat_core`] lists the subset of
    /// assumptions that caused the conflict.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        matches!(self.solve_limited(assumptions), SolveOutcome::Sat)
    }

    /// Solves under assumptions with the configured conflict budget.
    ///
    /// When a tracer is installed via [`Solver::set_control`], the call is
    /// wrapped in a `sat.solve` span (outcome in the exit note) and the
    /// lifetime [`SolverStats`] are emitted as `sat.*` gauges when the call
    /// returns, so aborted solves still report their work.
    pub fn solve_limited(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        if !self.config.control.tracer.enabled() {
            return self.solve_limited_inner(assumptions);
        }
        let tracer = self.config.control.tracer.clone();
        let mut span = tracer.span("sat.solve");
        let outcome = self.solve_limited_inner(assumptions);
        span.set_note(match outcome {
            SolveOutcome::Sat => "sat",
            SolveOutcome::Unsat => "unsat",
            SolveOutcome::Unknown => "unknown",
        });
        self.emit_stats_gauges(&tracer);
        outcome
    }

    /// Emits the lifetime [`SolverStats`] as `sat.*` gauges on `tracer`.
    fn emit_stats_gauges(&self, tracer: &Tracer) {
        tracer.gauge("sat.decisions", self.stats.decisions as i64);
        tracer.gauge("sat.propagations", self.stats.propagations as i64);
        tracer.gauge("sat.conflicts", self.stats.conflicts as i64);
        tracer.gauge("sat.restarts", self.stats.restarts as i64);
        tracer.gauge("sat.learnt_clauses", self.stats.learnt_clauses as i64);
        tracer.gauge("sat.deleted_clauses", self.stats.deleted_clauses as i64);
        tracer.gauge(
            "sat.minimized_literals",
            self.stats.minimized_literals as i64,
        );
    }

    fn solve_limited_inner(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        self.model.clear();
        self.conflict_core.clear();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return SolveOutcome::Unsat;
        }
        self.max_learnts = (self.n_original_clauses as f64 * 0.3).max(1000.0);
        // One source of truth for budget accounting: the per-call budget
        // (counted from this call's starting conflicts) and the lifetime cap
        // fold into a single lifetime conflict count to halt at.
        let halt_at = {
            let from_budget = self
                .config
                .conflict_budget
                .map(|b| self.stats.conflicts.saturating_add(b));
            let cap = self.config.control.conflict_cap;
            match (from_budget, cap) {
                (Some(b), Some(c)) => Some(b.min(c)),
                (b, c) => b.or(c),
            }
        };
        self.import_shared();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        let mut restart_num: u64 = 0;
        loop {
            restart_num += 1;
            let limit = self.config.restart.limit(restart_num - 1);
            match self.search(limit, assumptions, halt_at) {
                SearchResult::Sat => {
                    self.model = self.assigns.clone();
                    self.cancel_until(0);
                    return SolveOutcome::Sat;
                }
                SearchResult::Unsat => {
                    self.cancel_until(0);
                    return SolveOutcome::Unsat;
                }
                SearchResult::AssumptionsFailed => {
                    self.cancel_until(0);
                    return SolveOutcome::Unsat;
                }
                SearchResult::Restart => {
                    self.stats.restarts += 1;
                    self.config.control.tracer.counter("sat.restart", 1);
                    self.cancel_until(0);
                    self.import_shared();
                    if !self.ok {
                        return SolveOutcome::Unsat;
                    }
                }
                SearchResult::BudgetExhausted => {
                    self.cancel_until(0);
                    return SolveOutcome::Unknown;
                }
            }
        }
    }

    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[Lit],
        halt_at: Option<u64>,
    ) -> SearchResult {
        let mut conflicts_here: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                // Milestone checkpoint for long solves; the `enabled` check
                // keeps the disabled-tracer hot path to a single branch.
                if self.config.control.tracer.enabled() && self.stats.conflicts.is_multiple_of(4096)
                {
                    self.config
                        .control
                        .tracer
                        .gauge("sat.conflicts.checkpoint", self.stats.conflicts as i64);
                }
                if self.decision_level() == 0 {
                    self.proof_add(&[]);
                    self.ok = false;
                    return SearchResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                // Share the fresh clause before backjumping clears the
                // levels its LBD is computed from.
                self.export_learnt(&learnt);
                if self.proof.is_some() {
                    let emit = learnt.clone();
                    self.proof_add(&emit);
                }
                // Never backtrack past the assumptions unnecessarily; standard
                // CDCL backjumps to bt and re-propagates.
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let first = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(first, Some(cref));
                }
                self.decay_activities();
                if self.halted(halt_at) {
                    return SearchResult::BudgetExhausted;
                }
            } else {
                if conflicts_here >= conflict_limit {
                    return SearchResult::Restart;
                }
                // Also poll cancellation on the decision path so
                // propagation-heavy instances with few conflicts still
                // stop promptly (and a pre-tripped flag or exhausted cap
                // aborts before any search work).
                if self.halted(halt_at) {
                    return SearchResult::BudgetExhausted;
                }
                if self.stats.learnt_clauses as f64 >= self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.5;
                }
                // Select the next decision: assumptions first.
                let next = loop {
                    if self.decision_level() < assumptions.len() {
                        let a = assumptions[self.decision_level()];
                        match self.lit_value(a) {
                            LBool::True => {
                                // Already satisfied: open a dummy level.
                                self.trail_lim.push(self.trail.len());
                                continue;
                            }
                            LBool::False => {
                                self.analyze_final(!a);
                                return SearchResult::AssumptionsFailed;
                            }
                            LBool::Undef => break Some(a),
                        }
                    } else {
                        match self.pick_branch_var() {
                            None => return SearchResult::Sat,
                            Some(v) => {
                                self.stats.decisions += 1;
                                let polarity = match self.config.phase {
                                    PhasePolicy::Saved => self.phase[v.index()],
                                    PhasePolicy::Positive => true,
                                    PhasePolicy::Negative => false,
                                    PhasePolicy::Random => self.rng.next_bool(),
                                };
                                break Some(v.lit(polarity));
                            }
                        }
                    }
                };
                let next = next.expect("decision literal");
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(next, None);
            }
        }
    }

    /// Model value of `v` after a satisfiable solve; `None` if the variable
    /// was unconstrained or no model is available.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(LBool::True) => Some(true),
            Some(LBool::False) => Some(false),
            _ => None,
        }
    }

    /// Model value of a literal after a satisfiable solve.
    pub fn lit_value_in_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.is_positive())
    }

    /// The failed assumptions from the last unsatisfiable
    /// [`Solver::solve_with_assumptions`] call.
    ///
    /// The conjunction of these assumption literals is sufficient for
    /// unsatisfiability.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// `false` once the clause set has become unconditionally unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }
}

enum SearchResult {
    Sat,
    Unsat,
    AssumptionsFailed,
    Restart,
    BudgetExhausted,
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve());
    }

    #[test]
    fn stats_delta_isolates_one_call() {
        // Refute pigeonhole 4-into-3, then check that deltas taken against
        // different baselines isolate exactly the work between them.
        let mut s = Solver::new();
        let holes = 3;
        let vs = vars(&mut s, 4 * holes);
        let var = |p: usize, h: usize| vs[p * holes + h];
        for p in 0..4 {
            let clause: Vec<Lit> = (0..holes).map(|h| var(p, h).positive()).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..4 {
                for p2 in (p1 + 1)..4 {
                    s.add_clause(&[var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
        let after_first = s.stats().clone();
        assert!(after_first.propagations > 0);
        assert!(after_first.conflicts > 0);
        // Whole-call delta against the fresh-solver baseline is the
        // lifetime count itself.
        let from_zero = after_first.delta_since(&SolverStats::default());
        assert_eq!(from_zero.conflicts, after_first.conflicts);
        assert_eq!(from_zero.propagations, after_first.propagations);
        // A no-work window has an all-zero delta (levels carried through).
        let idle = after_first.delta_since(&after_first);
        assert_eq!(idle.conflicts, 0);
        assert_eq!(idle.propagations, 0);
        assert_eq!(idle.decisions, 0);
        assert_eq!(idle.learnt_clauses, after_first.learnt_clauses);
    }

    #[test]
    fn single_unit() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        assert!(s.solve());
        assert_eq!(s.value(v), Some(true));
    }

    #[test]
    fn conflicting_units_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert!(!s.add_clause(&[v.negative()]));
        assert!(!s.solve());
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 5);
        for i in 0..4 {
            // v[i] -> v[i+1]
            s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
        }
        s.add_clause(&[v[0].positive()]);
        assert!(s.solve());
        for vi in &v {
            assert_eq!(s.value(*vi), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[None; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Some(s.new_var());
            }
        }
        let p = |i: usize, j: usize| p[i][j].unwrap();
        for i in 0..3 {
            s.add_clause(&[p(i, 0).positive(), p(i, 1).positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[p(i1, j).negative(), p(i2, j).negative()]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let vs: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, m)).collect();
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|j| vs[i][j].positive()).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[vs[i1][j].negative(), vs[i2][j].negative()]);
                }
            }
        }
        assert!(!s.solve());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, ... forces alternation; satisfiable.
        let mut s = Solver::new();
        let v = vars(&mut s, 6);
        for i in 0..5 {
            // xor = 1: (a | b) & (!a | !b)
            s.add_clause(&[v[i].positive(), v[i + 1].positive()]);
            s.add_clause(&[v[i].negative(), v[i + 1].negative()]);
        }
        s.add_clause(&[v[0].positive()]);
        assert!(s.solve());
        for i in 0..6 {
            assert_eq!(s.value(v[i]), Some(i % 2 == 0));
        }
    }

    #[test]
    fn assumptions_flip_results() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]); // a -> b
        assert!(!s.solve_with_assumptions(&[a.positive(), b.negative()]));
        assert!(s.solve_with_assumptions(&[a.positive(), b.positive()]));
        assert!(s.solve_with_assumptions(&[a.negative(), b.negative()]));
        // Solver remains usable after assumption failures.
        assert!(s.solve());
    }

    #[test]
    fn unsat_core_contains_failing_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.negative(), b.negative()]); // !(a & b)
        assert!(!s.solve_with_assumptions(&[c.positive(), a.positive(), b.positive()]));
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a.positive()) || core.contains(&b.positive()));
        // c is irrelevant and need not (though may) appear; the core must be
        // a subset of the assumptions.
        for l in &core {
            assert!([a.positive(), b.positive(), c.positive()].contains(l));
        }
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.negative()]));
        assert_eq!(s.num_clauses(), 0);
        assert!(s.solve());
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.positive(), b.positive()]));
        s.add_clause(&[a.negative()]);
        s.add_clause(&[b.negative(), a.positive()]);
        assert!(!s.solve());
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn random_3sat_under_threshold_is_sat() {
        // At clause/var ratio 3.0 (< 4.26 threshold), random 3-SAT is
        // almost surely satisfiable for n=60.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        for trial in 0..5 {
            let n = 60;
            let m = 180;
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            for _ in 0..m {
                let mut lits = Vec::new();
                while lits.len() < 3 {
                    let vi = rng.gen_range(0..n);
                    let lit = v[vi].lit(rng.gen());
                    if !lits.iter().any(|&l: &Lit| l.var() == lit.var()) {
                        lits.push(lit);
                    }
                }
                s.add_clause(&lits);
            }
            assert!(s.solve(), "trial {trial} unexpectedly unsat");
            // Model completeness: SAT is only reported once every variable
            // is assigned, so the saved model must cover all of them.
            for vi in &v {
                assert!(s.value(*vi).is_some(), "trial {trial}: incomplete model");
            }
        }
    }

    #[test]
    fn model_satisfies_all_clauses() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 40;
        let mut s = Solver::new();
        let v = vars(&mut s, n);
        let mut clauses = Vec::new();
        for _ in 0..120 {
            let mut lits = Vec::new();
            for _ in 0..3 {
                let vi = rng.gen_range(0..n);
                lits.push(v[vi].lit(rng.gen()));
            }
            clauses.push(lits.clone());
            s.add_clause(&lits);
        }
        if s.solve() {
            for c in &clauses {
                assert!(
                    c.iter().any(|&l| s.lit_value_in_model(l).unwrap_or(false)),
                    "model violates clause {c:?}"
                );
            }
        }
    }

    #[test]
    fn incremental_reuse_after_unsat_assumptions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 10);
        for i in 0..9 {
            s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
        }
        assert!(!s.solve_with_assumptions(&[v[0].positive(), v[9].negative()]));
        assert!(s.solve_with_assumptions(&[v[0].positive()]));
        assert_eq!(s.value(v[9]), Some(true));
        // Add a clause afterwards and re-solve.
        s.add_clause(&[v[9].negative()]);
        assert!(s.solve_with_assumptions(&[v[1].negative()]));
        assert!(!s.solve_with_assumptions(&[v[0].positive()]));
    }

    #[test]
    fn set_phase_steers_first_model() {
        // An unconstrained variable takes the seeded phase.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.set_phase(a, true);
        s.set_phase(b, false);
        assert!(s.solve());
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));
    }

    #[test]
    fn priority_vars_decided_first() {
        // With x marked priority and an implication x -> y, deciding x first
        // (phase true) propagates y without ever deciding it.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[x.negative(), y.positive()]);
        s.mark_priority_var(x);
        s.set_phase(x, true);
        assert!(s.solve());
        assert_eq!(s.value(x), Some(true));
        assert_eq!(s.value(y), Some(true));
    }

    #[test]
    fn solver_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Solver>();
        assert_send::<SolverStats>();
        assert_send::<super::SolveOutcome>();
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard pigeonhole instance with a tiny budget should time out.
        let n = 9;
        let m = 8;
        let mut s = Solver::new();
        let vs: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, m)).collect();
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|j| vs[i][j].positive()).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[vs[i1][j].negative(), vs[i2][j].negative()]);
                }
            }
        }
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
    }

    fn pigeonhole(n: usize, m: usize) -> Solver {
        let mut s = Solver::new();
        let vs: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, m)).collect();
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|j| vs[i][j].positive()).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[vs[i1][j].negative(), vs[i2][j].negative()]);
                }
            }
        }
        s
    }

    #[test]
    fn pre_set_stop_flag_reports_unknown() {
        let mut s = pigeonhole(9, 8);
        let stop = Arc::new(AtomicBool::new(true));
        s.set_control(SolveControl {
            stop: Some(stop.clone()),
            ..SolveControl::default()
        });
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
        // Clearing the flag lets the same solver finish the proof.
        stop.store(false, Ordering::Relaxed);
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
        // Detaching works too.
        s.set_control(SolveControl::default());
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
    }

    #[test]
    fn deprecated_setters_still_work() {
        #[allow(deprecated)]
        {
            let mut s = pigeonhole(9, 8);
            s.set_conflict_cap(Some(10));
            assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
            let stop = Arc::new(AtomicBool::new(true));
            s.set_conflict_cap(None);
            s.set_stop_flag(Some(stop));
            assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
            s.set_stop_flag(None);
            assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
        }
    }

    #[test]
    fn tracer_records_solve_span_and_stats() {
        use qca_trace::{report, TraceEvent, Tracer};
        let (tracer, sink) = Tracer::to_memory();
        let mut s = pigeonhole(6, 5);
        s.set_control(SolveControl {
            tracer,
            ..SolveControl::default()
        });
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
        let events = sink.take();
        report::validate_forest(&events).unwrap();
        let enter = events
            .iter()
            .find(|e| matches!(e, TraceEvent::SpanEnter { name, .. } if name == "sat.solve"));
        assert!(enter.is_some(), "missing sat.solve span: {events:?}");
        let note = events.iter().find_map(|e| match e {
            TraceEvent::SpanExit { note: Some(n), .. } => Some(n.clone()),
            _ => None,
        });
        assert_eq!(note.as_deref(), Some("unsat"));
        let gauges = report::last_gauges(&events);
        assert_eq!(
            gauges.get("sat.conflicts"),
            Some(&(s.stats().conflicts as i64))
        );
        assert!(gauges.contains_key("sat.decisions"));
    }

    #[test]
    fn stop_flag_interrupts_from_another_thread() {
        let mut s = pigeonhole(11, 10);
        let stop = Arc::new(AtomicBool::new(false));
        s.set_control(SolveControl {
            stop: Some(stop.clone()),
            ..SolveControl::default()
        });
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            stop.store(true, Ordering::Relaxed);
        });
        // Hard enough that 20ms is (almost certainly) not enough to finish;
        // either way the call must terminate, and Unsat is also acceptable
        // if the host is unexpectedly fast.
        let outcome = s.solve_limited(&[]);
        assert!(matches!(
            outcome,
            SolveOutcome::Unknown | SolveOutcome::Unsat
        ));
        killer.join().unwrap();
    }

    #[test]
    fn with_config_steers_search_knobs() {
        use crate::config::{PhasePolicy, RestartSchedule, SolverConfig};
        // Geometric restarts + positive phase still refute pigeonhole...
        let cfg = SolverConfig::builder()
            .decay(0.9)
            .restart(RestartSchedule::Geometric {
                initial: 50,
                factor: 1.5,
            })
            .phase(PhasePolicy::Positive)
            .build()
            .unwrap();
        let mut s = Solver::with_config(cfg.clone());
        let vs: Vec<Var> = (0..72).map(|_| s.new_var()).collect();
        let var = |p: usize, h: usize| vs[p * 8 + h];
        for p in 0..9 {
            let clause: Vec<Lit> = (0..8).map(|h| var(p, h).positive()).collect();
            s.add_clause(&clause);
        }
        for h in 0..8 {
            for p1 in 0..9 {
                for p2 in (p1 + 1)..9 {
                    s.add_clause(&[var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
        assert_eq!(s.config().var_decay(), 0.9);
        // ...and so does a random-phase member with a seed.
        let mut s = Solver::with_config(
            SolverConfig::builder()
                .phase(PhasePolicy::Random)
                .seed(7)
                .build()
                .unwrap(),
        );
        let vs: Vec<Var> = (0..30).map(|_| s.new_var()).collect();
        let var = |p: usize, h: usize| vs[p * 5 + h];
        for p in 0..6 {
            let clause: Vec<Lit> = (0..5).map(|h| var(p, h).positive()).collect();
            s.add_clause(&clause);
        }
        for h in 0..5 {
            for p1 in 0..6 {
                for p2 in (p1 + 1)..6 {
                    s.add_clause(&[var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
    }

    #[test]
    fn phase_policies_fix_unconstrained_polarity() {
        use crate::config::{PhasePolicy, SolverConfig};
        for (policy, expect) in [
            (PhasePolicy::Positive, true),
            (PhasePolicy::Negative, false),
        ] {
            let mut s = Solver::with_config(SolverConfig::builder().phase(policy).build().unwrap());
            let a = s.new_var();
            let b = s.new_var();
            s.add_clause(&[a.positive(), b.positive()]);
            assert!(s.solve());
            assert_eq!(s.value(a), Some(expect), "{policy:?}");
        }
    }

    #[test]
    fn config_budget_and_cap_share_one_accounting() {
        use crate::config::SolverConfig;
        // Budget via the builder behaves exactly like set_conflict_budget.
        let cfg = SolverConfig::builder()
            .conflict_budget(Some(10))
            .build()
            .unwrap();
        let mut s = pigeonhole(9, 8);
        s.set_conflict_budget(cfg.conflict_budget);
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
        // The tighter of (budget, cap) wins: a huge budget with a small cap
        // still halts at the cap.
        s.set_conflict_budget(Some(1_000_000));
        s.set_control(SolveControl {
            conflict_cap: Some(s.stats().conflicts + 5),
            ..SolveControl::default()
        });
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
        // And clearing both lets the refutation finish.
        s.set_conflict_budget(None);
        s.set_control(SolveControl::default());
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
    }

    #[test]
    fn export_formula_preserves_answers_and_units() {
        // UNSAT instance round-trips through export.
        let s = {
            let mut s = pigeonhole(5, 4);
            assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
            s
        };
        let cnf = s.export_formula();
        let mut racer = Solver::new();
        for _ in 0..cnf.num_vars {
            racer.new_var();
        }
        let mut ok = true;
        for c in &cnf.clauses {
            ok = racer.add_clause(c);
            if !ok {
                break;
            }
        }
        assert!(!ok || !racer.solve());

        // SAT instance with level-0 units: the units must appear in the
        // export (they are never stored in the clause database).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive()]);
        s.add_clause(&[a.negative(), b.positive()]);
        let cnf = s.export_formula();
        assert!(cnf.clauses.contains(&vec![a.positive()]));
        let mut racer = Solver::new();
        for _ in 0..cnf.num_vars {
            racer.new_var();
        }
        for c in &cnf.clauses {
            racer.add_clause(c);
        }
        assert!(racer.solve());
        assert_eq!(racer.value(a), Some(true));
        assert_eq!(racer.value(b), Some(true));
    }

    #[test]
    fn exchange_import_keeps_answers_and_logs_clauses() {
        use crate::exchange::{ClauseExchange, ExchangeHandle, ImportFilter};
        // Pre-seed the exchange with consequences of the pigeonhole CNF
        // learnt by "member 0", then let member 1 import them mid-solve.
        let exchange = ClauseExchange::new(64);
        let mut exporter = pigeonhole(7, 6);
        exporter.set_exchange(ExchangeHandle::new(
            exchange.clone(),
            0,
            ImportFilter::default(),
        ));
        assert_eq!(exporter.solve_limited(&[]), SolveOutcome::Unsat);
        assert!(exporter.exchange().unwrap().exported() > 0);

        let mut importer = pigeonhole(7, 6);
        importer.set_exchange(ExchangeHandle::new(
            exchange.clone(),
            1,
            ImportFilter::default(),
        ));
        assert_eq!(importer.solve_limited(&[]), SolveOutcome::Unsat);
        let handle = importer.take_exchange().unwrap();
        assert!(handle.imported() > 0);
        assert_eq!(handle.imported() as usize, handle.imported_clauses().len());

        // A SAT instance stays SAT (and the model satisfies every imported
        // clause — they are consequences, so this must hold by soundness).
        let exchange = ClauseExchange::new(64);
        let build_sat = || {
            let mut s = Solver::new();
            let v: Vec<Var> = (0..40).map(|_| s.new_var()).collect();
            for i in 0..39 {
                s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
            }
            s.add_clause(&[v[0].positive(), v[20].positive()]);
            (s, v)
        };
        let (mut m0, _) = build_sat();
        m0.set_exchange(ExchangeHandle::new(
            exchange.clone(),
            0,
            ImportFilter::default(),
        ));
        assert!(m0.solve());
        let (mut m1, _) = build_sat();
        m1.set_exchange(ExchangeHandle::new(exchange, 1, ImportFilter::default()));
        assert!(m1.solve());
        let handle = m1.take_exchange().unwrap();
        for clause in handle.imported_clauses() {
            assert!(
                clause
                    .iter()
                    .any(|&l| m1.lit_value_in_model(l).unwrap_or(false)),
                "model violates imported clause {clause:?}"
            );
        }
    }

    #[test]
    fn conflict_cap_spans_calls() {
        let mut s = pigeonhole(9, 8);
        s.set_control(SolveControl {
            conflict_cap: Some(10),
            ..SolveControl::default()
        });
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
        // The cap is lifetime-scoped: a second call is still capped even
        // though no per-call budget is set.
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unknown);
        s.set_control(SolveControl::default());
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
    }
}
