//! Static CNF analysis and a proof-logging, inprocessing-free preprocessor.
//!
//! Two entry points share this module:
//!
//! * [`analyze`] inspects a formula without changing it and returns a
//!   [`FormulaReport`] — occurrence/polarity tables, unit and pure literals,
//!   duplicate/tautological/subsumed clauses, connected components of the
//!   variable-interaction graph, and a bounded failed-literal probe. The
//!   report feeds the `QCA05xx` lint family in `qca-lint`.
//! * [`preprocess`] simplifies a formula before search: unit propagation,
//!   pure-literal elimination, subsumption, self-subsuming resolution, and
//!   bounded variable elimination. Every derived clause is streamed to the
//!   caller's [`ProofSink`] *before* the solver loads anything, and every
//!   removed clause is logged as a deletion, so a DRAT trace spanning
//!   preprocessing **and** search still checks end-to-end with the
//!   independent RUP checker in `qca-verify`.
//!
//! # Proof discipline
//!
//! The checker is RUP-only, which constrains what each technique may emit:
//!
//! * **Unit propagation** — a derived unit or strengthened clause is added
//!   first (it is RUP while its antecedent is still in the database), then
//!   the antecedent is deleted. Fixed variables *stay in the simplified
//!   formula as unit clauses*: deleting them could strip later proof steps
//!   of their justification, and keeping them makes solver verdicts and
//!   models bit-identical to the raw path.
//! * **Pure-literal elimination** — deletion-only. The unit `[l]` for a pure
//!   literal is RAT but not RUP, so it is never added; deleting the clauses
//!   containing `l` is always sound for a refutation, and the model side is
//!   repaired by the reconstruction stack.
//! * **Subsumption** — deletion-only.
//! * **Self-subsuming resolution / variable elimination** — each resolvent
//!   is RUP against the two parents (asserting its negation unit-propagates
//!   both to conflict), so resolvents are added before their parents are
//!   deleted.
//!
//! # Model reconstruction
//!
//! Pure-literal elimination and variable elimination remove variables from
//! the formula; the solver assigns those variables arbitrarily. The
//! [`Reconstruction`] stack records enough to overwrite them: replayed in
//! reverse, each step either re-asserts the pure literal or picks the
//! eliminated variable's polarity so every clause it was resolved out of is
//! satisfied. `qca-verify::model` replays the same stack independently.

use crate::dimacs::Cnf;
use crate::lit::{Lit, Var};
use crate::proof::ProofSink;
use std::collections::{HashMap, VecDeque};

/// Upper bound on failed-literal probes per [`analyze`] call.
const MAX_PROBES: usize = 64;

/// Static analysis of a CNF formula; see [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct FormulaReport {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clause count as given (before any normalization).
    pub num_clauses: usize,
    /// Per-variable `[positive, negative]` occurrence counts over
    /// normalized, non-tautological clauses.
    pub occurrences: Vec<[usize; 2]>,
    /// Literals asserted by unit clauses.
    pub units: Vec<Lit>,
    /// Variables asserted both positively and negatively by unit clauses.
    pub contradictory_units: Vec<Var>,
    /// Literals whose variable occurs in one polarity only (unit-fixed
    /// variables excluded).
    pub pure_literals: Vec<Lit>,
    /// Indices of tautological clauses (`x ∨ ¬x`).
    pub tautologies: Vec<usize>,
    /// Indices of clauses duplicating an earlier clause.
    pub duplicates: Vec<usize>,
    /// Indices of clauses subsumed by a distinct, smaller-or-equal clause
    /// (duplicates and tautologies excluded).
    pub subsumed: Vec<usize>,
    /// Connected components of the variable-interaction graph (variables
    /// co-occurring in a clause are connected); isolated unused variables
    /// are not listed.
    pub components: Vec<Vec<Var>>,
    /// Literals a bounded probe proved *failed*: asserting the literal unit-
    /// propagates to conflict, so its negation is a backbone literal.
    pub failed_literals: Vec<Lit>,
}

/// Sorted-by-code, deduplicated copy; `None` for tautologies.
fn normalize(lits: &[Lit]) -> Option<Vec<Lit>> {
    let mut c = lits.to_vec();
    c.sort_unstable_by_key(|l| l.code());
    c.dedup();
    for w in c.windows(2) {
        if w[1].code() == w[0].code() + 1 && w[0].code() % 2 == 0 {
            return None;
        }
    }
    Some(c)
}

/// `true` when sorted clause `a` is a subset of sorted clause `b`.
fn is_subset(a: &[Lit], b: &[Lit]) -> bool {
    let mut j = 0;
    for &l in a {
        loop {
            if j == b.len() {
                return false;
            }
            if b[j] == l {
                j += 1;
                break;
            }
            if b[j].code() > l.code() {
                return false;
            }
            j += 1;
        }
    }
    true
}

/// `true` when sorted `a` minus `skip` is a subset of sorted `b`.
fn is_subset_except(a: &[Lit], skip: Lit, b: &[Lit]) -> bool {
    let mut j = 0;
    for &l in a {
        if l == skip {
            continue;
        }
        loop {
            if j == b.len() {
                return false;
            }
            if b[j] == l {
                j += 1;
                break;
            }
            if b[j].code() > l.code() {
                return false;
            }
            j += 1;
        }
    }
    true
}

/// Union-find over variable indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.parent[r] != r {
            r = self.parent[r];
        }
        let mut c = x;
        while self.parent[c] != r {
            let next = self.parent[c];
            self.parent[c] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Counter/scan unit propagation over normalized clauses, used by the
/// failed-literal probe (deliberately simple; probing is bounded).
struct Probe<'a> {
    clauses: &'a [Vec<Lit>],
    occ: Vec<Vec<usize>>,
    assign: Vec<i8>,
    trail: Vec<Lit>,
}

impl<'a> Probe<'a> {
    fn new(num_vars: usize, clauses: &'a [Vec<Lit>]) -> Probe<'a> {
        let mut occ = vec![Vec::new(); 2 * num_vars];
        for (ci, c) in clauses.iter().enumerate() {
            for l in c {
                occ[l.code()].push(ci);
            }
        }
        Probe {
            clauses,
            occ,
            assign: vec![0; num_vars],
            trail: Vec::new(),
        }
    }

    fn value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            -v
        }
    }

    fn assume(&mut self, l: Lit) {
        self.assign[l.var().index()] = if l.is_positive() { 1 } else { -1 };
        self.trail.push(l);
    }

    /// Propagates from trail position `head`; `true` on conflict.
    fn propagate(&mut self, mut head: usize) -> bool {
        while head < self.trail.len() {
            let falsified = !self.trail[head];
            head += 1;
            let mut k = 0;
            while k < self.occ[falsified.code()].len() {
                let ci = self.occ[falsified.code()][k];
                k += 1;
                let mut unassigned = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in &self.clauses[ci] {
                    match self.value(l) {
                        1 => {
                            satisfied = true;
                            break;
                        }
                        0 => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return true,
                    1 => self.assume(unassigned.expect("unit literal")),
                    _ => {}
                }
            }
        }
        false
    }

    fn rollback(&mut self, mark: usize) {
        for i in mark..self.trail.len() {
            let l = self.trail[i];
            self.assign[l.var().index()] = 0;
        }
        self.trail.truncate(mark);
    }
}

/// Statically analyzes a formula without modifying it.
///
/// # Examples
///
/// ```
/// use qca_sat::analyze::analyze;
/// use qca_sat::dimacs::parse_dimacs;
///
/// // Var 2 is pure (negative only); clause 2 is subsumed by clause 0.
/// let cnf = parse_dimacs("p cnf 3 3\n1 -2 0\n3 0\n1 -2 3 0\n".as_bytes()).unwrap();
/// let report = analyze(&cnf);
/// assert_eq!(report.units.len(), 1);
/// assert_eq!(report.pure_literals.len(), 2);
/// assert_eq!(report.subsumed, vec![2]);
/// ```
pub fn analyze(cnf: &Cnf) -> FormulaReport {
    let mut report = FormulaReport {
        num_vars: cnf.num_vars,
        num_clauses: cnf.clauses.len(),
        occurrences: vec![[0, 0]; cnf.num_vars],
        ..FormulaReport::default()
    };
    // Normalized, non-tautological clause bodies (with their original index).
    let mut bodies: Vec<Vec<Lit>> = Vec::new();
    let mut body_index: Vec<usize> = Vec::new();
    let mut seen: HashMap<Vec<Lit>, ()> = HashMap::new();
    let mut uf = UnionFind::new(cnf.num_vars);
    let mut used = vec![false; cnf.num_vars];
    for (ci, clause) in cnf.clauses.iter().enumerate() {
        let Some(body) = normalize(clause) else {
            report.tautologies.push(ci);
            continue;
        };
        for &l in &body {
            report.occurrences[l.var().index()][usize::from(!l.is_positive())] += 1;
            used[l.var().index()] = true;
        }
        for w in body.windows(2) {
            uf.union(w[0].var().index(), w[1].var().index());
        }
        if seen.insert(body.clone(), ()).is_some() {
            report.duplicates.push(ci);
            continue;
        }
        if body.len() == 1 {
            report.units.push(body[0]);
        }
        bodies.push(body);
        body_index.push(ci);
    }
    // Contradictory units.
    {
        let mut unit_sign = vec![0i8; cnf.num_vars];
        for &l in &report.units {
            let s = if l.is_positive() { 1 } else { -1 };
            let slot = &mut unit_sign[l.var().index()];
            if *slot == -s {
                report.contradictory_units.push(l.var());
            }
            *slot = s;
        }
        report.contradictory_units.sort_unstable();
        report.contradictory_units.dedup();
    }
    // Pure literals (unit-fixed variables excluded).
    let unit_vars: Vec<bool> = {
        let mut uv = vec![false; cnf.num_vars];
        for &l in &report.units {
            uv[l.var().index()] = true;
        }
        uv
    };
    for (v, &unit_fixed) in unit_vars.iter().enumerate() {
        let [p, n] = report.occurrences[v];
        if unit_fixed || p + n == 0 {
            continue;
        }
        if p == 0 {
            report.pure_literals.push(Var::from_index(v).negative());
        } else if n == 0 {
            report.pure_literals.push(Var::from_index(v).positive());
        }
    }
    // Subsumption: for each clause, scan the occurrence list of its rarest
    // literal for distinct supersets.
    {
        let mut occ = vec![Vec::new(); 2 * cnf.num_vars];
        for (bi, body) in bodies.iter().enumerate() {
            for l in body {
                occ[l.code()].push(bi);
            }
        }
        let mut subsumed = vec![false; bodies.len()];
        for (bi, body) in bodies.iter().enumerate() {
            let Some(&rarest) = body.iter().min_by_key(|l| occ[l.code()].len()) else {
                continue;
            };
            for &di in &occ[rarest.code()] {
                if di == bi || subsumed[di] {
                    continue;
                }
                let d = &bodies[di];
                if d.len() > body.len() && is_subset(body, d) {
                    subsumed[di] = true;
                }
            }
        }
        for (bi, &flag) in subsumed.iter().enumerate() {
            if flag {
                report.subsumed.push(body_index[bi]);
            }
        }
        report.subsumed.sort_unstable();
    }
    // Connected components.
    {
        let mut groups: HashMap<usize, Vec<Var>> = HashMap::new();
        for (v, &in_use) in used.iter().enumerate() {
            if in_use {
                let root = uf.find(v);
                groups.entry(root).or_default().push(Var::from_index(v));
            }
        }
        let mut components: Vec<Vec<Var>> = groups.into_values().collect();
        components.sort_by_key(|c| c[0]);
        report.components = components;
    }
    // Failed-literal probe over binary-clause literals, bounded.
    if report.contradictory_units.is_empty() {
        let mut probe = Probe::new(cnf.num_vars, &bodies);
        let mut base_conflict = false;
        for &l in &report.units {
            match probe.value(l) {
                1 => {}
                -1 => base_conflict = true,
                _ => probe.assume(l),
            }
        }
        if !base_conflict && !probe.propagate(0) {
            let base = probe.trail.len();
            let mut candidates: Vec<Lit> = bodies
                .iter()
                .filter(|b| b.len() == 2)
                .flat_map(|b| [!b[0], !b[1]])
                .collect();
            candidates.sort_unstable_by_key(|l| l.code());
            candidates.dedup();
            for cand in candidates.into_iter().take(MAX_PROBES) {
                if probe.value(cand) != 0 {
                    continue;
                }
                probe.assume(cand);
                let conflict = probe.propagate(base);
                probe.rollback(base);
                if conflict {
                    report.failed_literals.push(cand);
                }
            }
        }
    }
    report
}

/// Options for [`preprocess`].
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Variables that must survive preprocessing untouched by pure-literal
    /// elimination and variable elimination — required for any variable the
    /// caller will later pass as an assumption. (Unit-fixed variables always
    /// stay in the formula, so they need no freezing.)
    pub frozen: Vec<Var>,
    /// Maximum simplification rounds (each round runs every technique to a
    /// local fixpoint).
    pub max_rounds: usize,
    /// Variable elimination is skipped for variables with more total
    /// occurrences than this.
    pub bve_max_occurrences: usize,
    /// Variable elimination may grow the clause count by at most this many
    /// clauses per eliminated variable.
    pub bve_growth: usize,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            frozen: Vec::new(),
            max_rounds: 5,
            bve_max_occurrences: 16,
            bve_growth: 0,
        }
    }
}

/// Counters from one [`preprocess`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Variables fixed at the root (input units plus derived units).
    pub units: usize,
    /// Pure literals eliminated.
    pub pures: usize,
    /// Clauses removed by subsumption or duplicate detection.
    pub subsumed: usize,
    /// Clauses strengthened (a falsified or self-subsumed literal removed).
    pub strengthened: usize,
    /// Variables removed by bounded variable elimination.
    pub eliminated: usize,
    /// Tautological input clauses dropped.
    pub tautologies: usize,
    /// Simplification rounds executed.
    pub rounds: usize,
}

impl PreprocessStats {
    /// Emits the `sat.pre.*` counters on `tracer` (the names the engine's
    /// metrics registry folds into `/metrics`).
    pub fn emit(&self, tracer: &qca_trace::Tracer) {
        tracer.counter("sat.pre.units", self.units as u64);
        tracer.counter("sat.pre.pures", self.pures as u64);
        tracer.counter("sat.pre.subsumed", self.subsumed as u64);
        tracer.counter("sat.pre.eliminated", self.eliminated as u64);
    }
}

/// One entry of the model-reconstruction stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructStep {
    /// `lit` was pure: every clause containing it was deleted, and the
    /// extended model must make it true.
    Pure(Lit),
    /// `var` was eliminated by resolution; `clauses` are the clauses it
    /// occurred in at elimination time. The extended model picks the
    /// polarity satisfying all of them.
    Eliminated {
        /// The eliminated variable.
        var: Var,
        /// Its occurrence list at elimination time (both polarities).
        clauses: Vec<Vec<Lit>>,
    },
}

/// Records how to extend a simplified-formula model back to the original
/// variables; see the module docs for why replay order matters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reconstruction {
    steps: Vec<ReconstructStep>,
}

impl Reconstruction {
    /// The recorded steps, oldest first.
    pub fn steps(&self) -> &[ReconstructStep] {
        &self.steps
    }

    /// `true` when no variable needs reconstruction.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Extends (and where necessary overwrites) `model` so it satisfies the
    /// original formula, replaying the stack newest-first. Entries for
    /// variables the simplified formula no longer constrains are
    /// overwritten even when assigned: the solver's value for an absent
    /// variable is arbitrary. Unassigned entries are read as `false`, so a
    /// caller defaulting leftover `None`s must default them to `false` too.
    pub fn extend(&self, model: &mut [Option<bool>]) {
        let truthy = |model: &[Option<bool>], l: Lit| {
            model[l.var().index()].unwrap_or(false) == l.is_positive()
        };
        for step in self.steps.iter().rev() {
            match step {
                ReconstructStep::Pure(l) => {
                    model[l.var().index()] = Some(l.is_positive());
                }
                ReconstructStep::Eliminated { var, clauses } => {
                    let mut value = false;
                    for c in clauses {
                        let positive = c.iter().any(|&m| m == var.positive());
                        if positive && !c.iter().any(|&m| m.var() != *var && truthy(model, m)) {
                            value = true;
                            break;
                        }
                    }
                    model[var.index()] = Some(value);
                }
            }
        }
    }
}

/// Result of [`preprocess`].
#[derive(Debug, Clone)]
pub struct PreprocessResult {
    /// The simplified formula. Variable numbering and `num_vars` are
    /// unchanged; fixed variables remain as unit clauses. When
    /// preprocessing refutes the formula this is the single empty clause.
    pub cnf: Cnf,
    /// `true` when preprocessing derived the empty clause.
    pub unsat: bool,
    /// Technique counters.
    pub stats: PreprocessStats,
    /// Stack extending simplified models back to original variables.
    pub reconstruction: Reconstruction,
}

/// Simplifies `cnf` with proof logging; see the module docs for the
/// technique list and proof discipline.
///
/// `proof`, when present, receives every derived clause (additions before
/// the deletions they justify) so the stream prefixes a later solver proof
/// over the simplified formula.
///
/// # Examples
///
/// ```
/// use qca_sat::analyze::{preprocess, PreprocessOptions};
/// use qca_sat::dimacs::parse_dimacs;
///
/// let cnf = parse_dimacs("p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n".as_bytes()).unwrap();
/// let result = preprocess(&cnf, &PreprocessOptions::default(), None);
/// assert!(!result.unsat);
/// assert_eq!(result.stats.units, 3); // the whole chain is backbone
/// ```
pub fn preprocess(
    cnf: &Cnf,
    options: &PreprocessOptions,
    proof: Option<&mut dyn ProofSink>,
) -> PreprocessResult {
    let mut pre = Pre::new(cnf, options, proof);
    pre.run(options);
    pre.finish(cnf.num_vars)
}

/// Working state of one preprocessing run.
struct Pre<'a> {
    num_vars: usize,
    /// Clause bodies (sorted by literal code, deduplicated); `None` once
    /// removed.
    clauses: Vec<Option<Vec<Lit>>>,
    /// Literal code → ids of active clauses containing it (kept accurate).
    occ: Vec<Vec<usize>>,
    /// Root-level assignment of fixed variables.
    assign: Vec<Option<bool>>,
    /// Per variable: the id of the unit clause kept in the formula for it.
    kept_unit: Vec<Option<usize>>,
    frozen: Vec<bool>,
    queue: VecDeque<Lit>,
    proof: Option<&'a mut dyn ProofSink>,
    stats: PreprocessStats,
    recon: Vec<ReconstructStep>,
    unsat: bool,
}

impl<'a> Pre<'a> {
    fn new(cnf: &Cnf, options: &PreprocessOptions, proof: Option<&'a mut dyn ProofSink>) -> Self {
        let mut frozen = vec![false; cnf.num_vars];
        for v in &options.frozen {
            if v.index() < cnf.num_vars {
                frozen[v.index()] = true;
            }
        }
        let mut pre = Pre {
            num_vars: cnf.num_vars,
            clauses: Vec::new(),
            occ: vec![Vec::new(); 2 * cnf.num_vars],
            assign: vec![None; cnf.num_vars],
            kept_unit: vec![None; cnf.num_vars],
            frozen,
            queue: VecDeque::new(),
            proof,
            stats: PreprocessStats::default(),
            recon: Vec::new(),
            unsat: false,
        };
        let mut seen: HashMap<Vec<Lit>, ()> = HashMap::new();
        for clause in &cnf.clauses {
            if clause.is_empty() {
                pre.emit_add(&[]);
                pre.unsat = true;
                break;
            }
            let Some(body) = normalize(clause) else {
                pre.stats.tautologies += 1;
                continue;
            };
            if seen.insert(body.clone(), ()).is_some() {
                // Exact duplicate: delete the extra copy.
                pre.emit_delete(&body);
                pre.stats.subsumed += 1;
                continue;
            }
            pre.insert_clause(body);
        }
        pre
    }

    fn emit_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_deref_mut() {
            p.add_clause(lits);
        }
    }

    fn emit_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_deref_mut() {
            p.delete_clause(lits);
        }
    }

    fn insert_clause(&mut self, body: Vec<Lit>) -> usize {
        let ci = self.clauses.len();
        for l in &body {
            self.occ[l.code()].push(ci);
        }
        self.clauses.push(Some(body));
        ci
    }

    /// Detaches clause `ci` from the database, returning its body.
    fn detach(&mut self, ci: usize) -> Vec<Lit> {
        let body = self.clauses[ci].take().expect("detach of removed clause");
        for l in &body {
            self.occ[l.code()].retain(|&id| id != ci);
        }
        body
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|b| b == l.is_positive())
    }

    /// Fixes `l` at the root, recording `unit_clause` as the copy kept in
    /// the simplified formula. `false` on conflict.
    fn fix(&mut self, l: Lit, unit_clause: usize) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => {
                // Both [l] and [!l] are in the database, so the empty
                // clause is RUP.
                self.emit_add(&[]);
                self.unsat = true;
                false
            }
            None => {
                self.assign[l.var().index()] = Some(l.is_positive());
                self.kept_unit[l.var().index()] = Some(unit_clause);
                self.stats.units += 1;
                self.queue.push_back(l);
                true
            }
        }
    }

    /// Unit propagation to fixpoint: satisfied clauses are deleted (except
    /// each fixed variable's kept unit), falsified literals are removed by
    /// add-then-delete strengthening. Returns `true` when anything changed.
    fn propagate_units(&mut self) -> bool {
        let mut changed = false;
        // Pick up unit clauses created since the last call (input units,
        // SSR/BVE resolvents of length 1).
        for ci in 0..self.clauses.len() {
            if self.unsat {
                return changed;
            }
            let Some(body) = &self.clauses[ci] else {
                continue;
            };
            if body.len() == 1 {
                let l = body[0];
                if self.value(l).is_none() && !self.fix(l, ci) {
                    return true;
                }
            }
        }
        while let Some(l) = self.queue.pop_front() {
            changed = true;
            let kept = self.kept_unit[l.var().index()];
            // Clauses satisfied by l: delete all but the kept unit.
            for ci in self.occ[l.code()].clone() {
                if Some(ci) == kept || self.clauses[ci].is_none() {
                    continue;
                }
                let body = self.detach(ci);
                self.emit_delete(&body);
            }
            // Clauses containing !l: strengthen (or delete if satisfied by
            // some other fixed literal).
            for ci in self.occ[(!l).code()].clone() {
                let Some(body) = self.clauses[ci].clone() else {
                    continue;
                };
                if body.iter().any(|&m| self.value(m) == Some(true)) {
                    let body = self.detach(ci);
                    self.emit_delete(&body);
                    continue;
                }
                let stripped: Vec<Lit> = body
                    .iter()
                    .copied()
                    .filter(|&m| self.value(m).is_none())
                    .collect();
                if stripped.is_empty() {
                    // body was falsified outright: its negation unit-
                    // propagates from the kept units, so [] is RUP.
                    self.emit_add(&[]);
                    self.unsat = true;
                    return true;
                }
                self.emit_add(&stripped);
                self.emit_delete(&body);
                self.stats.strengthened += 1;
                let old = self.detach(ci);
                debug_assert_eq!(old, body);
                let ni = self.insert_clause(stripped.clone());
                if stripped.len() == 1 && !self.fix(stripped[0], ni) {
                    return true;
                }
            }
        }
        changed
    }

    /// Subsumption and self-subsuming resolution. Returns `true` when
    /// anything changed (units created here are only queued; the caller
    /// runs propagation next).
    fn subsume_pass(&mut self) -> bool {
        let mut changed = false;
        for ci in 0..self.clauses.len() {
            if self.unsat {
                return changed;
            }
            let Some(body) = self.clauses[ci].clone() else {
                continue;
            };
            // Backward subsumption via the rarest literal's occurrences.
            if let Some(&rarest) = body.iter().min_by_key(|l| self.occ[l.code()].len()) {
                for di in self.occ[rarest.code()].clone() {
                    if di == ci {
                        continue;
                    }
                    let Some(d) = &self.clauses[di] else {
                        continue;
                    };
                    if d.len() >= body.len() && is_subset(&body, d) {
                        let d = self.detach(di);
                        self.emit_delete(&d);
                        self.stats.subsumed += 1;
                        changed = true;
                    }
                }
            }
            // Self-subsuming resolution: D ∋ !l with body\{l} ⊆ D lets D
            // drop !l (the resolvent of body and D on l subsumes D).
            for &l in &body {
                for di in self.occ[(!l).code()].clone() {
                    let Some(d) = self.clauses[di].clone() else {
                        continue;
                    };
                    if d.len() < body.len() || !is_subset_except(&body, l, &d) {
                        continue;
                    }
                    let stripped: Vec<Lit> = d.iter().copied().filter(|&m| m != !l).collect();
                    if stripped.is_empty() {
                        self.emit_add(&[]);
                        self.unsat = true;
                        return true;
                    }
                    self.emit_add(&stripped);
                    self.emit_delete(&d);
                    self.stats.strengthened += 1;
                    changed = true;
                    self.detach(di);
                    let ni = self.insert_clause(stripped.clone());
                    if stripped.len() == 1 && !self.fix(stripped[0], ni) {
                        return true;
                    }
                }
            }
        }
        changed
    }

    /// Pure-literal elimination (deletion-only; model repaired by the
    /// reconstruction stack). Frozen and fixed variables are skipped.
    fn pure_pass(&mut self) -> bool {
        let mut changed = false;
        let mut progress = true;
        while progress && !self.unsat {
            progress = false;
            for v in 0..self.num_vars {
                if self.frozen[v] || self.assign[v].is_some() {
                    continue;
                }
                let var = Var::from_index(v);
                let p = self.occ[var.positive().code()].len();
                let n = self.occ[var.negative().code()].len();
                if p + n == 0 || (p > 0 && n > 0) {
                    continue;
                }
                let pure = if p > 0 {
                    var.positive()
                } else {
                    var.negative()
                };
                for ci in self.occ[pure.code()].clone() {
                    let body = self.detach(ci);
                    self.emit_delete(&body);
                }
                self.recon.push(ReconstructStep::Pure(pure));
                self.stats.pures += 1;
                changed = true;
                progress = true;
            }
        }
        changed
    }

    /// Bounded variable elimination: a variable within the occurrence cap
    /// is resolved away when its non-tautological resolvents do not grow
    /// the clause count beyond the allowance.
    fn bve_pass(&mut self, max_occ: usize, growth: usize) -> bool {
        let mut changed = false;
        let mut order: Vec<usize> = (0..self.num_vars)
            .filter(|&v| !self.frozen[v] && self.assign[v].is_none())
            .collect();
        order.sort_by_key(|&v| {
            let var = Var::from_index(v);
            self.occ[var.positive().code()].len() + self.occ[var.negative().code()].len()
        });
        for v in order {
            if self.unsat {
                return changed;
            }
            if self.assign[v].is_some() {
                continue; // fixed by a unit resolvent earlier in this pass
            }
            let var = Var::from_index(v);
            let pos_ids = self.occ[var.positive().code()].clone();
            let neg_ids = self.occ[var.negative().code()].clone();
            if pos_ids.is_empty() || neg_ids.is_empty() {
                continue; // pure or absent; not BVE's job
            }
            if pos_ids.len() + neg_ids.len() > max_occ {
                continue;
            }
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            for &pi in &pos_ids {
                let p = self.clauses[pi].clone().expect("active clause");
                for &ni in &neg_ids {
                    let n = self.clauses[ni].clone().expect("active clause");
                    let r: Vec<Lit> = p
                        .iter()
                        .chain(n.iter())
                        .copied()
                        .filter(|&m| m.var() != var)
                        .collect();
                    if let Some(body) = normalize(&r) {
                        resolvents.push(body);
                    }
                }
            }
            resolvents.sort();
            resolvents.dedup();
            if resolvents.len() > pos_ids.len() + neg_ids.len() + growth {
                continue;
            }
            // Commit: record the occurrence list, add every resolvent
            // (RUP against its still-present parents), then delete the
            // originals.
            let originals: Vec<Vec<Lit>> = pos_ids
                .iter()
                .chain(neg_ids.iter())
                .map(|&ci| self.clauses[ci].clone().expect("active clause"))
                .collect();
            self.recon.push(ReconstructStep::Eliminated {
                var,
                clauses: originals,
            });
            let mut new_units: Vec<usize> = Vec::new();
            for r in resolvents {
                self.emit_add(&r);
                if r.is_empty() {
                    self.unsat = true;
                    return true;
                }
                let ni = self.insert_clause(r.clone());
                if r.len() == 1 {
                    new_units.push(ni);
                }
            }
            for ci in pos_ids.into_iter().chain(neg_ids) {
                let body = self.detach(ci);
                self.emit_delete(&body);
            }
            for ni in new_units {
                if let Some(body) = self.clauses[ni].clone() {
                    if body.len() == 1 && !self.fix(body[0], ni) {
                        return true;
                    }
                }
            }
            self.stats.eliminated += 1;
            changed = true;
        }
        changed
    }

    fn run(&mut self, options: &PreprocessOptions) {
        for _ in 0..options.max_rounds.max(1) {
            if self.unsat {
                break;
            }
            let mut changed = self.propagate_units();
            if self.unsat {
                break;
            }
            changed |= self.subsume_pass();
            if self.unsat {
                break;
            }
            changed |= self.propagate_units();
            if self.unsat {
                break;
            }
            changed |= self.pure_pass();
            changed |= self.bve_pass(options.bve_max_occurrences, options.bve_growth);
            if self.unsat {
                break;
            }
            changed |= self.propagate_units();
            self.stats.rounds += 1;
            if !changed {
                break;
            }
        }
    }

    fn finish(self, num_vars: usize) -> PreprocessResult {
        let clauses = if self.unsat {
            vec![Vec::new()]
        } else {
            self.clauses.into_iter().flatten().collect()
        };
        PreprocessResult {
            cnf: Cnf { num_vars, clauses },
            unsat: self.unsat,
            stats: self.stats,
            reconstruction: Reconstruction { steps: self.recon },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimacs::parse_dimacs;

    fn cnf(text: &str) -> Cnf {
        parse_dimacs(text.as_bytes()).unwrap()
    }

    fn dimacs_clauses(c: &Cnf) -> Vec<Vec<i64>> {
        c.clauses
            .iter()
            .map(|cl| cl.iter().map(|l| l.to_dimacs()).collect())
            .collect()
    }

    #[test]
    fn analyze_reports_units_pures_and_tautologies() {
        let c = cnf("p cnf 4 4\n1 0\n-1 2 0\n3 -3 0\n-4 2 0\n");
        let r = analyze(&c);
        assert_eq!(r.units, vec![Lit::from_dimacs(1)]);
        assert_eq!(r.tautologies, vec![2]);
        // Var 2 occurs only positively, var 4 only negatively; var 1 is a
        // unit so it is excluded from the pure list.
        assert_eq!(
            r.pure_literals,
            vec![Lit::from_dimacs(2), Lit::from_dimacs(-4)]
        );
        assert_eq!(r.occurrences[0], [1, 1]);
    }

    #[test]
    fn analyze_finds_duplicates_and_subsumed() {
        let c = cnf("p cnf 3 4\n1 2 0\n2 1 0\n1 2 3 0\n3 0\n");
        let r = analyze(&c);
        assert_eq!(r.duplicates, vec![1]); // same clause, reordered
        assert_eq!(r.subsumed, vec![2]);
    }

    #[test]
    fn analyze_decomposes_components() {
        let c = cnf("p cnf 4 2\n1 2 0\n3 4 0\n");
        let r = analyze(&c);
        assert_eq!(r.components.len(), 2);
        assert_eq!(
            r.components[0],
            vec![Var::from_index(0), Var::from_index(1)]
        );
    }

    #[test]
    fn analyze_flags_contradictory_units() {
        let c = cnf("p cnf 2 3\n1 0\n-1 0\n2 0\n");
        let r = analyze(&c);
        assert_eq!(r.contradictory_units, vec![Var::from_index(0)]);
    }

    #[test]
    fn analyze_probe_finds_failed_literal() {
        // Asserting 1 propagates 2 (via -1 2 ... wait: probing candidates
        // are negations of binary-clause literals. (-1 2) and (-1 -2) make
        // the probe of 1 conflict, so 1 is failed and -1 is backbone.
        let c = cnf("p cnf 2 2\n-1 2 0\n-1 -2 0\n");
        let r = analyze(&c);
        assert!(r.failed_literals.contains(&Lit::from_dimacs(1)));
    }

    #[test]
    fn preprocess_fixes_backbone_chain() {
        let c = cnf("p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n");
        let r = preprocess(&c, &PreprocessOptions::default(), None);
        assert!(!r.unsat);
        assert_eq!(r.stats.units, 3);
        // All three variables stay as unit clauses.
        let mut units = dimacs_clauses(&r.cnf);
        units.sort();
        assert_eq!(units, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn preprocess_detects_root_conflict() {
        let c = cnf("p cnf 2 3\n1 0\n-1 2 0\n-2 -1 0\n");
        let r = preprocess(&c, &PreprocessOptions::default(), None);
        assert!(r.unsat);
        assert_eq!(r.cnf.clauses, vec![Vec::<Lit>::new()]);
    }

    #[test]
    fn preprocess_removes_subsumed_and_duplicate_clauses() {
        let c = cnf("p cnf 3 4\n1 2 0\n2 1 0\n1 2 3 0\n-1 -2 -3 0\n");
        let r = preprocess(&c, &PreprocessOptions::default(), None);
        assert!(!r.unsat);
        assert!(r.stats.subsumed >= 2);
    }

    #[test]
    fn preprocess_eliminates_pure_literals_with_reconstruction() {
        // Var 3 is pure negative; deleting its clauses empties the formula
        // for vars 1 and 2, which then become pure as well.
        let c = cnf("p cnf 3 2\n1 -3 0\n2 -3 0\n");
        let r = preprocess(&c, &PreprocessOptions::default(), None);
        assert!(!r.unsat);
        assert!(r.cnf.clauses.is_empty());
        let mut model: Vec<Option<bool>> = vec![None; 3];
        r.reconstruction.extend(&mut model);
        // The reconstructed model must satisfy the ORIGINAL clauses
        // (unassigned entries default to false).
        for clause in &c.clauses {
            assert!(clause
                .iter()
                .any(|&l| model[l.var().index()].unwrap_or(false) == l.is_positive()));
        }
    }

    #[test]
    fn preprocess_respects_frozen_variables() {
        let c = cnf("p cnf 3 2\n1 -3 0\n2 -3 0\n");
        let opts = PreprocessOptions {
            frozen: vec![Var::from_index(2)],
            ..PreprocessOptions::default()
        };
        let r = preprocess(&c, &opts, None);
        // A frozen variable's value must come from the solver, never from
        // reconstruction: no step may target var 3.
        for step in r.reconstruction.steps() {
            let v = match step {
                ReconstructStep::Pure(l) => l.var(),
                ReconstructStep::Eliminated { var, .. } => *var,
            };
            assert_ne!(v, Var::from_index(2), "frozen variable reconstructed");
        }
    }

    #[test]
    fn preprocess_bve_eliminates_a_definition() {
        // Vars 1 and 3 resolve away with only tautological resolvents;
        // var 2 then ends up unconstrained.
        let c = cnf("p cnf 3 4\n-1 2 0\n1 -2 0\n-2 3 0\n2 -3 0\n");
        let opts = PreprocessOptions {
            bve_growth: 2,
            ..PreprocessOptions::default()
        };
        let r = preprocess(&c, &opts, None);
        assert!(!r.unsat);
        assert!(r.stats.eliminated >= 1);
        let mut model: Vec<Option<bool>> = vec![None; 3];
        r.reconstruction.extend(&mut model);
        for clause in &c.clauses {
            assert!(
                clause
                    .iter()
                    .any(|&l| model[l.var().index()].unwrap_or(false) == l.is_positive()),
                "clause {clause:?} unsatisfied by {model:?}"
            );
        }
    }

    #[test]
    fn preprocess_proof_steps_are_added_before_deleted() {
        use crate::proof::{MemoryProof, ProofSink};
        let c = cnf("p cnf 3 3\n1 0\n-1 2 3 0\n-1 2 -3 0\n");
        let mut sink = MemoryProof::new();
        let r = preprocess(
            &c,
            &PreprocessOptions::default(),
            Some(&mut sink as &mut dyn ProofSink),
        );
        assert!(!r.unsat);
        assert!(!sink.is_empty());
        // Every strengthened clause appears as an Add before the original's
        // Delete — spot-check that at least one Add precedes some Delete.
        let steps = sink.steps();
        let first_add = steps.iter().position(|s| !s.is_delete());
        let first_del = steps.iter().position(|s| s.is_delete());
        if let (Some(a), Some(d)) = (first_add, first_del) {
            assert!(a < d || steps[d].lits().len() > steps[a].lits().len());
        }
    }

    #[test]
    fn preprocess_verdicts_match_raw_solver() {
        // Deterministic sweep over a few structured instances.
        for text in [
            "p cnf 3 3\n1 2 0\n-1 2 0\n-2 3 0\n",
            "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n",
            "p cnf 4 5\n1 0\n-1 2 0\n-2 3 4 0\n-3 0\n-4 2 0\n",
            "p cnf 1 2\n1 0\n-1 0\n",
        ] {
            let c = cnf(text);
            let raw = c.clone().into_solver().solve();
            let r = preprocess(&c, &PreprocessOptions::default(), None);
            let pre = r.cnf.clone().into_solver().solve();
            assert_eq!(raw, pre, "verdict drift on {text:?}");
        }
    }

    #[test]
    fn stats_emit_writes_counters() {
        let (tracer, sink) = qca_trace::Tracer::to_memory();
        let stats = PreprocessStats {
            units: 2,
            pures: 1,
            subsumed: 3,
            eliminated: 4,
            ..PreprocessStats::default()
        };
        stats.emit(&tracer);
        let totals = qca_trace::report::counter_totals(&sink.take());
        assert_eq!(totals.get("sat.pre.units"), Some(&2));
        assert_eq!(totals.get("sat.pre.pures"), Some(&1));
        assert_eq!(totals.get("sat.pre.subsumed"), Some(&3));
        assert_eq!(totals.get("sat.pre.eliminated"), Some(&4));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_cnf(
            max_vars: usize,
            max_clauses: usize,
        ) -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
            (2..=max_vars).prop_flat_map(move |n| {
                let clause = proptest::collection::vec(
                    (1..=n as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
                    1..=3,
                );
                (Just(n), proptest::collection::vec(clause, 1..=max_clauses))
            })
        }

        fn to_cnf(n: usize, clauses: &[Vec<i32>]) -> Cnf {
            Cnf {
                num_vars: n,
                clauses: clauses
                    .iter()
                    .map(|c| c.iter().map(|&d| Lit::from_dimacs(d as i64)).collect())
                    .collect(),
            }
        }

        fn brute_force_sat(n: usize, clauses: &[Vec<Lit>]) -> bool {
            for bits in 0..(1u32 << n) {
                if clauses.iter().all(|c| {
                    c.iter()
                        .any(|l| ((bits >> l.var().index()) & 1 == 1) == l.is_positive())
                }) {
                    return true;
                }
            }
            false
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn simplified_is_equisatisfiable((n, clauses) in arb_cnf(8, 24)) {
                let c = to_cnf(n, &clauses);
                let original = brute_force_sat(n, &c.clauses);
                let r = preprocess(&c, &PreprocessOptions::default(), None);
                let simplified = !r.unsat && brute_force_sat(n, &r.cnf.clauses);
                prop_assert_eq!(original, simplified);
            }

            #[test]
            fn reconstructed_models_satisfy_original((n, clauses) in arb_cnf(8, 24)) {
                let c = to_cnf(n, &clauses);
                let r = preprocess(&c, &PreprocessOptions::default(), None);
                if r.unsat {
                    return;
                }
                let mut solver = r.cnf.clone().into_solver();
                if solver.solve() {
                    let mut model: Vec<Option<bool>> = (0..n)
                        .map(|i| solver.value(Var::from_index(i)))
                        .collect();
                    r.reconstruction.extend(&mut model);
                    for clause in &c.clauses {
                        prop_assert!(
                            clause.iter().any(|&l| {
                                model[l.var().index()].unwrap_or(false) == l.is_positive()
                            }),
                            "clause {:?} unsatisfied by {:?}", clause, model
                        );
                    }
                }
            }

            #[test]
            fn frozen_vars_survive((n, clauses) in arb_cnf(6, 16)) {
                let opts = PreprocessOptions {
                    frozen: (0..n).map(Var::from_index).collect(),
                    ..PreprocessOptions::default()
                };
                let c = to_cnf(n, &clauses);
                let r = preprocess(&c, &opts, None);
                // With everything frozen, the reconstruction stack must be
                // empty: only units (kept in-formula) may fire.
                prop_assert!(r.reconstruction.is_empty());
            }
        }
    }
}
