//! CNF encoding helpers.
//!
//! Gate-level Tseitin encodings (AND/OR/IFF/implication) and cardinality
//! constraints (pairwise and sequential-counter at-most-one, sequential
//! at-most-k). The SMT layer uses these to encode substitution-conflict and
//! selection structure.

use crate::lit::Lit;
use crate::solver::Solver;

/// Adds clauses asserting `out <-> (a AND b)`.
pub fn encode_and(s: &mut Solver, out: Lit, a: Lit, b: Lit) {
    s.add_clause(&[!out, a]);
    s.add_clause(&[!out, b]);
    s.add_clause(&[out, !a, !b]);
}

/// Adds clauses asserting `out <-> (a OR b)`.
pub fn encode_or(s: &mut Solver, out: Lit, a: Lit, b: Lit) {
    s.add_clause(&[out, !a]);
    s.add_clause(&[out, !b]);
    s.add_clause(&[!out, a, b]);
}

/// Adds clauses asserting `out <-> (a XOR b)`.
pub fn encode_xor(s: &mut Solver, out: Lit, a: Lit, b: Lit) {
    s.add_clause(&[!out, a, b]);
    s.add_clause(&[!out, !a, !b]);
    s.add_clause(&[out, !a, b]);
    s.add_clause(&[out, a, !b]);
}

/// Adds clauses asserting `a -> b`.
pub fn encode_implies(s: &mut Solver, a: Lit, b: Lit) {
    s.add_clause(&[!a, b]);
}

/// Adds clauses asserting `out <-> conjunction of lits`.
///
/// # Panics
///
/// Panics if `lits` is empty.
pub fn encode_and_many(s: &mut Solver, out: Lit, lits: &[Lit]) {
    assert!(!lits.is_empty(), "conjunction of zero literals");
    let mut long = Vec::with_capacity(lits.len() + 1);
    long.push(out);
    for &l in lits {
        s.add_clause(&[!out, l]);
        long.push(!l);
    }
    s.add_clause(&long);
}

/// Adds clauses asserting `out <-> disjunction of lits`.
///
/// # Panics
///
/// Panics if `lits` is empty.
pub fn encode_or_many(s: &mut Solver, out: Lit, lits: &[Lit]) {
    assert!(!lits.is_empty(), "disjunction of zero literals");
    let mut long = Vec::with_capacity(lits.len() + 1);
    long.push(!out);
    for &l in lits {
        s.add_clause(&[out, !l]);
        long.push(l);
    }
    s.add_clause(&long);
}

/// At-most-one over `lits` using the quadratic pairwise encoding.
///
/// Best for small sets (the substitution-conflict constraints of the paper
/// are pairwise by construction, Eq. 1).
pub fn at_most_one_pairwise(s: &mut Solver, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            s.add_clause(&[!lits[i], !lits[j]]);
        }
    }
}

/// At-most-one over `lits` using the sequential (ladder) encoding with
/// auxiliary variables; linear in clause count.
pub fn at_most_one_sequential(s: &mut Solver, lits: &[Lit]) {
    if lits.len() <= 4 {
        at_most_one_pairwise(s, lits);
        return;
    }
    // s_i = "some literal among lits[0..=i] is true"
    let mut prev = lits[0];
    for &l in &lits[1..] {
        let si = s.new_var().positive();
        // prev true -> si true; l true -> si true; l true -> prev false
        s.add_clause(&[!prev, si]);
        s.add_clause(&[!l, si]);
        s.add_clause(&[!l, !prev]);
        prev = si;
    }
}

/// Exactly-one over `lits`: at-most-one plus the covering clause.
///
/// # Panics
///
/// Panics if `lits` is empty.
pub fn exactly_one(s: &mut Solver, lits: &[Lit]) {
    assert!(!lits.is_empty(), "exactly-one over zero literals");
    s.add_clause(lits);
    at_most_one_sequential(s, lits);
}

/// At-most-`k` over `lits` with the sequential-counter encoding
/// (Sinz 2005). Creates `O(n*k)` auxiliary variables and clauses.
pub fn at_most_k(s: &mut Solver, lits: &[Lit], k: usize) {
    let n = lits.len();
    if n <= k {
        return;
    }
    if k == 0 {
        for &l in lits {
            s.add_clause(&[!l]);
        }
        return;
    }
    // r[i][j] = "at least j+1 of lits[0..=i] are true"
    let mut r: Vec<Vec<Lit>> = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<Lit> = (0..k).map(|_| s.new_var().positive()).collect();
        r.push(row);
        // lits[i] -> r[i][0]
        s.add_clause(&[!lits[i], r[i][0]]);
        if i > 0 {
            for (rj, prev) in r[i].clone().iter().zip(&r[i - 1].clone()) {
                // r[i-1][j] -> r[i][j]
                s.add_clause(&[!*prev, *rj]);
            }
            for j in 1..k {
                // lits[i] & r[i-1][j-1] -> r[i][j]
                s.add_clause(&[!lits[i], !r[i - 1][j - 1], r[i][j]]);
            }
            // overflow: lits[i] & r[i-1][k-1] -> false
            s.add_clause(&[!lits[i], !r[i - 1][k - 1]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn fresh(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    fn count_true(s: &Solver, lits: &[Lit]) -> usize {
        lits.iter()
            .filter(|&&l| s.lit_value_in_model(l) == Some(true))
            .count()
    }

    #[test]
    fn and_gate_truth_table() {
        for (av, bv, expect) in [
            (true, true, true),
            (true, false, false),
            (false, true, false),
        ] {
            let mut s = Solver::new();
            let out = s.new_var().positive();
            let a = s.new_var().positive();
            let b = s.new_var().positive();
            encode_and(&mut s, out, a, b);
            s.add_clause(&[if av { a } else { !a }]);
            s.add_clause(&[if bv { b } else { !b }]);
            assert!(s.solve());
            assert_eq!(s.lit_value_in_model(out), Some(expect));
        }
    }

    #[test]
    fn or_gate_truth_table() {
        for (av, bv, expect) in [
            (false, false, false),
            (true, false, true),
            (false, true, true),
        ] {
            let mut s = Solver::new();
            let out = s.new_var().positive();
            let a = s.new_var().positive();
            let b = s.new_var().positive();
            encode_or(&mut s, out, a, b);
            s.add_clause(&[if av { a } else { !a }]);
            s.add_clause(&[if bv { b } else { !b }]);
            assert!(s.solve());
            assert_eq!(s.lit_value_in_model(out), Some(expect));
        }
    }

    #[test]
    fn xor_gate_truth_table() {
        for (av, bv) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut s = Solver::new();
            let out = s.new_var().positive();
            let a = s.new_var().positive();
            let b = s.new_var().positive();
            encode_xor(&mut s, out, a, b);
            s.add_clause(&[if av { a } else { !a }]);
            s.add_clause(&[if bv { b } else { !b }]);
            assert!(s.solve());
            assert_eq!(s.lit_value_in_model(out), Some(av ^ bv));
        }
    }

    #[test]
    fn and_many_requires_all() {
        let mut s = Solver::new();
        let out = s.new_var().positive();
        let lits = fresh(&mut s, 4);
        encode_and_many(&mut s, out, &lits);
        s.add_clause(&[out]);
        assert!(s.solve());
        assert_eq!(count_true(&s, &lits), 4);
    }

    #[test]
    fn or_many_blocks_all_false() {
        let mut s = Solver::new();
        let out = s.new_var().positive();
        let lits = fresh(&mut s, 3);
        encode_or_many(&mut s, out, &lits);
        s.add_clause(&[out]);
        for &l in &lits[..2] {
            s.add_clause(&[!l]);
        }
        assert!(s.solve());
        assert_eq!(s.lit_value_in_model(lits[2]), Some(true));
    }

    #[test]
    fn pairwise_amo_blocks_two() {
        let mut s = Solver::new();
        let lits = fresh(&mut s, 4);
        at_most_one_pairwise(&mut s, &lits);
        s.add_clause(&[lits[0]]);
        s.add_clause(&[lits[2]]);
        assert!(!s.solve());
    }

    #[test]
    fn sequential_amo_allows_one() {
        let mut s = Solver::new();
        let lits = fresh(&mut s, 10);
        at_most_one_sequential(&mut s, &lits);
        s.add_clause(&[lits[7]]);
        assert!(s.solve());
        assert_eq!(count_true(&s, &lits), 1);
    }

    #[test]
    fn sequential_amo_blocks_two() {
        let mut s = Solver::new();
        let lits = fresh(&mut s, 10);
        at_most_one_sequential(&mut s, &lits);
        s.add_clause(&[lits[3]]);
        s.add_clause(&[lits[8]]);
        assert!(!s.solve());
    }

    #[test]
    fn exactly_one_forces_a_choice() {
        let mut s = Solver::new();
        let lits = fresh(&mut s, 6);
        exactly_one(&mut s, &lits);
        for &l in &lits[..5] {
            s.add_clause(&[!l]);
        }
        assert!(s.solve());
        assert_eq!(s.lit_value_in_model(lits[5]), Some(true));
    }

    #[test]
    fn at_most_k_boundary() {
        for k in 1..4usize {
            // forcing k literals is fine; forcing k+1 is unsat
            let mut s = Solver::new();
            let lits = fresh(&mut s, 6);
            at_most_k(&mut s, &lits, k);
            for &l in lits.iter().take(k) {
                s.add_clause(&[l]);
            }
            assert!(s.solve(), "k={k} exact bound should be sat");

            let mut s2 = Solver::new();
            let lits2 = fresh(&mut s2, 6);
            at_most_k(&mut s2, &lits2, k);
            for &l in lits2.iter().take(k + 1) {
                s2.add_clause(&[l]);
            }
            assert!(!s2.solve(), "k={k} bound+1 should be unsat");
        }
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut s = Solver::new();
        let lits = fresh(&mut s, 3);
        at_most_k(&mut s, &lits, 0);
        assert!(s.solve());
        assert_eq!(count_true(&s, &lits), 0);
        let v: Var = lits[0].var();
        assert_eq!(s.value(v), Some(false));
    }
}
