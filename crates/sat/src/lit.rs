//! Variables and literals.
//!
//! [`Var`] and [`Lit`] are index newtypes in the MiniSat tradition: a literal
//! packs a variable index and a sign into one `u32`, so watch lists and
//! assignment vectors can be indexed directly by `lit.code()`.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index.
///
/// Create variables through [`Solver::new_var`](crate::Solver::new_var) so the
/// solver's internal vectors stay in sync.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Constructs a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign
    /// (`true` means positive).
    #[inline]
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// # Examples
///
/// ```
/// use qca_sat::{Var, Lit};
/// let v = Var::from_index(3);
/// let p: Lit = v.positive();
/// assert_eq!(!p, v.negative());
/// assert_eq!(p.var(), v);
/// assert!(p.is_positive());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive (non-negated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code usable as an array index (`2*var + sign`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts from DIMACS convention: positive integers are positive
    /// literals of variable `n-1`, negative integers are negations.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Lit {
        assert!(dimacs != 0, "DIMACS literal must be nonzero");
        let var = Var((dimacs.unsigned_abs() - 1) as u32);
        var.lit(dimacs > 0)
    }

    /// Converts to the DIMACS integer convention.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().0 + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment state of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Builds from a Boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Negation; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_negation_round_trip() {
        let v = Var::from_index(7);
        assert_eq!(!(!v.positive()), v.positive());
        assert_eq!(!v.positive(), v.negative());
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
    }

    #[test]
    fn dimacs_round_trip() {
        for d in [1i64, -1, 5, -42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn code_round_trip() {
        let l = Var::from_index(12).negative();
        assert_eq!(Lit::from_code(l.code()), l);
    }

    #[test]
    fn lbool_negate() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::from_bool(true), LBool::True);
    }
}
