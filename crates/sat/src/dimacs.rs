//! DIMACS CNF reading and writing.
//!
//! Supports the standard `p cnf <vars> <clauses>` header, `c` comment lines,
//! and zero-terminated clause lines (possibly spanning multiple lines).

use crate::lit::{Lit, Var};
use crate::solver::Solver;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced when parsing a DIMACS CNF stream.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a human-readable explanation.
    Malformed(String),
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error: {e}"),
            ParseDimacsError::Malformed(m) => write!(f, "malformed dimacs: {m}"),
        }
    }
}

impl Error for ParseDimacsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDimacsError::Io(e) => Some(e),
            ParseDimacsError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ParseDimacsError {
    fn from(e: std::io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// A parsed CNF formula.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the header (or inferred).
    pub num_vars: usize,
    /// The clauses, as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the formula into a fresh [`Solver`], allocating variables
    /// `0..num_vars`.
    ///
    /// Returns the solver, which may already be unsatisfiable at level 0.
    pub fn into_solver(self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            if !s.add_clause(c) {
                break;
            }
        }
        s
    }
}

/// A parse-level observation that does not prevent parsing.
///
/// These are the conditions a solver would otherwise discover (or silently
/// absorb) at load time; reporting them from the parser lets tooling point
/// at the *input* rather than at solver behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsWarning {
    /// Clause `clause` (0-based) listed `lit` more than once; the extra
    /// copies were canonicalized away.
    DuplicateLiteral {
        /// 0-based index of the clause in the parsed formula.
        clause: usize,
        /// The repeated literal.
        lit: Lit,
    },
    /// Unit clauses assert both polarities of `var`: the formula is
    /// trivially unsatisfiable at the root, which almost always means a
    /// generator bug rather than a genuinely hard instance.
    ContradictoryUnits {
        /// The doubly-asserted variable.
        var: Var,
    },
}

impl fmt::Display for DimacsWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsWarning::DuplicateLiteral { clause, lit } => {
                write!(f, "clause {} repeats literal {}", clause, lit.to_dimacs())
            }
            DimacsWarning::ContradictoryUnits { var } => {
                write!(
                    f,
                    "unit clauses assert both {} and {}",
                    var.positive().to_dimacs(),
                    var.negative().to_dimacs()
                )
            }
        }
    }
}

/// Parses a DIMACS CNF stream.
///
/// Duplicate literals within a clause are canonicalized away (first
/// occurrence kept); use [`parse_dimacs_with_report`] to observe them and
/// other parse-level diagnostics.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on I/O failure, non-integer tokens, literals
/// referencing variable 0, or a clause not terminated by `0`.
///
/// # Examples
///
/// ```
/// use qca_sat::dimacs::parse_dimacs;
/// let text = "c example\np cnf 2 2\n1 -2 0\n2 0\n";
/// let cnf = parse_dimacs(text.as_bytes())?;
/// assert_eq!(cnf.num_vars, 2);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok::<(), qca_sat::dimacs::ParseDimacsError>(())
/// ```
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<Cnf, ParseDimacsError> {
    parse_dimacs_with_report(reader).map(|(cnf, _)| cnf)
}

/// [`parse_dimacs`] plus the parse-level diagnostics: duplicate literals
/// inside a clause (canonicalized away) and contradictory unit clauses
/// (reported here instead of being left for the solver to "solve" to
/// UNSAT).
///
/// # Errors
///
/// Same as [`parse_dimacs`].
///
/// # Examples
///
/// ```
/// use qca_sat::dimacs::{parse_dimacs_with_report, DimacsWarning};
/// let text = "p cnf 2 3\n1 1 -2 0\n2 0\n-2 0\n";
/// let (cnf, warnings) = parse_dimacs_with_report(text.as_bytes())?;
/// assert_eq!(cnf.clauses[0].len(), 2); // duplicate 1 canonicalized
/// assert_eq!(warnings.len(), 2);
/// assert!(matches!(warnings[1], DimacsWarning::ContradictoryUnits { .. }));
/// # Ok::<(), qca_sat::dimacs::ParseDimacsError>(())
/// ```
pub fn parse_dimacs_with_report<R: BufRead>(
    reader: R,
) -> Result<(Cnf, Vec<DimacsWarning>), ParseDimacsError> {
    let mut cnf = Cnf::default();
    let mut warnings = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut declared_vars: Option<usize> = None;
    let mut max_var = 0usize;
    // Unit-clause polarity per variable: +1, -1, or 2 once contradictory
    // (so each variable is reported once).
    let mut unit_sign: Vec<i8> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(ParseDimacsError::Malformed(format!(
                    "bad problem line: {trimmed:?}"
                )));
            }
            let nv: usize = parts[1]
                .parse()
                .map_err(|_| ParseDimacsError::Malformed("bad var count".into()))?;
            declared_vars = Some(nv);
            continue;
        }
        for tok in trimmed.split_whitespace() {
            let val: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::Malformed(format!("bad token {tok:?}")))?;
            if val == 0 {
                // Canonicalize: drop repeated literals, keeping first
                // occurrences in order.
                let mut canonical: Vec<Lit> = Vec::with_capacity(current.len());
                for &lit in &current {
                    if canonical.contains(&lit) {
                        if !warnings.contains(&DimacsWarning::DuplicateLiteral {
                            clause: cnf.clauses.len(),
                            lit,
                        }) {
                            warnings.push(DimacsWarning::DuplicateLiteral {
                                clause: cnf.clauses.len(),
                                lit,
                            });
                        }
                    } else {
                        canonical.push(lit);
                    }
                }
                current.clear();
                if canonical.len() == 1 {
                    let l = canonical[0];
                    let idx = l.var().index();
                    if idx >= unit_sign.len() {
                        unit_sign.resize(idx + 1, 0);
                    }
                    let s: i8 = if l.is_positive() { 1 } else { -1 };
                    if unit_sign[idx] == -s {
                        warnings.push(DimacsWarning::ContradictoryUnits { var: l.var() });
                        unit_sign[idx] = 2;
                    } else if unit_sign[idx] != 2 {
                        unit_sign[idx] = s;
                    }
                }
                cnf.clauses.push(canonical);
            } else {
                let lit = Lit::from_dimacs(val);
                max_var = max_var.max(lit.var().index() + 1);
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::Malformed(
            "final clause not terminated by 0".into(),
        ));
    }
    cnf.num_vars = declared_vars.unwrap_or(max_var).max(max_var);
    Ok((cnf, warnings))
}

/// Writes a formula in DIMACS CNF format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dimacs<W: Write>(w: &mut W, cnf: &Cnf) -> std::io::Result<()> {
    writeln!(w, "p cnf {} {}", cnf.num_vars, cnf.clauses.len())?;
    for c in &cnf.clauses {
        for l in c {
            write!(w, "{} ", l.to_dimacs())?;
        }
        writeln!(w, "0")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn parse_simple() {
        let text = "c hi\np cnf 3 2\n1 -3 0\n2 3 -1 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0][1], Var::from_index(2).negative());
    }

    #[test]
    fn parse_multiline_clause() {
        let text = "p cnf 2 1\n1\n-2\n0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn unterminated_clause_is_error() {
        let text = "p cnf 2 1\n1 -2\n";
        assert!(parse_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn bad_token_is_error() {
        let text = "p cnf 2 1\n1 x 0\n";
        assert!(parse_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 3 2\n1 -3 0\n2 3 -1 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_dimacs(&mut out, &cnf).unwrap();
        let reparsed = parse_dimacs(&out[..]).unwrap();
        assert_eq!(cnf, reparsed);
    }

    #[test]
    fn into_solver_solves() {
        let text = "p cnf 2 2\n1 2 0\n-1 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        let mut s = cnf.into_solver();
        assert!(s.solve());
        assert_eq!(s.value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn header_less_file_infers_vars() {
        let text = "1 -4 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_vars, 4);
    }

    #[test]
    fn duplicate_literals_are_canonicalized() {
        let text = "p cnf 3 2\n1 2 1 1 0\n-3 -3 0\n";
        let (cnf, warnings) = parse_dimacs_with_report(text.as_bytes()).unwrap();
        assert_eq!(
            cnf.clauses[0],
            vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]
        );
        assert_eq!(cnf.clauses[1], vec![Lit::from_dimacs(-3)]);
        // One warning per (clause, literal) pair, not per extra copy.
        assert_eq!(
            warnings,
            vec![
                DimacsWarning::DuplicateLiteral {
                    clause: 0,
                    lit: Lit::from_dimacs(1)
                },
                DimacsWarning::DuplicateLiteral {
                    clause: 1,
                    lit: Lit::from_dimacs(-3)
                },
            ]
        );
    }

    #[test]
    fn opposite_polarities_are_not_duplicates() {
        // (x | !x) is a tautology, not a duplicate: both literals survive.
        let text = "p cnf 1 1\n1 -1 0\n";
        let (cnf, warnings) = parse_dimacs_with_report(text.as_bytes()).unwrap();
        assert_eq!(cnf.clauses[0].len(), 2);
        assert!(warnings.is_empty());
    }

    #[test]
    fn contradictory_units_are_reported_once() {
        let text = "p cnf 2 5\n1 0\n-1 0\n1 0\n-1 0\n2 0\n";
        let (cnf, warnings) = parse_dimacs_with_report(text.as_bytes()).unwrap();
        assert_eq!(cnf.clauses.len(), 5);
        assert_eq!(
            warnings,
            vec![DimacsWarning::ContradictoryUnits {
                var: Var::from_index(0)
            }]
        );
    }

    #[test]
    fn clean_file_has_no_warnings() {
        let text = "p cnf 3 3\n1 -3 0\n2 3 -1 0\n-2 0\n";
        let (_, warnings) = parse_dimacs_with_report(text.as_bytes()).unwrap();
        assert!(warnings.is_empty());
    }

    #[test]
    fn warning_display_is_dimacs_flavoured() {
        let w = DimacsWarning::DuplicateLiteral {
            clause: 3,
            lit: Lit::from_dimacs(-2),
        };
        assert_eq!(w.to_string(), "clause 3 repeats literal -2");
        let w = DimacsWarning::ContradictoryUnits {
            var: Var::from_index(4),
        };
        assert_eq!(w.to_string(), "unit clauses assert both 5 and -5");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary DIMACS text for a well-formed CNF (clauses may repeat
    /// literals, which the parser canonicalizes).
    fn arb_dimacs() -> impl Strategy<Value = String> {
        let clause = proptest::collection::vec(
            (1i64..=6).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
            1..=4,
        );
        proptest::collection::vec(clause, 0..=12).prop_map(|clauses| {
            let mut s = String::from("p cnf 6 0\n");
            for c in &clauses {
                for l in c {
                    s.push_str(&format!("{l} "));
                }
                s.push_str("0\n");
            }
            s
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// export → parse is the identity on already-canonical formulas:
        /// one parse canonicalizes, and the canonical form is a fixpoint.
        #[test]
        fn write_then_parse_round_trips(text in arb_dimacs()) {
            let (cnf, _) = parse_dimacs_with_report(text.as_bytes()).unwrap();
            let mut out = Vec::new();
            write_dimacs(&mut out, &cnf).unwrap();
            let (reparsed, warnings) = parse_dimacs_with_report(&out[..]).unwrap();
            prop_assert_eq!(&cnf, &reparsed);
            prop_assert!(
                warnings
                    .iter()
                    .all(|w| !matches!(w, DimacsWarning::DuplicateLiteral { .. })),
                "canonical output reparsed with duplicate warnings: {:?}",
                warnings
            );
            for c in &reparsed.clauses {
                for (i, l) in c.iter().enumerate() {
                    prop_assert!(!c[..i].contains(l), "duplicate literal survived");
                }
            }
        }
    }
}
