//! DIMACS CNF reading and writing.
//!
//! Supports the standard `p cnf <vars> <clauses>` header, `c` comment lines,
//! and zero-terminated clause lines (possibly spanning multiple lines).

use crate::lit::Lit;
use crate::solver::Solver;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced when parsing a DIMACS CNF stream.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a human-readable explanation.
    Malformed(String),
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error: {e}"),
            ParseDimacsError::Malformed(m) => write!(f, "malformed dimacs: {m}"),
        }
    }
}

impl Error for ParseDimacsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDimacsError::Io(e) => Some(e),
            ParseDimacsError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ParseDimacsError {
    fn from(e: std::io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// A parsed CNF formula.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the header (or inferred).
    pub num_vars: usize,
    /// The clauses, as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the formula into a fresh [`Solver`], allocating variables
    /// `0..num_vars`.
    ///
    /// Returns the solver, which may already be unsatisfiable at level 0.
    pub fn into_solver(self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            if !s.add_clause(c) {
                break;
            }
        }
        s
    }
}

/// Parses a DIMACS CNF stream.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on I/O failure, non-integer tokens, literals
/// referencing variable 0, or a clause not terminated by `0`.
///
/// # Examples
///
/// ```
/// use qca_sat::dimacs::parse_dimacs;
/// let text = "c example\np cnf 2 2\n1 -2 0\n2 0\n";
/// let cnf = parse_dimacs(text.as_bytes())?;
/// assert_eq!(cnf.num_vars, 2);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok::<(), qca_sat::dimacs::ParseDimacsError>(())
/// ```
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::default();
    let mut current: Vec<Lit> = Vec::new();
    let mut declared_vars: Option<usize> = None;
    let mut max_var = 0usize;
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(ParseDimacsError::Malformed(format!(
                    "bad problem line: {trimmed:?}"
                )));
            }
            let nv: usize = parts[1]
                .parse()
                .map_err(|_| ParseDimacsError::Malformed("bad var count".into()))?;
            declared_vars = Some(nv);
            continue;
        }
        for tok in trimmed.split_whitespace() {
            let val: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::Malformed(format!("bad token {tok:?}")))?;
            if val == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                let lit = Lit::from_dimacs(val);
                max_var = max_var.max(lit.var().index() + 1);
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::Malformed(
            "final clause not terminated by 0".into(),
        ));
    }
    cnf.num_vars = declared_vars.unwrap_or(max_var).max(max_var);
    Ok(cnf)
}

/// Writes a formula in DIMACS CNF format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dimacs<W: Write>(w: &mut W, cnf: &Cnf) -> std::io::Result<()> {
    writeln!(w, "p cnf {} {}", cnf.num_vars, cnf.clauses.len())?;
    for c in &cnf.clauses {
        for l in c {
            write!(w, "{} ", l.to_dimacs())?;
        }
        writeln!(w, "0")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn parse_simple() {
        let text = "c hi\np cnf 3 2\n1 -3 0\n2 3 -1 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0][1], Var::from_index(2).negative());
    }

    #[test]
    fn parse_multiline_clause() {
        let text = "p cnf 2 1\n1\n-2\n0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn unterminated_clause_is_error() {
        let text = "p cnf 2 1\n1 -2\n";
        assert!(parse_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn bad_token_is_error() {
        let text = "p cnf 2 1\n1 x 0\n";
        assert!(parse_dimacs(text.as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 3 2\n1 -3 0\n2 3 -1 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_dimacs(&mut out, &cnf).unwrap();
        let reparsed = parse_dimacs(&out[..]).unwrap();
        assert_eq!(cnf, reparsed);
    }

    #[test]
    fn into_solver_solves() {
        let text = "p cnf 2 2\n1 2 0\n-1 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        let mut s = cnf.into_solver();
        assert!(s.solve());
        assert_eq!(s.value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn header_less_file_infers_vars() {
        let text = "1 -4 0\n";
        let cnf = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_vars, 4);
    }
}
