//! # qca-sat
//!
//! A from-scratch conflict-driven clause-learning (CDCL) SAT solver, built as
//! the decision core for the SMT engine that powers SAT-based quantum circuit
//! adaptation (Brandhofer et al., DATE 2023).
//!
//! Features:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP clause learning with basic minimization,
//! * VSIDS branching with phase saving,
//! * Luby restarts and learnt-clause database reduction,
//! * incremental solving under assumptions with unsat-core extraction,
//! * DIMACS CNF I/O ([`dimacs`]) and CNF encoding helpers ([`encode`]),
//! * DRAT proof logging ([`proof`]) for independent UNSAT certification,
//! * static formula analysis and a proof-logging, model-reconstructing
//!   preprocessor ([`mod@analyze`]) whose derivations verify against the
//!   original formula.
//!
//! # Examples
//!
//! ```
//! use qca_sat::Solver;
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! // (x | y) & (!x | y)  =>  y
//! solver.add_clause(&[x.positive(), y.positive()]);
//! solver.add_clause(&[x.negative(), y.positive()]);
//! assert!(solver.solve());
//! assert_eq!(solver.value(y), Some(true));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod config;
pub mod dimacs;
pub mod encode;
pub mod exchange;
mod heap;
mod lit;
pub mod proof;
mod solver;

pub use analyze::{
    analyze, preprocess, FormulaReport, PreprocessOptions, PreprocessResult, PreprocessStats,
    Reconstruction,
};
pub use config::{ConfigError, PhasePolicy, RestartSchedule, SolverConfig, SolverConfigBuilder};
pub use exchange::{ClauseExchange, ExchangeHandle, ImportFilter};
pub use lit::{LBool, Lit, Var};
pub use proof::{FileProof, MemoryProof, ProofSink, ProofStep};
pub use solver::{SolveControl, SolveOutcome, Solver, SolverStats};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A random CNF instance: clause list over `n` variables.
    fn arb_cnf(
        max_vars: usize,
        max_clauses: usize,
    ) -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
        (2..=max_vars).prop_flat_map(move |n| {
            let clause = proptest::collection::vec(
                (1..=n as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
                1..=3,
            );
            (Just(n), proptest::collection::vec(clause, 1..=max_clauses))
        })
    }

    fn build(n: usize, clauses: &[Vec<i32>]) -> Solver {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for c in clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&d| vars[(d.unsigned_abs() - 1) as usize].lit(d > 0))
                .collect();
            if !s.add_clause(&lits) {
                break;
            }
        }
        s
    }

    /// Reference brute-force check for small instances.
    fn brute_force_sat(n: usize, clauses: &[Vec<i32>]) -> bool {
        for bits in 0..(1u32 << n) {
            let assign = |v: i32| -> bool {
                let idx = v.unsigned_abs() - 1;
                let val = (bits >> idx) & 1 == 1;
                if v > 0 {
                    val
                } else {
                    !val
                }
            };
            if clauses.iter().all(|c| c.iter().any(|&l| assign(l))) {
                return true;
            }
        }
        false
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(300))]

        #[test]
        fn agrees_with_brute_force((n, clauses) in arb_cnf(8, 30)) {
            let mut s = build(n, &clauses);
            let got = s.solve();
            let expect = brute_force_sat(n, &clauses);
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn sat_model_satisfies_clauses((n, clauses) in arb_cnf(10, 40)) {
            let mut s = build(n, &clauses);
            if s.solve() {
                let vars: Vec<Var> = (0..n).map(Var::from_index).collect();
                for c in &clauses {
                    let ok = c.iter().any(|&d| {
                        let l = vars[(d.unsigned_abs() - 1) as usize].lit(d > 0);
                        s.lit_value_in_model(l).unwrap_or(false)
                    });
                    prop_assert!(ok, "clause {:?} violated", c);
                }
            }
        }

        #[test]
        fn unsat_core_is_sound((n, clauses) in arb_cnf(6, 20), picks in proptest::collection::vec(any::<bool>(), 6)) {
            let mut s = build(n, &clauses);
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| Var::from_index(i).lit(picks[i % picks.len()]))
                .collect();
            if !s.solve_with_assumptions(&assumptions) && s.is_ok() {
                let core = s.unsat_core().to_vec();
                // Core is a subset of the assumptions...
                for l in &core {
                    prop_assert!(assumptions.contains(l));
                }
                // ...and assuming only the core is still unsat.
                prop_assert!(!s.solve_with_assumptions(&core));
            }
        }
    }
}
