//! Indexed binary max-heap ordered by variable activity.
//!
//! The VSIDS branching heuristic needs a priority queue supporting
//! increase-key on arbitrary elements; a plain `BinaryHeap` cannot do that,
//! so we keep a position index per variable.

/// Max-heap over variable indices keyed by an external activity array.
#[derive(Debug, Default, Clone)]
pub(crate) struct ActivityHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// `positions[v]` = index of `v` in `heap`, or `u32::MAX` when absent.
    positions: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl ActivityHeap {
    pub fn new() -> Self {
        ActivityHeap::default()
    }

    /// Grows the position index to cover variable `v`.
    pub fn reserve_var(&mut self, v: usize) {
        if self.positions.len() <= v {
            self.positions.resize(v + 1, ABSENT);
        }
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn contains(&self, v: usize) -> bool {
        self.positions.get(v).is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: usize, activity: &[f64]) {
        self.reserve_var(v);
        if self.contains(v) {
            return;
        }
        let pos = self.heap.len() as u32;
        self.heap.push(v as u32);
        self.positions[v] = pos;
        self.sift_up(pos as usize, activity);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().unwrap();
        self.positions[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn update(&mut self, v: usize, activity: &[f64]) {
        if let Some(&p) = self.positions.get(v) {
            if p != ABSENT {
                self.sift_up(p as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] > activity[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[largest] as usize]
            {
                largest = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[largest] as usize]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a] as usize] = a as u32;
        self.positions[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &activity);
        }
        assert_eq!(h.pop_max(&activity), Some(1));
        assert_eq!(h.pop_max(&activity), Some(3));
        assert_eq!(h.pop_max(&activity), Some(2));
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), None);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &activity);
        h.insert(0, &activity);
        h.insert(1, &activity);
        assert_eq!(h.pop_max(&activity), Some(1));
        assert_eq!(h.pop_max(&activity), Some(0));
        assert!(h.is_empty());
    }

    #[test]
    fn update_reorders_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.update(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut h = ActivityHeap::new();
        assert!(!h.contains(0));
        h.insert(0, &activity);
        assert!(h.contains(0));
        h.pop_max(&activity);
        assert!(!h.contains(0));
    }
}
