//! DRAT proof logging for the CDCL solver.
//!
//! Every clause the solver *derives* (learnt clauses, level-0 units,
//! simplified problem clauses, the final empty clause) and every learnt
//! clause it *deletes* during database reduction can be streamed to a
//! [`ProofSink`] as a DRAT proof. All clauses the solver emits are RUP
//! (reverse-unit-propagation) consequences of the formula plus the earlier
//! proof prefix, so the resulting trace is checkable by any standard DRAT
//! checker — in particular the independent one in `qca-verify`, which shares
//! no propagation code with this solver.
//!
//! Two sinks are provided: [`MemoryProof`] (cheap shared buffer, used by the
//! certificate machinery) and [`FileProof`] (buffered DRAT text, used by
//! `qsat --proof`). With no sink installed the solver pays exactly one
//! branch per derivation site.
//!
//! # Text format
//!
//! The textual DRAT format is one clause per line in DIMACS literal
//! notation, `0`-terminated; deletions are prefixed with `d`:
//!
//! ```text
//! 1 -3 0
//! d 2 -1 4 0
//! 0
//! ```
//!
//! The final line above is the empty clause that completes an
//! unsatisfiability proof.

use crate::lit::Lit;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};

/// One step of a clausal proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// Addition of a derived clause (empty = refutation complete).
    Add(Vec<Lit>),
    /// Deletion of a clause from the active database.
    Delete(Vec<Lit>),
}

impl ProofStep {
    /// The step's literals, regardless of kind.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofStep::Add(l) | ProofStep::Delete(l) => l,
        }
    }

    /// `true` for deletion steps.
    pub fn is_delete(&self) -> bool {
        matches!(self, ProofStep::Delete(_))
    }
}

/// Receives proof steps from a [`Solver`](crate::Solver).
///
/// Implementations must tolerate duplicate deletions and deletions of
/// never-added clauses: the solver only emits deletions for clauses it
/// derived, but a checker consuming the stream applies drat-trim semantics
/// (deleting an absent clause is a no-op).
pub trait ProofSink: std::fmt::Debug + Send {
    /// Records the addition of a derived clause (empty = refutation).
    fn add_clause(&mut self, lits: &[Lit]);
    /// Records the deletion of a clause.
    fn delete_clause(&mut self, lits: &[Lit]);
    /// Flushes any buffered output to its backing store.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while writing, if any.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// In-memory proof buffer behind a shared handle.
///
/// Cloning is cheap and both clones observe the same step list, so a caller
/// can keep one handle, box the other into the solver, and read the steps
/// back without downcasting.
///
/// # Examples
///
/// ```
/// use qca_sat::proof::{MemoryProof, ProofSink};
/// use qca_sat::Solver;
///
/// let proof = MemoryProof::new();
/// let mut s = Solver::new();
/// s.set_proof(Box::new(proof.clone()));
/// let v = s.new_var();
/// s.add_clause(&[v.positive()]);
/// s.add_clause(&[v.negative()]);
/// assert!(!s.solve());
/// assert!(proof.steps().iter().any(|s| s.lits().is_empty()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryProof {
    steps: Arc<Mutex<Vec<ProofStep>>>,
}

impl MemoryProof {
    /// An empty proof buffer.
    pub fn new() -> MemoryProof {
        MemoryProof::default()
    }

    /// A snapshot of the steps recorded so far.
    pub fn steps(&self) -> Vec<ProofStep> {
        self.steps.lock().expect("proof mutex poisoned").clone()
    }

    /// Number of steps recorded so far.
    pub fn len(&self) -> usize {
        self.steps.lock().expect("proof mutex poisoned").len()
    }

    /// `true` when no step has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProofSink for MemoryProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.steps
            .lock()
            .expect("proof mutex poisoned")
            .push(ProofStep::Add(lits.to_vec()));
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.steps
            .lock()
            .expect("proof mutex poisoned")
            .push(ProofStep::Delete(lits.to_vec()));
    }
}

/// Buffered DRAT text writer.
///
/// Write errors are sticky: the first one is kept and returned by
/// [`ProofSink::flush`]; later writes become no-ops. Dropping the sink
/// flushes best-effort.
#[derive(Debug)]
pub struct FileProof {
    writer: std::io::BufWriter<std::fs::File>,
    error: Option<std::io::Error>,
}

impl FileProof {
    /// Creates (truncating) the proof file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the file.
    pub fn create(path: &std::path::Path) -> std::io::Result<FileProof> {
        Ok(FileProof {
            writer: std::io::BufWriter::new(std::fs::File::create(path)?),
            error: None,
        })
    }

    fn write_line(&mut self, prefix: &str, lits: &[Lit]) {
        if self.error.is_some() {
            return;
        }
        let mut line = String::with_capacity(prefix.len() + lits.len() * 4 + 2);
        line.push_str(prefix);
        for l in lits {
            line.push_str(&l.to_dimacs().to_string());
            line.push(' ');
        }
        line.push_str("0\n");
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl ProofSink for FileProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.write_line("", lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.write_line("d ", lits);
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

impl Drop for FileProof {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Serializes proof steps as DRAT text.
pub fn write_drat<W: Write>(w: &mut W, steps: &[ProofStep]) -> std::io::Result<()> {
    for step in steps {
        if step.is_delete() {
            w.write_all(b"d ")?;
        }
        for l in step.lits() {
            write!(w, "{} ", l.to_dimacs())?;
        }
        w.write_all(b"0\n")?;
    }
    Ok(())
}

/// Parses DRAT text (as written by [`FileProof`] / [`write_drat`]).
///
/// Accepts `c` comment lines, blank lines, and clauses spanning a single
/// line each (the format this crate emits).
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input
/// (non-integer token, missing `0` terminator, zero mid-clause).
pub fn parse_drat<R: BufRead>(reader: R) -> Result<Vec<ProofStep>, String> {
    let mut steps = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let (is_delete, body) = match trimmed.strip_prefix('d') {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in body.split_whitespace() {
            if terminated {
                return Err(format!("line {}: literals after terminating 0", lineno + 1));
            }
            let v: i64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad literal {tok:?}", lineno + 1))?;
            if v == 0 {
                terminated = true;
            } else {
                lits.push(Lit::from_dimacs(v));
            }
        }
        if !terminated {
            return Err(format!("line {}: missing terminating 0", lineno + 1));
        }
        steps.push(if is_delete {
            ProofStep::Delete(lits)
        } else {
            ProofStep::Add(lits)
        });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn memory_proof_shares_steps_across_clones() {
        let a = MemoryProof::new();
        let mut b = a.clone();
        b.add_clause(&[lit(1), lit(-2)]);
        b.delete_clause(&[lit(3)]);
        let steps = a.steps();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0], ProofStep::Add(vec![lit(1), lit(-2)]));
        assert_eq!(steps[1], ProofStep::Delete(vec![lit(3)]));
    }

    #[test]
    fn drat_text_round_trip() {
        let steps = vec![
            ProofStep::Add(vec![lit(1), lit(-3), lit(2)]),
            ProofStep::Delete(vec![lit(-1), lit(4)]),
            ProofStep::Add(vec![]),
        ];
        let mut buf = Vec::new();
        write_drat(&mut buf, &steps).unwrap();
        let parsed = parse_drat(&buf[..]).unwrap();
        assert_eq!(parsed, steps);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_drat("1 2\n".as_bytes()).is_err(), "missing 0");
        assert!(parse_drat("1 x 0\n".as_bytes()).is_err(), "bad token");
        assert!(parse_drat("1 0 2 0\n".as_bytes()).is_err(), "zero mid-line");
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let steps = parse_drat("c a comment\n\n1 0\nd 1 0\n".as_bytes()).unwrap();
        assert_eq!(steps.len(), 2);
        assert!(!steps[0].is_delete());
        assert!(steps[1].is_delete());
    }

    #[test]
    fn file_proof_writes_drat_text() {
        let dir = std::env::temp_dir().join("qca_sat_proof_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("p{}.drat", std::process::id()));
        {
            let mut p = FileProof::create(&path).unwrap();
            p.add_clause(&[lit(2), lit(-1)]);
            p.delete_clause(&[lit(2)]);
            p.add_clause(&[]);
            p.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "2 -1 0\nd 2 0\n0\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lit_helpers_cover_var_roundtrip() {
        let v = Var::from_index(4);
        assert_eq!(v.positive().to_dimacs(), 5);
        assert_eq!(v.negative().to_dimacs(), -5);
    }
}
