//! Complex QR decomposition via modified Gram–Schmidt.
//!
//! Used to orthonormalize Ginibre samples into Haar-random unitaries and as
//! a general-purpose factorization for small matrices.

use crate::complex::C64;
use crate::mat::CMat;

/// Result of a QR decomposition `A = Q R` with unitary `Q` and upper
/// triangular `R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Unitary factor.
    pub q: CMat,
    /// Upper triangular factor.
    pub r: CMat,
}

/// Computes a QR decomposition of a square complex matrix using modified
/// Gram–Schmidt with re-orthogonalization.
///
/// For rank-deficient columns, the corresponding `Q` column is replaced by an
/// arbitrary unit vector orthogonal to the previous columns, keeping `Q`
/// unitary.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use qca_num::{CMat, qr::qr_decompose};
/// let a = CMat::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
/// let f = qr_decompose(&a);
/// assert!(f.q.is_unitary(1e-10));
/// assert!((&f.q * &f.r).approx_eq(&a, 1e-10));
/// ```
pub fn qr_decompose(a: &CMat) -> Qr {
    assert!(a.is_square(), "qr_decompose requires a square matrix");
    let n = a.rows();
    let mut q = a.clone();
    let mut r = CMat::zeros(n, n);
    for j in 0..n {
        // Two rounds of Gram–Schmidt for numerical stability.
        for _round in 0..2 {
            for i in 0..j {
                // proj = <q_i, q_j>
                let mut dot = C64::ZERO;
                for k in 0..n {
                    dot += q[(k, i)].conj() * q[(k, j)];
                }
                r[(i, j)] += dot;
                for k in 0..n {
                    let qki = q[(k, i)];
                    q[(k, j)] -= dot * qki;
                }
            }
        }
        let mut norm = 0.0;
        for k in 0..n {
            norm += q[(k, j)].norm_sqr();
        }
        let norm = norm.sqrt();
        if norm < 1e-13 {
            // Rank-deficient column: substitute a basis vector orthogonal to
            // the span of previous columns.
            r[(j, j)] = C64::ZERO;
            'candidates: for cand in 0..n {
                let mut v = vec![C64::ZERO; n];
                v[cand] = C64::ONE;
                for i in 0..j {
                    let mut dot = C64::ZERO;
                    for k in 0..n {
                        dot += q[(k, i)].conj() * v[k];
                    }
                    for (k, vk) in v.iter_mut().enumerate() {
                        *vk -= dot * q[(k, i)];
                    }
                }
                let vn = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
                if vn > 1e-6 {
                    for k in 0..n {
                        q[(k, j)] = v[k] / vn;
                    }
                    break 'candidates;
                }
            }
        } else {
            r[(j, j)] = C64::real(norm);
            for k in 0..n {
                q[(k, j)] = q[(k, j)] / norm;
            }
        }
    }
    Qr { q, r }
}

/// Determinant of a square complex matrix by LU elimination with partial
/// pivoting.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn determinant(a: &CMat) -> C64 {
    assert!(a.is_square(), "determinant requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut det = C64::ONE;
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = m[(col, col)].norm();
        for r in (col + 1)..n {
            if m[(r, col)].norm() > best {
                best = m[(r, col)].norm();
                pivot = r;
            }
        }
        if best < 1e-300 {
            return C64::ZERO;
        }
        if pivot != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot, c)];
                m[(pivot, c)] = tmp;
            }
            det = -det;
        }
        let d = m[(col, col)];
        det *= d;
        for r in (col + 1)..n {
            let factor = m[(r, col)] / d;
            for c in col..n {
                let v = m[(col, c)];
                m[(r, c)] -= factor * v;
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = CMat::from_rows(
            3,
            3,
            &[
                C64::new(1.0, 1.0),
                C64::new(0.0, -2.0),
                C64::real(3.0),
                C64::real(-1.0),
                C64::new(2.0, 0.5),
                C64::ZERO,
                C64::new(0.0, 1.0),
                C64::ONE,
                C64::new(-2.0, -2.0),
            ],
        );
        let f = qr_decompose(&a);
        assert!(f.q.is_unitary(1e-10));
        assert!((&f.q * &f.r).approx_eq(&a, 1e-10));
        // R upper triangular
        for r in 0..3 {
            for c in 0..r {
                assert!(f.r[(r, c)].norm() < 1e-10);
            }
        }
    }

    #[test]
    fn qr_of_rank_deficient_keeps_q_unitary() {
        // Two identical columns.
        let a = CMat::from_real(3, 3, &[1.0, 1.0, 0.0, 2.0, 2.0, 0.0, 3.0, 3.0, 1.0]);
        let f = qr_decompose(&a);
        assert!(f.q.is_unitary(1e-9));
    }

    #[test]
    fn determinant_of_identity_and_swap() {
        assert!(determinant(&CMat::identity(4)).approx_eq(C64::ONE, 1e-12));
        let swap = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(determinant(&swap).approx_eq(C64::real(-1.0), 1e-12));
    }

    #[test]
    fn determinant_multiplicative() {
        let a = CMat::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = CMat::from_real(2, 2, &[0.0, 1.0, -1.0, 2.0]);
        let dab = determinant(&(&a * &b));
        let sep = determinant(&a) * determinant(&b);
        assert!(dab.approx_eq(sep, 1e-9));
    }

    #[test]
    fn determinant_of_singular_is_zero() {
        let a = CMat::from_real(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(determinant(&a).norm() < 1e-12);
    }
}
