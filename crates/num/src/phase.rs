//! Global-phase-insensitive comparison of unitaries.
//!
//! Quantum gates are physically defined up to a global phase; circuit
//! equivalence checks throughout the workspace must therefore compare
//! unitaries modulo `U(1)`.

use crate::complex::C64;
use crate::mat::CMat;

/// Returns the phase `e^{i t}` that best aligns `a` to `b`, if one exists.
///
/// Uses the phase of `tr(a† b)`; for matrices equal up to global phase this
/// recovers that phase exactly.
pub fn alignment_phase(a: &CMat, b: &CMat) -> C64 {
    let t = (&a.adjoint() * b).trace();
    if t.norm() < 1e-300 {
        C64::ONE
    } else {
        t / t.norm()
    }
}

/// Tests whether two matrices are equal up to a global phase, within
/// elementwise tolerance `tol`.
///
/// # Examples
///
/// ```
/// use qca_num::{CMat, C64, phase::approx_eq_up_to_phase};
/// let id = CMat::identity(2);
/// let rotated = id.scale(C64::cis(1.2));
/// assert!(approx_eq_up_to_phase(&id, &rotated, 1e-12));
/// ```
pub fn approx_eq_up_to_phase(a: &CMat, b: &CMat, tol: f64) -> bool {
    if (a.rows(), a.cols()) != (b.rows(), b.cols()) {
        return false;
    }
    let phase = alignment_phase(a, b);
    a.scale(phase).approx_eq(b, tol)
}

/// Process-fidelity-like distance `1 - |tr(a† b)| / n` between two unitaries.
///
/// Zero iff the unitaries agree up to a global phase.
///
/// # Panics
///
/// Panics on shape mismatch or non-square inputs.
pub fn phase_insensitive_distance(a: &CMat, b: &CMat) -> f64 {
    assert!(a.is_square() && b.is_square(), "inputs must be square");
    assert_eq!(a.rows(), b.rows(), "shape mismatch");
    let n = a.rows() as f64;
    let t = (&a.adjoint() * b).trace();
    (1.0 - t.norm() / n).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_matrix_distance_zero() {
        let id = CMat::identity(4);
        assert!(phase_insensitive_distance(&id, &id) < 1e-14);
    }

    #[test]
    fn phase_rotation_ignored() {
        let m = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let rotated = m.scale(C64::cis(-2.1));
        assert!(approx_eq_up_to_phase(&m, &rotated, 1e-12));
        assert!(phase_insensitive_distance(&m, &rotated) < 1e-12);
    }

    #[test]
    fn different_matrices_detected() {
        let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let z = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]);
        assert!(!approx_eq_up_to_phase(&x, &z, 1e-6));
        assert!(phase_insensitive_distance(&x, &z) > 0.5);
    }

    #[test]
    fn alignment_phase_recovers_rotation() {
        let m = CMat::identity(3);
        let rotated = m.scale(C64::cis(0.7));
        let p = alignment_phase(&m, &rotated);
        assert!(p.approx_eq(C64::cis(0.7), 1e-12));
    }

    #[test]
    fn shape_mismatch_is_not_equal() {
        let a = CMat::identity(2);
        let b = CMat::identity(4);
        assert!(!approx_eq_up_to_phase(&a, &b, 1e-6));
    }
}
