//! # qca-num
//!
//! Complex linear-algebra kernel for the SAT-based quantum-circuit-adaptation
//! workspace: a dependency-light complex type ([`C64`]), dense complex
//! matrices ([`CMat`]), QR factorization ([`qr`]), symmetric/Hermitian
//! eigensolvers ([`eig`]), Haar-random unitary sampling ([`random`]), and
//! global-phase-insensitive comparison ([`phase`]).
//!
//! The matrices here are deliberately small (quantum gates on up to a handful
//! of qubits) so a straightforward `O(n^3)` dense implementation is both
//! simpler and faster than pulling in a BLAS.
//!
//! # Examples
//!
//! ```
//! use qca_num::{C64, CMat, phase::approx_eq_up_to_phase};
//!
//! // Hadamard gate
//! let s = 1.0 / 2.0_f64.sqrt();
//! let h = CMat::from_real(2, 2, &[s, s, s, -s]);
//! assert!(h.is_unitary(1e-12));
//! // H^2 = I (up to global phase, here exactly)
//! assert!(approx_eq_up_to_phase(&(&h * &h), &CMat::identity(2), 1e-12));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod complex;
mod mat;

pub mod eig;
pub mod phase;
pub mod qr;
pub mod random;

pub use complex::C64;
pub use mat::CMat;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_c64() -> impl Strategy<Value = C64> {
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| C64::new(re, im))
    }

    fn arb_mat(n: usize) -> impl Strategy<Value = CMat> {
        proptest::collection::vec(arb_c64(), n * n).prop_map(move |v| CMat::from_rows(n, n, &v))
    }

    proptest! {
        #[test]
        fn complex_mul_commutes(a in arb_c64(), b in arb_c64()) {
            prop_assert!((a * b).approx_eq(b * a, 1e-9));
        }

        #[test]
        fn complex_add_associates(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
            prop_assert!(((a + b) + c).approx_eq(a + (b + c), 1e-9));
        }

        #[test]
        fn conj_is_involution(a in arb_c64()) {
            prop_assert_eq!(a.conj().conj(), a);
        }

        #[test]
        fn norm_is_multiplicative(a in arb_c64(), b in arb_c64()) {
            prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-8);
        }

        #[test]
        fn matrix_mul_associates(a in arb_mat(3), b in arb_mat(3), c in arb_mat(3)) {
            let lhs = &(&a * &b) * &c;
            let rhs = &a * &(&b * &c);
            prop_assert!(lhs.approx_eq(&rhs, 1e-6));
        }

        #[test]
        fn adjoint_is_involution(a in arb_mat(4)) {
            prop_assert!(a.adjoint().adjoint().approx_eq(&a, 1e-12));
        }

        #[test]
        fn trace_cyclic(a in arb_mat(3), b in arb_mat(3)) {
            let t1 = (&a * &b).trace();
            let t2 = (&b * &a).trace();
            prop_assert!(t1.approx_eq(t2, 1e-6));
        }

        #[test]
        fn kron_mixed_product(a in arb_mat(2), b in arb_mat(2), c in arb_mat(2), d in arb_mat(2)) {
            // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
            let lhs = &a.kron(&b) * &c.kron(&d);
            let rhs = (&a * &c).kron(&(&b * &d));
            prop_assert!(lhs.approx_eq(&rhs, 1e-6));
        }

        #[test]
        fn qr_always_reconstructs(a in arb_mat(4)) {
            let f = qr::qr_decompose(&a);
            prop_assert!(f.q.is_unitary(1e-8));
            prop_assert!((&f.q * &f.r).approx_eq(&a, 1e-7));
        }

        #[test]
        fn haar_unitary_det_modulus_one(seed in 0u64..1000) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let u = random::haar_unitary(&mut rng, 4);
            let d = qr::determinant(&u);
            prop_assert!((d.norm() - 1.0).abs() < 1e-7);
        }
    }
}
