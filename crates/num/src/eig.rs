//! Eigensolvers for small real symmetric matrices.
//!
//! The KAK decomposition in `qca-synth` needs to simultaneously diagonalize
//! the commuting real and imaginary parts of a complex symmetric unitary.
//! This module provides a cyclic Jacobi eigensolver ([`jacobi_eigen`]) and a
//! two-matrix simultaneous diagonalization ([`simultaneous_diagonalize`])
//! built on top of it.

use crate::mat::CMat;

/// Result of a real symmetric eigendecomposition `A = Q diag(w) Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, in the order matching the columns of `vectors`.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose columns are eigenvectors (row-major, n x n).
    pub vectors: Vec<f64>,
    /// Dimension `n`.
    pub n: usize,
}

impl SymEigen {
    /// Eigenvector for eigenvalue index `k` (column `k` of `vectors`).
    pub fn vector(&self, k: usize) -> Vec<f64> {
        (0..self.n).map(|r| self.vectors[r * self.n + k]).collect()
    }
}

/// Diagonalizes a real symmetric matrix with the cyclic Jacobi method.
///
/// `a` is a row-major `n x n` matrix; only its symmetric part is used.
/// Returns eigenvalues and an orthogonal eigenvector matrix such that
/// `A ≈ Q diag(w) Qᵀ`.
///
/// # Panics
///
/// Panics if `a.len() != n * n` or `n == 0`.
///
/// # Examples
///
/// ```
/// use qca_num::eig::jacobi_eigen;
/// let a = [2.0, 1.0, 1.0, 2.0];
/// let e = jacobi_eigen(&a, 2);
/// let mut w = e.values.clone();
/// w.sort_by(|x, y| x.partial_cmp(y).unwrap());
/// assert!((w[0] - 1.0).abs() < 1e-10 && (w[1] - 3.0).abs() < 1e-10);
/// ```
pub fn jacobi_eigen(a: &[f64], n: usize) -> SymEigen {
    assert!(n > 0, "dimension must be nonzero");
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    let mut m = a.to_vec();
    // Symmetrize defensively.
    for r in 0..n {
        for c in (r + 1)..n {
            let avg = 0.5 * (m[r * n + c] + m[c * n + r]);
            m[r * n + c] = avg;
            m[c * n + r] = avg;
        }
    }
    let mut q = vec![0.0; n * n];
    for i in 0..n {
        q[i * n + i] = 1.0;
    }
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m[r * n + c] * m[r * n + c];
            }
        }
        if off.sqrt() < 1e-14 {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apq = m[p * n + r];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[r * n + r];
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation to m on both sides.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + r];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + r] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[r * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[r * n + k] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let qkp = q[k * n + p];
                    let qkq = q[k * n + r];
                    q[k * n + p] = c * qkp - s * qkq;
                    q[k * n + r] = s * qkp + c * qkq;
                }
            }
        }
    }
    let values = (0..n).map(|i| m[i * n + i]).collect();
    SymEigen {
        values,
        vectors: q,
        n,
    }
}

/// Simultaneously diagonalizes two commuting real symmetric matrices.
///
/// Returns an orthogonal `Q` (row-major) and the two diagonals `(wa, wb)`
/// such that `Qᵀ A Q ≈ diag(wa)` and `Qᵀ B Q ≈ diag(wb)`.
///
/// The algorithm diagonalizes `A`, then re-diagonalizes `B` restricted to each
/// eigenspace of `A` (detected by eigenvalue clustering with tolerance `tol`).
///
/// # Panics
///
/// Panics on size mismatch.
pub fn simultaneous_diagonalize(
    a: &[f64],
    b: &[f64],
    n: usize,
    tol: f64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let ea = jacobi_eigen(a, n);
    // Sort eigenpairs of A by eigenvalue to make clusters contiguous.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| ea.values[i].partial_cmp(&ea.values[j]).unwrap());
    let mut q = vec![0.0; n * n]; // columns = sorted eigenvectors of A
    let mut wa = vec![0.0; n];
    for (new_col, &old_col) in order.iter().enumerate() {
        wa[new_col] = ea.values[old_col];
        for r in 0..n {
            q[r * n + new_col] = ea.vectors[r * n + old_col];
        }
    }
    // B in the A-eigenbasis: Bq = Qᵀ B Q.
    let mut bq = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                for l in 0..n {
                    acc += q[k * n + r] * b[k * n + l] * q[l * n + c];
                }
            }
            bq[r * n + c] = acc;
        }
    }
    // Within each cluster of equal wa, diagonalize the corresponding block of bq.
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (wa[end] - wa[start]).abs() <= tol {
            end += 1;
        }
        let k = end - start;
        if k > 1 {
            let mut block = vec![0.0; k * k];
            for r in 0..k {
                for c in 0..k {
                    block[r * k + c] = bq[(start + r) * n + (start + c)];
                }
            }
            let eb = jacobi_eigen(&block, k);
            // Rotate the corresponding columns of Q by the block eigenvectors.
            let mut newq = vec![0.0; n * k];
            for r in 0..n {
                for c in 0..k {
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += q[r * n + (start + l)] * eb.vectors[l * k + c];
                    }
                    newq[r * k + c] = acc;
                }
            }
            for r in 0..n {
                for c in 0..k {
                    q[r * n + (start + c)] = newq[r * k + c];
                }
            }
        }
        start = end;
    }
    // Recompute both diagonals from the final Q.
    let diag_of = |m: &[f64]| -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut acc = 0.0;
                for k in 0..n {
                    for l in 0..n {
                        acc += q[k * n + i] * m[k * n + l] * q[l * n + i];
                    }
                }
                acc
            })
            .collect()
    };
    let wa = diag_of(a);
    let wb = diag_of(b);
    (q, wa, wb)
}

/// Hermitian eigendecomposition of a complex matrix by embedding into a real
/// symmetric matrix of twice the dimension.
///
/// For Hermitian `H = A + iB` (A symmetric, B antisymmetric), the real matrix
/// `[[A, -B], [B, A]]` is symmetric with doubled eigenvalues; eigenvectors
/// come in pairs `(x, y)` and `(−y, x)` encoding `x + iy`.
///
/// Returns eigenvalues (ascending) and a unitary matrix of eigenvectors as
/// columns.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn hermitian_eigen(h: &CMat) -> (Vec<f64>, CMat) {
    assert!(h.is_square(), "hermitian_eigen requires a square matrix");
    let n = h.rows();
    let mut big = vec![0.0; 4 * n * n];
    let dim = 2 * n;
    for r in 0..n {
        for c in 0..n {
            let z = h[(r, c)];
            big[r * dim + c] = z.re;
            big[r * dim + (n + c)] = -z.im;
            big[(n + r) * dim + c] = z.im;
            big[(n + r) * dim + (n + c)] = z.re;
        }
    }
    let e = jacobi_eigen(&big, dim);
    // Sort by eigenvalue and greedily pick n orthogonal complex eigenvectors.
    let mut order: Vec<usize> = (0..dim).collect();
    order.sort_by(|&i, &j| e.values[i].partial_cmp(&e.values[j]).unwrap());
    let mut values = Vec::with_capacity(n);
    let mut vectors = CMat::zeros(n, n);
    let mut chosen: Vec<Vec<crate::complex::C64>> = Vec::new();
    for &idx in &order {
        if chosen.len() == n {
            break;
        }
        let col = e.vector(idx);
        let v: Vec<crate::complex::C64> = (0..n)
            .map(|r| crate::complex::C64::new(col[r], col[n + r]))
            .collect();
        // Orthogonalize against previously chosen vectors (pairs are
        // degenerate copies of each other up to multiplication by i).
        let mut w = v.clone();
        for u in &chosen {
            let dot: crate::complex::C64 = u.iter().zip(&w).map(|(a, b)| a.conj() * *b).sum();
            for (wi, ui) in w.iter_mut().zip(u) {
                *wi -= dot * *ui;
            }
        }
        let norm: f64 = w.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm < 1e-8 {
            continue; // linearly dependent on already-chosen vectors
        }
        for wi in &mut w {
            *wi = *wi / norm;
        }
        values.push(e.values[idx]);
        let k = chosen.len();
        for r in 0..n {
            vectors[(r, k)] = w[r];
        }
        chosen.push(w);
    }
    assert_eq!(chosen.len(), n, "failed to extract full eigenbasis");
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn mat_vec(m: &[f64], n: usize, v: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|r| (0..n).map(|c| m[r * n + c] * v[c]).sum())
            .collect()
    }

    #[test]
    fn jacobi_2x2() {
        let a = [4.0, 1.0, 1.0, 4.0];
        let e = jacobi_eigen(&a, 2);
        let mut w = e.values.clone();
        w.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((w[0] - 3.0).abs() < 1e-10);
        assert!((w[1] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_eigenvectors_satisfy_av_eq_wv() {
        let a = [
            3.0, 1.0, 0.5, //
            1.0, 2.0, -0.3, //
            0.5, -0.3, 1.0,
        ];
        let e = jacobi_eigen(&a, 3);
        for k in 0..3 {
            let v = e.vector(k);
            let av = mat_vec(&a, 3, &v);
            for r in 0..3 {
                assert!(
                    (av[r] - e.values[k] * v[r]).abs() < 1e-9,
                    "eigenpair {k} fails"
                );
            }
        }
    }

    #[test]
    fn jacobi_orthogonality() {
        let a = [
            2.0, -1.0, 0.0, 0.3, //
            -1.0, 2.0, -1.0, 0.0, //
            0.0, -1.0, 2.0, -1.0, //
            0.3, 0.0, -1.0, 2.0,
        ];
        let e = jacobi_eigen(&a, 4);
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = (0..4)
                    .map(|r| e.vectors[r * 4 + i] * e.vectors[r * 4 + j])
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn simultaneous_diag_of_commuting_pair() {
        // A and B diagonal in the same (rotated) basis.
        // Build Q0 = rotation, A = Q0 D1 Q0^T, B = Q0 D2 Q0^T with A degenerate.
        let th: f64 = 0.7;
        let (c, s) = (th.cos(), th.sin());
        let q0 = [c, -s, 0.0, s, c, 0.0, 0.0, 0.0, 1.0];
        let d1 = [2.0, 2.0, 5.0]; // degenerate pair forces B to disambiguate
        let d2 = [1.0, -1.0, 3.0];
        let build = |d: &[f64; 3]| -> Vec<f64> {
            let mut m = vec![0.0; 9];
            for r in 0..3 {
                for cc in 0..3 {
                    let mut acc = 0.0;
                    for k in 0..3 {
                        acc += q0[r * 3 + k] * d[k] * q0[cc * 3 + k];
                    }
                    m[r * 3 + cc] = acc;
                }
            }
            m
        };
        let a = build(&d1);
        let b = build(&d2);
        let (q, wa, wb) = simultaneous_diagonalize(&a, &b, 3, 1e-9);
        // Verify off-diagonals of Q^T A Q and Q^T B Q vanish.
        for (m, w) in [(&a, &wa), (&b, &wb)] {
            for r in 0..3 {
                for cc in 0..3 {
                    let mut acc = 0.0;
                    for k in 0..3 {
                        for l in 0..3 {
                            acc += q[k * 3 + r] * m[k * 3 + l] * q[l * 3 + cc];
                        }
                    }
                    let expect = if r == cc { w[r] } else { 0.0 };
                    assert!((acc - expect).abs() < 1e-8, "entry ({r},{cc})");
                }
            }
        }
    }

    #[test]
    fn hermitian_eigen_pauli_y() {
        let y = CMat::from_rows(2, 2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO]);
        let (w, v) = hermitian_eigen(&y);
        let mut ws = w.clone();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ws[0] + 1.0).abs() < 1e-9);
        assert!((ws[1] - 1.0).abs() < 1e-9);
        assert!(v.is_unitary(1e-8));
        // Verify H v_k = w_k v_k
        for k in 0..2 {
            let col: Vec<C64> = (0..2).map(|r| v[(r, k)]).collect();
            let hv = y.mul_vec(&col);
            for r in 0..2 {
                assert!((hv[r] - col[r] * w[k]).norm() < 1e-8);
            }
        }
    }

    #[test]
    fn hermitian_eigen_random_hermitian() {
        // Deterministic pseudo-random Hermitian 4x4.
        let mut h = CMat::zeros(4, 4);
        let mut seed = 42u64;
        let mut nextf = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for r in 0..4 {
            for c in r..4 {
                if r == c {
                    h[(r, c)] = C64::real(nextf());
                } else {
                    let z = C64::new(nextf(), nextf());
                    h[(r, c)] = z;
                    h[(c, r)] = z.conj();
                }
            }
        }
        let (w, v) = hermitian_eigen(&h);
        assert!(v.is_unitary(1e-7));
        let d = CMat::diag(&w.iter().map(|&x| C64::real(x)).collect::<Vec<_>>());
        let recon = &(&v * &d) * &v.adjoint();
        assert!(recon.approx_eq(&h, 1e-7));
    }
}
