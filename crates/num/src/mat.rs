//! Dense complex matrices.
//!
//! [`CMat`] is a row-major dense complex matrix sized for quantum-gate work
//! (2x2 single-qubit unitaries up to 32x32 density matrices). It provides the
//! operations the rest of the workspace needs: multiplication, adjoints,
//! Kronecker products, traces, norms and unitarity checks.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qca_num::CMat;
/// let id = CMat::identity(2);
/// assert!(id.is_unitary(1e-12));
/// ```
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major slice of elements.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[C64]) -> Self {
        assert_eq!(data.len(), rows * cols, "element count mismatch");
        CMat {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a matrix from a row-major slice of real values.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "element count mismatch");
        CMat {
            rows,
            cols,
            data: data.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = CMat::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the row-major element storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable borrow of the row-major element storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Conjugate transpose (dagger).
    pub fn adjoint(&self) -> CMat {
        let mut m = CMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m[(c, r)] = self[(r, c)].conj();
            }
        }
        m
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMat {
        let mut m = CMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m[(c, r)] = self[(r, c)];
            }
        }
        m
    }

    /// Elementwise complex conjugate.
    pub fn conj(&self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every element by a complex factor.
    pub fn scale(&self, k: C64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Matrix trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qca_num::CMat;
    /// let a = CMat::identity(2);
    /// let b = CMat::identity(3);
    /// assert_eq!(a.kron(&b), CMat::identity(6));
    /// ```
    pub fn kron(&self, other: &CMat) -> CMat {
        let mut m = CMat::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self[(r1, c1)];
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        m[(r1 * other.rows + r2, c1 * other.cols + c2)] = a * other[(r2, c2)];
                    }
                }
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &CMat) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }

    /// Approximate elementwise equality within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &CMat, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }

    /// Returns `true` when `self† self ≈ I` within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint() * self.clone();
        prod.approx_eq(&CMat::identity(self.rows), tol)
    }

    /// Returns `true` when the matrix equals its conjugate transpose within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        let mut out = vec![C64::ZERO; self.rows];
        for r in 0..self.rows {
            let mut acc = C64::ZERO;
            for c in 0..self.cols {
                acc += self[(r, c)] * v[c];
            }
            out[r] = acc;
        }
        out
    }

    /// Extracts the `2^k`-dimensional unitary acting on all qubits from a
    /// gate matrix on fewer qubits by tensoring with identities.
    ///
    /// `target_positions` lists, most-significant first, which tensor slots
    /// (0-based from the most significant qubit) the gate acts on. The result
    /// acts on `n_slots` qubits.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension is not `2^len(target_positions)`, if a
    /// position repeats, or exceeds `n_slots`.
    pub fn embed_qubits(&self, target_positions: &[usize], n_slots: usize) -> CMat {
        let k = target_positions.len();
        assert_eq!(self.rows, 1 << k, "gate dimension mismatch");
        assert!(self.is_square(), "gate must be square");
        for (i, &p) in target_positions.iter().enumerate() {
            assert!(p < n_slots, "target position out of range");
            assert!(
                !target_positions[..i].contains(&p),
                "duplicate target position"
            );
        }
        let dim = 1usize << n_slots;
        let mut m = CMat::zeros(dim, dim);
        // For each pair of basis states differing only on the target slots,
        // copy the corresponding gate element.
        for row in 0..dim {
            // bits of the non-target slots
            for col in 0..dim {
                let mut same_elsewhere = true;
                for slot in 0..n_slots {
                    if target_positions.contains(&slot) {
                        continue;
                    }
                    let shift = n_slots - 1 - slot;
                    if (row >> shift) & 1 != (col >> shift) & 1 {
                        same_elsewhere = false;
                        break;
                    }
                }
                if !same_elsewhere {
                    continue;
                }
                let mut gr = 0usize;
                let mut gc = 0usize;
                for (i, &p) in target_positions.iter().enumerate() {
                    let shift = n_slots - 1 - p;
                    gr |= ((row >> shift) & 1) << (k - 1 - i);
                    gc |= ((col >> shift) & 1) << (k - 1 - i);
                }
                m[(row, col)] = self[(gr, gc)];
            }
        }
        m
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for CMat {
    type Output = CMat;
    fn add(self, rhs: CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for CMat {
    type Output = CMat;
    fn sub(self, rhs: CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.scale(C64::real(-1.0))
    }
}

impl Mul for CMat {
    type Output = CMat;
    fn mul(self, rhs: CMat) -> CMat {
        &self * &rhs
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut m = CMat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == C64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    m[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        m
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:.4}  ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_y() -> CMat {
        CMat::from_rows(2, 2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO])
    }

    fn pauli_z() -> CMat {
        CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn identity_is_unitary_and_hermitian() {
        let id = CMat::identity(4);
        assert!(id.is_unitary(1e-12));
        assert!(id.is_hermitian(1e-12));
        assert!(id.trace().approx_eq(C64::real(4.0), 1e-12));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        let xy = &x * &y;
        assert!(xy.approx_eq(&z.scale(C64::I), 1e-12));
        // X^2 = I
        assert!((&x * &x).approx_eq(&CMat::identity(2), 1e-12));
        assert!(x.is_unitary(1e-12) && y.is_unitary(1e-12) && z.is_unitary(1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let xz = x.kron(&pauli_z());
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz[(0, 2)], C64::ONE);
        assert_eq!(xz[(1, 3)], C64::real(-1.0));
        assert!(xz.is_unitary(1e-12));
    }

    #[test]
    fn adjoint_reverses_product() {
        let x = pauli_x();
        let y = pauli_y();
        let lhs = (&x * &y).adjoint();
        let rhs = &y.adjoint() * &x.adjoint();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let y = pauli_y();
        let v = [C64::ONE, C64::I];
        let out = y.mul_vec(&v);
        assert!(out[0].approx_eq(C64::ONE, 1e-12)); // -i * i = 1
        assert!(out[1].approx_eq(C64::I, 1e-12));
    }

    #[test]
    fn embed_single_qubit_gate() {
        let x = pauli_x();
        // X on qubit 0 of 2 (most significant slot)
        let xi = x.embed_qubits(&[0], 2);
        assert!(xi.approx_eq(&x.kron(&CMat::identity(2)), 1e-12));
        // X on qubit 1 of 2
        let ix = x.embed_qubits(&[1], 2);
        assert!(ix.approx_eq(&CMat::identity(2).kron(&x), 1e-12));
    }

    #[test]
    fn embed_two_qubit_gate_reversed_order() {
        // CX with control=slot1, target=slot0 equals SWAP * CX * SWAP
        let cx = CMat::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        );
        let swap = CMat::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
        );
        let embedded = cx.embed_qubits(&[1, 0], 2);
        let expect = &(&swap * &cx) * &swap;
        assert!(embedded.approx_eq(&expect, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mul_shape_mismatch_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((CMat::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }
}
