//! Haar-random unitary sampling.
//!
//! Quantum-volume circuits [Cross et al., PRA 100, 032328 (2019)] are built
//! from Haar-random two-qubit unitaries. A Haar sample is obtained by QR
//! decomposition of a complex Ginibre matrix with the phase-of-diagonal
//! correction of Mezzadri (2007).

use crate::complex::C64;
use crate::mat::CMat;
use crate::qr::qr_decompose;
use rand::Rng;

/// Samples a standard normal variate via the Box–Muller transform.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Samples an `n x n` complex Ginibre matrix (i.i.d. standard complex
/// normal entries).
pub fn ginibre<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CMat {
    let mut m = CMat::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            m[(r, c)] = C64::new(std_normal(rng), std_normal(rng));
        }
    }
    m
}

/// Samples a Haar-random unitary from `U(n)`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = qca_num::random::haar_unitary(&mut rng, 4);
/// assert!(u.is_unitary(1e-9));
/// ```
pub fn haar_unitary<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CMat {
    let g = ginibre(rng, n);
    let f = qr_decompose(&g);
    // Fix the phase ambiguity: Q -> Q * diag(r_ii / |r_ii|) gives Haar measure.
    let mut q = f.q;
    for j in 0..n {
        let d = f.r[(j, j)];
        let phase = if d.norm() > 1e-300 {
            d / d.norm()
        } else {
            C64::ONE
        };
        for r in 0..n {
            q[(r, j)] *= phase;
        }
    }
    q
}

/// Samples a Haar-random special unitary from `SU(n)` (determinant one).
pub fn haar_special_unitary<R: Rng + ?Sized>(rng: &mut R, n: usize) -> CMat {
    let u = haar_unitary(rng, n);
    let det = crate::qr::determinant(&u);
    // Divide one global nth-root-of-phase out of every entry.
    let phase = C64::cis(-det.arg() / n as f64);
    u.scale(phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::determinant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2, 4, 8] {
            let u = haar_unitary(&mut rng, n);
            assert!(u.is_unitary(1e-9), "n={n}");
        }
    }

    #[test]
    fn haar_special_unitary_has_unit_determinant() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [2, 4] {
            let u = haar_special_unitary(&mut rng, n);
            assert!(u.is_unitary(1e-9));
            let d = determinant(&u);
            assert!(d.approx_eq(C64::ONE, 1e-8), "n={n} det={d}");
        }
    }

    #[test]
    fn samples_are_seed_deterministic() {
        let a = haar_unitary(&mut StdRng::seed_from_u64(99), 4);
        let b = haar_unitary(&mut StdRng::seed_from_u64(99), 4);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn distinct_seeds_give_distinct_unitaries() {
        let a = haar_unitary(&mut StdRng::seed_from_u64(1), 2);
        let b = haar_unitary(&mut StdRng::seed_from_u64(2), 2);
        assert!(a.max_abs_diff(&b) > 1e-3);
    }

    #[test]
    fn first_moment_roughly_uniform() {
        // E[|u_00|^2] = 1/n for Haar measure; sample average should approach it.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4;
        let trials = 200;
        let mut acc = 0.0;
        for _ in 0..trials {
            let u = haar_unitary(&mut rng, n);
            acc += u[(0, 0)].norm_sqr();
        }
        let mean = acc / trials as f64;
        assert!((mean - 1.0 / n as f64).abs() < 0.05, "mean={mean}");
    }
}
