//! Complex number arithmetic.
//!
//! [`C64`] is a minimal, dependency-free complex double type tailored to the
//! needs of small quantum-gate linear algebra: full arithmetic operator
//! support, polar helpers, and exact `Default`/`Debug` behaviour.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qca_num::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * exp(i theta)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qca_num::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::new(0.0, 2.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `exp(i theta)`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns non-finite components when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    ///
    /// # Examples
    ///
    /// ```
    /// use qca_num::C64;
    /// let z = C64::new(-4.0, 0.0).sqrt();
    /// assert!((z - C64::new(0.0, 2.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn sqrt(self) -> Self {
        C64::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).norm() <= tol
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via inverse
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs * self
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl Product for C64 {
    fn product<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert!((z * z.inv() - C64::ONE).norm() < 1e-12);
    }

    #[test]
    fn norm_and_conj() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(C64::real(25.0), 1e-12));
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::new(-1.5, 2.5);
        let w = C64::from_polar(z.norm(), z.arg());
        assert!(z.approx_eq(w, 1e-12));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let t = k as f64 * PI / 8.0;
            assert!((C64::cis(t).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-2.0, 3.0);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-12));
    }

    #[test]
    fn division() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert!(((a / b) * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn exp_of_i_pi() {
        let z = (C64::I * PI).exp();
        assert!(z.approx_eq(C64::real(-1.0), 1e-12));
    }

    #[test]
    fn display_sign_handling() {
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn sum_and_product() {
        let v = [C64::ONE, C64::I, C64::new(1.0, 1.0)];
        let s: C64 = v.iter().copied().sum();
        assert!(s.approx_eq(C64::new(2.0, 2.0), 1e-12));
        let p: C64 = v.iter().copied().product();
        assert!(p.approx_eq(C64::new(-1.0, 1.0), 1e-12));
    }
}
