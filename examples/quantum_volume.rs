//! Adapt a quantum-volume circuit with every technique and compare noisy
//! execution quality (Hellinger fidelity), reproducing a single data point
//! of the paper's Fig. 7.
//!
//! Run with `cargo run --release --example quantum_volume`.

use qca::adapt::{adapt, AdaptContext, Objective};
use qca::baselines::{
    direct_translation, kak_adaptation, template_optimization, KakBasis, TemplateObjective,
};
use qca::circuit::Circuit;
use qca::hw::{spin_qubit_model, GateTimes, HardwareModel};
use qca::sim::simulate_noisy;
use qca::workloads::quantum_volume;

fn report(name: &str, circuit: &Circuit, hw: &HardwareModel, base_hf: f64, base_idle: f64) {
    let out = simulate_noisy(circuit, hw).expect("native circuit");
    println!(
        "{name:<18} hellinger {:.4} ({:+.1}%)   idle {:>7.0} ns ({:+.1}%)   duration {:>7.0} ns",
        out.hellinger_fidelity,
        (out.hellinger_fidelity / base_hf - 1.0) * 100.0,
        out.idle_time,
        if base_idle > 0.0 {
            (out.idle_time / base_idle - 1.0) * 100.0
        } else {
            0.0
        },
        out.duration,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = quantum_volume(4, 3, 2023);
    let hw = spin_qubit_model(GateTimes::D0);
    println!(
        "quantum volume circuit: {} qubits, {} gates ({} two-qubit), depth {}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.two_qubit_gate_count(),
        circuit.depth()
    );

    let baseline = direct_translation(&circuit);
    let base = simulate_noisy(&baseline, &hw).expect("native");
    println!(
        "baseline            hellinger {:.4}            idle {:>7.0} ns            duration {:>7.0} ns",
        base.hellinger_fidelity, base.idle_time, base.duration
    );

    let kak_cz = kak_adaptation(&circuit, &hw, KakBasis::Cz)?;
    report(
        "kak(cz)",
        &kak_cz,
        &hw,
        base.hellinger_fidelity,
        base.idle_time,
    );
    let kak_db = kak_adaptation(&circuit, &hw, KakBasis::CzDiabatic)?;
    report(
        "kak(cz_db)",
        &kak_db,
        &hw,
        base.hellinger_fidelity,
        base.idle_time,
    );
    let tmp_f = template_optimization(&circuit, &hw, TemplateObjective::Fidelity)?;
    report(
        "template(F)",
        &tmp_f,
        &hw,
        base.hellinger_fidelity,
        base.idle_time,
    );
    let tmp_r = template_optimization(&circuit, &hw, TemplateObjective::IdleTime)?;
    report(
        "template(R)",
        &tmp_r,
        &hw,
        base.hellinger_fidelity,
        base.idle_time,
    );
    for obj in [
        Objective::Fidelity,
        Objective::IdleTime,
        Objective::Combined,
    ] {
        let r = adapt(&circuit, &hw, &AdaptContext::with_objective(obj))?;
        report(
            &format!("{obj}"),
            &r.circuit,
            &hw,
            base.hellinger_fidelity,
            base.idle_time,
        );
    }
    Ok(())
}
