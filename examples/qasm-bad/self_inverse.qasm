// lint-expect: QCA0104
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
h q[0];
h q[0];
measure q[0] -> c[0];
