//! Sweep the coherence time T2 and watch the combined objective (SAT P)
//! change its substitution choices: with short coherence, idling dominates
//! and the solver picks fast-but-noisy realizations (swap_d, diabatic CZ);
//! with long coherence, gate fidelity dominates and it converges to the
//! fidelity objective's choices (swap_c).
//!
//! Run with `cargo run --release --example coherence_sweep`.

use qca::adapt::{adapt, AdaptContext, Objective};
use qca::circuit::{Circuit, Gate};
use qca::hw::{spin_qubit_model, CircuitSchedule, GateTimes, HardwareModel};

/// Rebuilds the spin model with a custom T2 (T1 = 1000*T2 as in the paper).
fn spin_with_t2(t2: f64) -> HardwareModel {
    let base = spin_qubit_model(GateTimes::D0);
    let table = base
        .cost_classes()
        .map(|(class, cost)| (*class, *cost))
        .collect();
    HardwareModel::new(format!("spin-T2-{t2}"), table, 1000.0 * t2, t2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A circuit whose swap pattern keeps another qubit idle.
    let mut c = Circuit::new(3);
    c.push(Gate::H, &[2]);
    c.push(Gate::Cx, &[0, 1]);
    c.push(Gate::Cx, &[1, 0]);
    c.push(Gate::Cx, &[0, 1]);
    c.push(Gate::Cx, &[1, 2]);

    println!("SAT P substitution choices as a function of coherence time T2:");
    println!(
        "{:>10} {:>12} {:>12} {:>30}",
        "T2 [ns]", "fidelity", "idle [ns]", "chosen substitutions"
    );
    for t2 in [500.0, 1000.0, 2900.0, 10_000.0, 100_000.0, 1_000_000.0] {
        let hw = spin_with_t2(t2);
        let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Combined))?;
        let fid = hw.circuit_fidelity(&r.circuit).expect("native");
        let idle = CircuitSchedule::asap(&r.circuit, &hw)
            .expect("native")
            .total_idle_time();
        let chosen: Vec<String> = r.chosen.iter().map(|s| s.kind.to_string()).collect();
        println!(
            "{t2:>10.0} {fid:>12.5} {idle:>12.0} {:>30}",
            if chosen.is_empty() {
                "(reference)".to_string()
            } else {
                chosen.join(", ")
            }
        );
    }
    println!();
    println!("short T2 -> idling is deadly -> fast swap_d wins;");
    println!("long  T2 -> gate errors dominate -> high-fidelity swap_c wins.");
    Ok(())
}
