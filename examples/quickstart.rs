//! Quickstart: adapt a small circuit to the spin-qubit gate set and compare
//! the three SMT objectives against the direct-translation baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use qca::adapt::{adapt, AdaptContext, Objective};
use qca::baselines::direct_translation;
use qca::circuit::{Circuit, Gate};
use qca::hw::{spin_qubit_model, CircuitSchedule, GateTimes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-qubit circuit in the IBM basis: an entangler, a swap pattern and
    // a final interaction — plenty of substitution opportunities.
    let mut circuit = Circuit::new(3);
    circuit.push(Gate::H, &[0]);
    circuit.push(Gate::Cx, &[0, 1]);
    circuit.push(Gate::Cx, &[1, 0]);
    circuit.push(Gate::Cx, &[0, 1]);
    circuit.push(Gate::Rz(0.4), &[1]);
    circuit.push(Gate::Cx, &[1, 2]);
    circuit.push(Gate::Cx, &[2, 1]);

    let hw = spin_qubit_model(GateTimes::D0);
    let reference = direct_translation(&circuit);
    let ref_fid = hw.circuit_fidelity(&reference).expect("native");
    let ref_sched = CircuitSchedule::asap(&reference, &hw).expect("native");

    println!(
        "source circuit: {} gates, depth {}",
        circuit.len(),
        circuit.depth()
    );
    println!(
        "baseline (direct translation): fidelity {:.5}, duration {:.0} ns, idle {:.0} ns",
        ref_fid,
        ref_sched.total_duration,
        ref_sched.total_idle_time()
    );
    println!();

    for objective in [
        Objective::Fidelity,
        Objective::IdleTime,
        Objective::Combined,
    ] {
        let result = adapt(&circuit, &hw, &AdaptContext::with_objective(objective))?;
        let fid = hw.circuit_fidelity(&result.circuit).expect("native");
        let sched = CircuitSchedule::asap(&result.circuit, &hw).expect("native");
        println!(
            "{objective}: fidelity {:.5} ({:+.2}%), duration {:.0} ns, idle {:.0} ns ({:+.1}%)",
            fid,
            (fid / ref_fid - 1.0) * 100.0,
            sched.total_duration,
            sched.total_idle_time(),
            if ref_sched.total_idle_time() > 0.0 {
                (sched.total_idle_time() / ref_sched.total_idle_time() - 1.0) * 100.0
            } else {
                0.0
            },
        );
        let chosen: Vec<String> = result
            .chosen
            .iter()
            .map(|s| format!("{} on block {}", s.kind, s.block))
            .collect();
        println!(
            "  chose {} of {} substitutions: [{}]",
            result.chosen.len(),
            result.catalog_size,
            chosen.join(", ")
        );
    }
    Ok(())
}
