//! End-to-end OpenQASM pipeline: parse an IBM-basis QASM program, adapt it
//! to the spin-qubit gate set, and emit the adapted program as QASM again.
//!
//! Run with `cargo run --release --example qasm_pipeline`.

use qca::adapt::{adapt, AdaptContext, Objective};
use qca::circuit::qasm::{parse_qasm, to_qasm};
use qca::hw::{spin_qubit_model, GateTimes};

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[0];
cx q[0],q[1];
rz(pi/4) q[1];
cx q[1],q[2];
u3(0.3,0.1,-0.2) q[2];
cx q[1],q[2];
measure q -> c;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_qasm(PROGRAM)?;
    println!(
        "parsed {} gates on {} qubits",
        circuit.len(),
        circuit.num_qubits()
    );

    let hw = spin_qubit_model(GateTimes::D0);
    let result = adapt(
        &circuit,
        &hw,
        &AdaptContext::with_objective(Objective::Combined),
    )?;

    println!(
        "adapted: {} gates, fidelity {:.5} (reference {:.5})",
        result.circuit.len(),
        hw.circuit_fidelity(&result.circuit).expect("native"),
        hw.circuit_fidelity(&result.reference).expect("native"),
    );
    println!("\n== adapted program ==\n{}", to_qasm(&result.circuit));
    Ok(())
}
