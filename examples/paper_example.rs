//! The worked example of §IV of the paper (Fig. 4 / Eq. 11): adapting a
//! 3-qubit IBM-basis circuit to the spin-qubit modality, showing the block
//! partition, the evaluated substitutions with their duration deltas, and
//! the selections made by each objective.
//!
//! Run with `cargo run --release --example paper_example`.

use qca::adapt::model::solve_model;
use qca::adapt::preprocess::preprocess;
use qca::adapt::rules::{evaluate_substitutions, RuleOptions};
use qca::adapt::{extract_circuit, AdaptContext, Objective};
use qca::circuit::{Circuit, Gate};
use qca::hw::{spin_qubit_model, CircuitSchedule, GateTimes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A circuit in the spirit of Fig. 4: three blocks on pairs (0,1), (1,2)
    // and (0,1), with swap patterns and CNOTs.
    let mut circuit = Circuit::new(3);
    circuit.push(Gate::H, &[0]);
    circuit.push(Gate::Cx, &[0, 1]);
    circuit.push(Gate::Cx, &[1, 0]);
    circuit.push(Gate::Cx, &[0, 1]);
    circuit.push(Gate::Cx, &[1, 2]);
    circuit.push(Gate::Cx, &[2, 1]);
    circuit.push(Gate::Cx, &[1, 2]);
    circuit.push(Gate::Rz(0.3), &[1]);
    circuit.push(Gate::Cx, &[0, 1]);

    let hw = spin_qubit_model(GateTimes::D0);
    let pre = preprocess(&circuit, &hw)?;

    println!("== preprocessing (paper §IV-A) ==");
    for block in &pre.partition.blocks {
        println!(
            "block {} on qubits {:?}: {} gates, reference duration {:.0} ns, reference fidelity {:.5}",
            block.id,
            block.qubits,
            block.ops.len(),
            pre.cost[block.id].duration,
            pre.cost[block.id].log_fidelity.exp(),
        );
    }
    println!("dependency edges: {:?}", pre.partition.edges);
    println!();

    println!("== substitution evaluation (paper §IV-B) ==");
    let catalog = evaluate_substitutions(&pre, &hw, &RuleOptions::default())?;
    for s in &catalog {
        println!(
            "s{} = {} on block {}: replaces ops {:?}, duration {:+.0} ns, log-fidelity {:+.5}",
            s.id, s.kind, s.block, s.ops, s.delta_duration, s.delta_log_fidelity
        );
    }
    println!();

    println!("== Eq. 11-style block duration terms ==");
    for block in &pre.partition.blocks {
        let mut terms = vec![format!("{:.0}", pre.cost[block.id].duration)];
        for s in catalog.iter().filter(|s| s.block == block.id) {
            terms.push(format!("({:+.0} ∧ c{})", s.delta_duration, s.id));
        }
        println!("d_{} = {}", block.id, terms.join(" + "));
    }
    println!();

    println!("== SMT solving (paper §IV-C) ==");
    for objective in [
        Objective::Fidelity,
        Objective::IdleTime,
        Objective::Combined,
    ] {
        let solved = solve_model(
            &pre,
            &hw,
            &catalog,
            &AdaptContext::with_objective(objective),
        )?;
        let adapted = extract_circuit(&pre, &catalog, &solved.chosen);
        let sched = CircuitSchedule::asap(&adapted, &hw).expect("native");
        let chosen: Vec<String> = solved
            .chosen
            .iter()
            .map(|&i| format!("c{}={}", i, catalog[i].kind))
            .collect();
        println!(
            "{objective}: chose [{}] -> fidelity {:.5}, duration {:.0} ns, idle {:.0} ns ({} SAT queries, {} vars)",
            chosen.join(", "),
            hw.circuit_fidelity(&adapted).expect("native"),
            sched.total_duration,
            sched.total_idle_time(),
            solved.queries,
            solved.sat_vars,
        );
    }
    Ok(())
}
