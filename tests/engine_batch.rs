//! Workspace-level integration test of the batch-adaptation engine:
//! parallel batches are bit-identical to sequential ones on workload
//! circuits, resubmission is answered from the cache, and every report is a
//! valid native adaptation of its input.

use qca::adapt::Objective;
use qca::engine::{AdaptJob, AdaptStatus, Engine, EngineConfig};
use qca::hw::{spin_qubit_model, GateTimes};
use qca::num::phase::approx_eq_up_to_phase;
use qca::workloads::{quantum_volume, random_template_circuit, TemplateGate};

fn workload() -> Vec<AdaptJob> {
    let mut jobs: Vec<AdaptJob> = (0..4)
        .map(|i| {
            let c = random_template_circuit(
                3,
                12,
                40 + i,
                &[TemplateGate::Cx, TemplateGate::Swap],
                true,
            );
            AdaptJob::with_objective(c, Objective::Fidelity)
        })
        .collect();
    jobs.push(AdaptJob::with_objective(
        quantum_volume(3, 2, 7),
        Objective::Combined,
    ));
    jobs
}

#[test]
fn parallel_batch_matches_sequential_and_preserves_unitaries() {
    let hw = spin_qubit_model(GateTimes::D0);
    let jobs = workload();
    let seq = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    })
    .adapt_batch(&hw, &jobs);
    let par = Engine::new(EngineConfig {
        workers: 8,
        ..EngineConfig::default()
    })
    .adapt_batch(&hw, &jobs);

    assert_eq!(seq.len(), jobs.len());
    for ((job, a), b) in jobs.iter().zip(&seq).zip(&par) {
        assert_eq!(a.circuit, b.circuit, "worker count changed job {}", a.job);
        assert_eq!(a.objective_value, b.objective_value);
        assert_eq!(a.status, b.status);
        assert_ne!(a.status, AdaptStatus::Fallback);
        assert!(hw.supports_circuit(&a.circuit));
        assert!(
            approx_eq_up_to_phase(&a.circuit.unitary(), &job.circuit.unitary(), 1e-6),
            "job {} changed the unitary",
            a.job
        );
    }
}

#[test]
fn resubmission_is_served_from_cache_with_identical_results() {
    let hw = spin_qubit_model(GateTimes::D0);
    let jobs = workload();
    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let first = engine.adapt_batch(&hw, &jobs);
    let second = engine.adapt_batch(&hw, &jobs);
    assert!(first.iter().all(|r| !r.cache_hit));
    assert!(second.iter().all(|r| r.cache_hit));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.objective_value, b.objective_value);
        assert_eq!(a.status, b.status);
    }
    let metrics = engine.metrics();
    assert!((metrics.cache_hit_rate() - 0.5).abs() < 1e-9);
    assert!(metrics.to_json().contains("\"cache_hits\""));
}
