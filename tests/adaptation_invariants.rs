//! Integration-level invariants of the adaptation pipeline, checked on a
//! randomized family of circuits: soundness (unitary preservation,
//! nativeness), dominance over baselines, selection consistency, and
//! behaviour of the optimized-KAK extension.

use qca::adapt::{adapt, AdaptContext, AdaptOptions, Objective, RuleOptions};
use qca::baselines::{direct_translation, template_optimization, TemplateObjective};
use qca::circuit::Circuit;
use qca::hw::{spin_qubit_model, GateTimes};
use qca::num::phase::approx_eq_up_to_phase;
use qca::workloads::{random_template_circuit, DEFAULT_TEMPLATE_GATES};

fn circuits() -> Vec<Circuit> {
    (0..4)
        .map(|seed| random_template_circuit(3, 14, 100 + seed, &DEFAULT_TEMPLATE_GATES, true))
        .collect()
}

#[test]
fn chosen_substitutions_never_conflict() {
    let hw = spin_qubit_model(GateTimes::D0);
    for c in circuits() {
        for obj in [
            Objective::Fidelity,
            Objective::IdleTime,
            Objective::Combined,
        ] {
            let r = adapt(&c, &hw, &AdaptContext::with_objective(obj)).unwrap();
            for (i, a) in r.chosen.iter().enumerate() {
                for b in &r.chosen[i + 1..] {
                    assert!(!a.conflicts_with(b), "{obj}: conflicting selection");
                }
            }
        }
    }
}

#[test]
fn optimized_kak_variant_is_sound_and_never_worse_on_fidelity() {
    let hw = spin_qubit_model(GateTimes::D0);
    for c in circuits() {
        let generic = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        let ctx = AdaptOptions::builder()
            .objective(Objective::Fidelity)
            .rules(RuleOptions {
                optimized_kak: true,
                ..RuleOptions::default()
            })
            .context();
        let optimized = adapt(&c, &hw, &ctx).unwrap();
        assert!(approx_eq_up_to_phase(
            &optimized.circuit.unitary(),
            &c.unitary(),
            1e-6
        ));
        assert!(hw.supports_circuit(&optimized.circuit));
        let fg = hw.circuit_fidelity(&generic.circuit).unwrap();
        let fo = hw.circuit_fidelity(&optimized.circuit).unwrap();
        assert!(
            fo >= fg - 1e-9,
            "optimized KAK made fidelity worse: {fo} < {fg}"
        );
    }
}

#[test]
fn exact_search_agrees_with_budgeted_on_fidelity_objective() {
    // SAT F has no scheduling component: budgeted and exact searches must
    // find the same optimum (the fidelity model is identical).
    let hw = spin_qubit_model(GateTimes::D0);
    for c in circuits() {
        let budgeted = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        let exact = adapt(
            &c,
            &hw,
            &AdaptOptions::builder()
                .objective(Objective::Fidelity)
                .exact()
                .context(),
        )
        .unwrap();
        assert!(exact.solver.optimal);
        let fb = hw.circuit_fidelity(&budgeted.circuit).unwrap();
        let fe = hw.circuit_fidelity(&exact.circuit).unwrap();
        assert!(
            (fb - fe).abs() < 1e-9,
            "budgeted {fb} vs exact {fe} fidelity mismatch"
        );
    }
}

#[test]
fn sat_never_below_template_on_matching_objective() {
    let hw = spin_qubit_model(GateTimes::D1);
    for c in circuits() {
        let sat = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        let tmpl = template_optimization(&c, &hw, TemplateObjective::Fidelity).unwrap();
        let fs = hw.circuit_fidelity(&sat.circuit).unwrap();
        let ft = hw.circuit_fidelity(&tmpl).unwrap();
        assert!(fs >= ft - 1e-9, "SAT F {fs} below template {ft}");
        let fb = hw.circuit_fidelity(&direct_translation(&c)).unwrap();
        assert!(fs >= fb - 1e-9, "SAT F {fs} below baseline {fb}");
    }
}

#[test]
fn reference_close_to_direct_translation_cost() {
    // The pipeline's internal reference adaptation is per-block; the public
    // baseline additionally consolidates single-qubit gates across block
    // boundaries. The baseline can therefore only be equal or slightly
    // better, never worse, and the gap is a handful of SU(2) gates.
    let hw = spin_qubit_model(GateTimes::D0);
    for c in circuits() {
        let r = adapt(&c, &hw, &AdaptContext::default()).unwrap();
        let f_ref = hw.circuit_fidelity(&r.reference).unwrap();
        let f_dir = hw.circuit_fidelity(&direct_translation(&c)).unwrap();
        assert!(
            f_ref <= f_dir + 1e-9,
            "reference {f_ref} beat direct {f_dir}?"
        );
        assert!(
            f_ref >= f_dir * 0.999f64.powi(16),
            "reference {f_ref} too far below direct {f_dir}"
        );
    }
}
