//! Integration tests for QASM interchange and workload generators feeding
//! the adaptation pipeline.

use qca::adapt::{adapt, AdaptContext, Objective};
use qca::circuit::qasm::{parse_qasm, to_qasm};
use qca::hw::{spin_qubit_model, GateTimes};
use qca::num::phase::approx_eq_up_to_phase;
use qca::workloads::quantum_volume;

#[test]
fn adapted_circuit_survives_qasm_round_trip() {
    let hw = spin_qubit_model(GateTimes::D0);
    let c = quantum_volume(3, 1, 4);
    let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
    let text = to_qasm(&r.circuit);
    let parsed = parse_qasm(&text).unwrap();
    assert!(approx_eq_up_to_phase(
        &parsed.unitary(),
        &r.circuit.unitary(),
        1e-7
    ));
    assert!(hw.supports_circuit(&parsed));
}

#[test]
fn qv_source_is_adaptable_and_equivalent() {
    let hw = spin_qubit_model(GateTimes::D1);
    let c = quantum_volume(4, 2, 17);
    let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Combined)).unwrap();
    assert!(approx_eq_up_to_phase(
        &r.circuit.unitary(),
        &c.unitary(),
        1e-5
    ));
}

#[test]
fn external_qasm_program_end_to_end() {
    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
swap q[1],q[2];
cp(pi/2) q[2],q[3];
barrier q;
cx q[2],q[3];
measure q -> c;
"#;
    let c = parse_qasm(src).unwrap();
    assert_eq!(c.num_qubits(), 4);
    let hw = spin_qubit_model(GateTimes::D0);
    let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
    assert!(hw.supports_circuit(&r.circuit));
    assert!(approx_eq_up_to_phase(
        &r.circuit.unitary(),
        &c.unitary(),
        1e-6
    ));
}
