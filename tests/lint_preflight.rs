//! Integration tests for the qca-lint static diagnostics and the engine
//! preflight: acceptance soundness (a preflight-accepted circuit never dies
//! on a static-shape error inside `adapt`), rejection before encoding (no
//! `smt.encode` span for a statically infeasible job), and the `lint.*`
//! metrics surface.

use proptest::prelude::*;
use qca::adapt::{adapt, preflight, AdaptContext, AdaptError, Objective, RuleOptions};
use qca::circuit::{Circuit, Gate};
use qca::engine::{AdaptJob, AdaptStatus, Engine, EngineConfig};
use qca::hw::{ibm_source_model, spin_qubit_model, GateTimes};
use qca::trace::{report::Report, Tracer};
use qca::workloads::{random_template_circuit, DEFAULT_TEMPLATE_GATES};

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Preflight acceptance is sound: any circuit the static analysis lets
    /// through must never fail adaptation with a static-shape error
    /// (`UnsupportedGate` is exactly the condition QCA0301 proves).
    #[test]
    fn preflight_accepted_circuits_never_hit_static_shape_errors(
        qubits in 2usize..4,
        depth in 4usize..16,
        seed in 0u64..1000,
    ) {
        let hw = spin_qubit_model(GateTimes::D0);
        let circuit = random_template_circuit(
            qubits, depth, seed, &DEFAULT_TEMPLATE_GATES, true,
        );
        let rules = RuleOptions::default();
        if preflight(&circuit, &hw, &rules).is_ok() {
            let outcome = adapt(
                &circuit,
                &hw,
                &AdaptContext::with_objective(Objective::Fidelity),
            );
            prop_assert!(
                !matches!(outcome, Err(AdaptError::UnsupportedGate(_))),
                "preflight accepted a circuit that adapt rejected statically",
            );
        }
    }
}

#[test]
fn infeasible_job_is_rejected_before_any_encoding() {
    // The IBM source model prices CX but no CZ-family gate, so the
    // reference translation of any two-qubit block is unpriced: QCA0301
    // proves infeasibility statically and the solver must never start.
    let hw = ibm_source_model();
    let mut c = Circuit::new(2);
    c.push(Gate::H, &[0]);
    c.push(Gate::Cx, &[0, 1]);

    let (tracer, sink) = Tracer::to_memory();
    let engine = Engine::new(
        EngineConfig::builder()
            .workers(1)
            .lint(true)
            .tracer(tracer)
            .build(),
    );
    let reports = engine.adapt_batch(&hw, &[AdaptJob::new(c)]);
    assert_eq!(reports[0].status, AdaptStatus::Fallback);
    assert!(matches!(reports[0].error, Some(AdaptError::Rejected(_))));

    let report = Report::from_events(&sink.take());
    assert_eq!(report.phase_count("engine.preflight"), 1);
    assert_eq!(
        report.phase_count("smt.encode"),
        0,
        "a preflight-rejected job must not reach the encoder"
    );
}

#[test]
fn metrics_json_exposes_lint_counters() {
    let hw = spin_qubit_model(GateTimes::D0);
    let jobs: Vec<AdaptJob> = (0..3)
        .map(|seed| {
            AdaptJob::new(random_template_circuit(
                3,
                10,
                400 + seed,
                &DEFAULT_TEMPLATE_GATES,
                true,
            ))
        })
        .collect();
    let engine = Engine::new(EngineConfig::builder().workers(2).lint(true).build());
    let reports = engine.adapt_batch(&hw, &jobs);
    assert_eq!(reports.len(), 3);

    let json = engine.metrics().to_json();
    assert!(json.contains("\"lint_errors\": 0"), "{json}");
    assert!(json.contains("\"lint_warnings\":"), "{json}");
    assert!(json.contains("\"lint_rejections\": 0"), "{json}");
    // Diagnostics ride on the reports themselves; none may carry an error
    // because every job completed.
    for report in &reports {
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.severity != qca::lint::Severity::Error));
    }
}
