//! Integration tests for the tracing pipeline: every adaptation emits a
//! well-formed span forest, the JSONL sink round-trips it, and the span
//! tree accounts for essentially all of the adaptation's wall time.

use proptest::prelude::*;
use qca::adapt::{adapt, AdaptContext, AdaptOptions, Objective};
use qca::hw::{spin_qubit_model, GateTimes};
use qca::trace::{jsonl, report, JsonlSink, Tracer};
use qca::workloads::{random_template_circuit, DEFAULT_TEMPLATE_GATES};
use std::sync::Arc;

/// The phases every successful adaptation must pass through, in pipeline
/// order. `omt.search` owns the probe timeline; `warm_start` seeds it.
const PHASES: [&str; 7] = [
    "adapt",
    "preprocess",
    "rules",
    "smt.encode",
    "warm_start",
    "omt.search",
    "extract",
];

#[test]
fn jsonl_trace_has_one_span_per_pipeline_phase() {
    let path =
        std::env::temp_dir().join(format!("qca-trace-pipeline-{}.jsonl", std::process::id()));
    let circuit = random_template_circuit(3, 14, 42, &DEFAULT_TEMPLATE_GATES, true);
    let hw = spin_qubit_model(GateTimes::D0);

    let tracer = Tracer::new(Arc::new(JsonlSink::create(&path).unwrap()));
    let ctx = AdaptOptions::builder()
        .objective(Objective::Combined)
        .tracer(tracer)
        .build();
    adapt(&circuit, &hw, &ctx).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let events = jsonl::parse_jsonl(&text).expect("written trace parses back");
    report::validate_forest(&events).expect("well-formed forest");

    let rpt = report::Report::from_events(&events);
    for phase in PHASES {
        let count = count_spans(&rpt.roots, phase);
        assert_eq!(count, 1, "expected exactly one `{phase}` span, got {count}");
    }
    // The root is the adapt span itself and it reports success.
    assert_eq!(rpt.roots.len(), 1);
    assert_eq!(rpt.roots[0].name, "adapt");
    assert_eq!(rpt.roots[0].note.as_deref(), Some("ok"));
}

#[test]
fn trace_covers_nearly_all_adaptation_wall_time() {
    let circuit = random_template_circuit(4, 16, 7, &DEFAULT_TEMPLATE_GATES, true);
    let hw = spin_qubit_model(GateTimes::D0);

    let (tracer, sink) = Tracer::to_memory();
    let mut ctx = AdaptContext::with_objective(Objective::Fidelity);
    ctx.tracer = tracer;
    adapt(&circuit, &hw, &ctx).unwrap();

    let events = sink.take();
    report::validate_forest(&events).expect("well-formed forest");
    let rpt = report::Report::from_events(&events);
    let root = &rpt.roots[0];
    assert_eq!(root.name, "adapt");
    let covered: u64 = root.children.iter().map(|c| c.total_ns()).sum();
    let total = root.total_ns().max(1);
    let coverage = covered as f64 / total as f64;
    assert!(
        coverage >= 0.95,
        "phase spans cover only {:.1}% of the adapt span ({covered} of {total} ns)",
        coverage * 100.0
    );
}

fn count_spans(nodes: &[report::SpanNode], name: &str) -> usize {
    nodes
        .iter()
        .map(|n| usize::from(n.name == name) + count_spans(&n.children, name))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Whatever the circuit and objective, the emitted trace is a
    /// well-formed forest (balanced enter/exit, correct parenting) and its
    /// root records the adaptation outcome.
    #[test]
    fn every_trace_is_a_well_formed_forest(
        qubits in 2usize..4,
        depth in 4usize..18,
        seed in 0u64..1000,
        objective in prop_oneof![
            Just(Objective::Fidelity),
            Just(Objective::IdleTime),
            Just(Objective::Combined),
        ],
    ) {
        let circuit = random_template_circuit(
            qubits, depth, seed, &DEFAULT_TEMPLATE_GATES, true,
        );
        let hw = spin_qubit_model(GateTimes::D0);
        let (tracer, sink) = Tracer::to_memory();
        let mut ctx = AdaptContext::with_objective(objective);
        ctx.tracer = tracer;
        let result = adapt(&circuit, &hw, &ctx);
        prop_assert!(result.is_ok());

        let events = sink.take();
        prop_assert!(report::validate_forest(&events).is_ok());
        let rpt = report::Report::from_events(&events);
        prop_assert_eq!(rpt.roots.len(), 1);
        prop_assert_eq!(&rpt.roots[0].name, "adapt");
        prop_assert_eq!(rpt.roots[0].note.as_deref(), Some("ok"));
        // Exit stamps never precede enter stamps anywhere in the tree.
        fn monotone(n: &report::SpanNode) -> bool {
            n.t_exit >= n.t_enter && n.children.iter().all(monotone)
        }
        prop_assert!(monotone(&rpt.roots[0]));
    }
}
