//! Integration tests of the solver stack: SAT → SMT → OMT consistency on
//! problems resembling the adaptation models.

use qca::sat::{encode, Solver};
use qca::smt::diff::DiffGraph;
use qca::smt::{omt, SmtSolver};

#[test]
fn sat_and_smt_agree_on_selection_problems() {
    // Substitution-selection shape: weighted choices with conflicts; compare
    // OMT result against exhaustive enumeration.
    let weights: [i64; 6] = [5, -3, 7, 2, -1, 4];
    let conflicts = [(0usize, 2usize), (2, 5), (1, 3)];

    let mut smt = SmtSolver::new();
    let xs: Vec<_> = (0..6).map(|_| smt.new_bool()).collect();
    for &(a, b) in &conflicts {
        smt.add_clause(&[!xs[a], !xs[b]]);
    }
    let terms: Vec<_> = weights.iter().zip(&xs).map(|(&w, &x)| (w, x)).collect();
    let obj = smt.pb_sum(0, &terms);
    let best = omt::maximize(&mut smt, &obj, omt::Strategy::BinarySearch).unwrap();

    let mut expect = i64::MIN;
    'outer: for bits in 0u32..64 {
        for &(a, b) in &conflicts {
            if (bits >> a) & 1 == 1 && (bits >> b) & 1 == 1 {
                continue 'outer;
            }
        }
        let v: i64 = (0..6)
            .map(|k| if (bits >> k) & 1 == 1 { weights[k] } else { 0 })
            .sum();
        expect = expect.max(v);
    }
    assert_eq!(best.value, expect);
}

#[test]
fn smt_schedule_matches_difference_logic() {
    // A diamond dependency graph with fixed durations: the SMT encoding's
    // minimal makespan must equal the closed-form longest path.
    let edges = [(0usize, 1usize, 10i64), (0, 2, 25), (1, 3, 12), (2, 3, 5)];
    let mut g = DiffGraph::new(4);
    for &(a, b, w) in &edges {
        g.add_constraint(a, b, w);
    }
    let sched = g.asap_schedule().unwrap();
    let expect = DiffGraph::makespan(&sched);

    let cap = 200i64;
    let mut smt = SmtSolver::new();
    let xs: Vec<_> = (0..4).map(|_| smt.new_int(0, cap)).collect();
    for &(a, b, w) in &edges {
        let wexpr = smt.int_const(w);
        let lhs = smt.add(&xs[a], &wexpr);
        smt.assert_ge(&xs[b], &lhs);
    }
    let mk = smt.new_int(0, cap);
    for x in &xs {
        smt.assert_ge(&mk, x);
    }
    let capx = smt.int_const(cap);
    let slack = smt.new_int(0, cap);
    let tot = smt.add(&slack, &mk);
    smt.assert_eq(&tot, &capx);
    let best = omt::maximize(&mut smt, &slack, omt::Strategy::BinarySearch).unwrap();
    assert_eq!(cap - best.value, expect);
}

#[test]
fn cardinality_encodings_compose_with_assumptions() {
    let mut s = Solver::new();
    let xs: Vec<_> = (0..8).map(|_| s.new_var().positive()).collect();
    encode::at_most_k(&mut s, &xs, 3);
    s.add_clause(&xs); // at least one
    assert!(s.solve());
    // Force 3 specific ones: fine.
    assert!(s.solve_with_assumptions(&[xs[0], xs[3], xs[7]]));
    // Force 4: unsat, and the core only mentions assumed literals.
    assert!(!s.solve_with_assumptions(&[xs[0], xs[511 % 8], xs[3], xs[5], xs[7]]));
    for l in s.unsat_core() {
        assert!(xs.contains(l));
    }
}

#[test]
fn unsat_core_shrinks_to_conflicting_subset() {
    let mut s = Solver::new();
    let a = s.new_var().positive();
    let b = s.new_var().positive();
    let c = s.new_var().positive();
    let d = s.new_var().positive();
    s.add_clause(&[!a, !b]);
    assert!(!s.solve_with_assumptions(&[c, d, a, b]));
    let core = s.unsat_core().to_vec();
    // The core must be unsat on its own and should not require c or d.
    assert!(!s.solve_with_assumptions(&core));
    assert!(core.contains(&a) && core.contains(&b));
}

#[test]
fn incremental_smt_reuse_across_objectives() {
    // One solver, several maximizations with added constraints in between —
    // mirrors how OMT probes accumulate bound clauses.
    let mut smt = SmtSolver::new();
    let x = smt.new_bool();
    let y = smt.new_bool();
    let obj = smt.pb_sum(0, &[(10, x), (6, y)]);
    let b1 = omt::maximize(&mut smt, &obj, omt::Strategy::LinearSearch).unwrap();
    assert_eq!(b1.value, 16);
    smt.add_clause(&[!x, !y]);
    let b2 = omt::maximize(&mut smt, &obj, omt::Strategy::LinearSearch).unwrap();
    assert_eq!(b2.value, 10);
    smt.add_clause(&[!x]);
    let b3 = omt::maximize(&mut smt, &obj, omt::Strategy::BinarySearch).unwrap();
    assert_eq!(b3.value, 6);
}
