//! Cross-crate integration tests: the full adaptation pipeline on generated
//! workloads, checked for unitary equivalence, hardware nativeness and
//! baseline dominance.

use qca::adapt::{adapt, AdaptContext, Objective};
use qca::baselines::{direct_translation, kak_adaptation, template_optimization};
use qca::baselines::{KakBasis, TemplateObjective};
use qca::circuit::Circuit;
use qca::hw::{spin_qubit_model, CircuitSchedule, GateTimes};
use qca::num::phase::approx_eq_up_to_phase;
use qca::sim::simulate_noisy;
use qca::workloads::{quantum_volume, random_template_circuit, DEFAULT_TEMPLATE_GATES};

fn check_equivalent(a: &Circuit, b: &Circuit, what: &str) {
    assert!(
        approx_eq_up_to_phase(&a.unitary(), &b.unitary(), 1e-5),
        "{what}: unitary mismatch"
    );
}

#[test]
fn quantum_volume_pipeline_all_methods() {
    let hw = spin_qubit_model(GateTimes::D0);
    let c = quantum_volume(3, 2, 99);
    let baseline = direct_translation(&c);
    check_equivalent(&baseline, &c, "baseline");
    for basis in [KakBasis::Cz, KakBasis::CzDiabatic] {
        let k = kak_adaptation(&c, &hw, basis).unwrap();
        check_equivalent(&k, &c, "kak");
        assert!(hw.supports_circuit(&k));
    }
    for obj in [TemplateObjective::Fidelity, TemplateObjective::IdleTime] {
        let t = template_optimization(&c, &hw, obj).unwrap();
        check_equivalent(&t, &c, "template");
        assert!(hw.supports_circuit(&t));
    }
    for obj in [
        Objective::Fidelity,
        Objective::IdleTime,
        Objective::Combined,
    ] {
        let r = adapt(&c, &hw, &AdaptContext::with_objective(obj)).unwrap();
        check_equivalent(&r.circuit, &c, "smt");
        assert!(hw.supports_circuit(&r.circuit));
    }
}

#[test]
fn random_circuit_pipeline_both_timing_columns() {
    for times in [GateTimes::D0, GateTimes::D1] {
        let hw = spin_qubit_model(times);
        let c = random_template_circuit(3, 20, 7, &DEFAULT_TEMPLATE_GATES, true);
        let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Combined)).unwrap();
        check_equivalent(&r.circuit, &c, "smt");
        assert!(hw.supports_circuit(&r.circuit));
    }
}

#[test]
fn sat_f_dominates_all_baselines_on_fidelity() {
    let hw = spin_qubit_model(GateTimes::D0);
    for seed in [1u64, 2, 3] {
        let c = random_template_circuit(4, 24, seed, &DEFAULT_TEMPLATE_GATES, true);
        let sat = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
        let f_sat = hw.circuit_fidelity(&sat.circuit).unwrap();
        let f_base = hw.circuit_fidelity(&direct_translation(&c)).unwrap();
        let f_tmpl = hw
            .circuit_fidelity(&template_optimization(&c, &hw, TemplateObjective::Fidelity).unwrap())
            .unwrap();
        let f_kak = hw
            .circuit_fidelity(&kak_adaptation(&c, &hw, KakBasis::Cz).unwrap())
            .unwrap();
        assert!(
            f_sat >= f_base - 1e-9,
            "seed {seed}: SAT F {f_sat} < baseline {f_base}"
        );
        assert!(
            f_sat >= f_tmpl - 1e-9,
            "seed {seed}: SAT F {f_sat} < template {f_tmpl}"
        );
        assert!(
            f_sat >= f_kak - 1e-6,
            "seed {seed}: SAT F {f_sat} < kak {f_kak}"
        );
    }
}

#[test]
fn noisy_simulation_ranks_fidelity_objective_sensibly() {
    // Block-level cost modelling is approximate, so a single circuit can
    // land a few percent either way; the ranking claim is about the trend.
    // Average the fidelity delta over several circuits.
    let hw = spin_qubit_model(GateTimes::D0);
    let mut delta_sum = 0.0;
    let seeds = [10u64, 11, 12, 13, 14];
    for &seed in &seeds {
        let c = random_template_circuit(3, 18, seed, &DEFAULT_TEMPLATE_GATES, true);
        let sat_p = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Combined)).unwrap();
        let base = simulate_noisy(&direct_translation(&c), &hw).unwrap();
        let ours = simulate_noisy(&sat_p.circuit, &hw).unwrap();
        delta_sum += ours.hellinger_fidelity - base.hellinger_fidelity;
    }
    let mean_delta = delta_sum / seeds.len() as f64;
    // The combined objective should not be substantially worse than the
    // baseline under the full noise model.
    assert!(
        mean_delta >= -0.02,
        "SAT P mean fidelity delta {mean_delta:.4} much worse than baseline"
    );
}

#[test]
fn idle_objective_reduces_schedule_idle_on_swap_heavy_circuit() {
    let hw = spin_qubit_model(GateTimes::D0);
    let c = random_template_circuit(4, 20, 21, &DEFAULT_TEMPLATE_GATES, true);
    let sat_r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::IdleTime)).unwrap();
    let idle_sat = CircuitSchedule::asap(&sat_r.circuit, &hw)
        .unwrap()
        .total_idle_time();
    let idle_base = CircuitSchedule::asap(&direct_translation(&c), &hw)
        .unwrap()
        .total_idle_time();
    // Block-level modelling is approximate, so allow a small margin; the
    // trend must hold.
    assert!(
        idle_sat <= idle_base * 1.05 + 100.0,
        "SAT R idle {idle_sat} vs baseline {idle_base}"
    );
}

#[test]
fn deep_circuit_smoke() {
    // A deeper 3-qubit circuit to exercise larger SMT models.
    let hw = spin_qubit_model(GateTimes::D1);
    let c = random_template_circuit(3, 60, 5, &DEFAULT_TEMPLATE_GATES, true);
    let r = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity)).unwrap();
    assert!(hw.supports_circuit(&r.circuit));
    check_equivalent(&r.circuit, &c, "deep smt");
}
