//! # qca — SAT-Based Quantum Circuit Adaptation
//!
//! A from-scratch Rust reproduction of *"SAT-Based Quantum Circuit
//! Adaptation"* (Brandhofer, Kim, Niu, Bronn — DATE 2023): adapting quantum
//! circuits from a source gate set (e.g. IBM's CX basis) to the
//! semiconducting spin-qubit gate set (CZ, diabatic CZ, CROT, two swap
//! realizations) by selecting a globally optimal combination of substitution
//! rules with an SMT model.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`num`] | `qca-num` | complex matrices, eigensolvers, Haar sampling |
//! | [`sat`] | `qca-sat` | CDCL SAT solver |
//! | [`portfolio`] | `qca-portfolio` | racing solver portfolios with clause sharing |
//! | [`smt`] | `qca-smt` | SMT/OMT engine (bit-blasting, difference logic) |
//! | [`circuit`] | `qca-circuit` | circuit IR, QASM, block partitioning |
//! | [`synth`] | `qca-synth` | KAK/ZYZ synthesis, equivalence library |
//! | [`hw`] | `qca-hw` | hardware models (Table I), ASAP scheduling |
//! | [`adapt`] | `qca-adapt` | **the paper's SMT adaptation** |
//! | [`baselines`] | `qca-baselines` | direct translation, KAK-only, template opt |
//! | [`sim`] | `qca-sim` | noisy density-matrix simulator, Hellinger fidelity |
//! | [`workloads`] | `qca-workloads` | quantum-volume and random circuits |
//! | [`engine`] | `qca-engine` | parallel batch adaptation, result cache, metrics |
//! | [`trace`] | `qca-trace` | hierarchical span tracing, JSONL sink, reports |
//! | [`lint`] | `qca-lint` | static diagnostics: circuit, hardware, rule-coverage, encoding lints |
//! | [`serve`] | `qca-serve` | HTTP adaptation service: event loop, admission control, deadlines, sharding, live drain |
//! | [`store`] | `qca-store` | persistent cache tier: WAL + snapshots, warm restart, single-flight, shard ring |
//! | [`perf`] | `qca-perf` | benchmark telemetry: measurement harness, `BENCH_<pr>.json`, regression gating |
//!
//! # Examples
//!
//! ```
//! use qca::circuit::{Circuit, Gate};
//! use qca::hw::{spin_qubit_model, GateTimes};
//! use qca::adapt::{adapt, AdaptContext, Objective};
//!
//! // Three alternating CNOTs = a SWAP; the SMT adaptation replaces them
//! // with a native swap realization.
//! let mut c = Circuit::new(2);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::Cx, &[1, 0]);
//! c.push(Gate::Cx, &[0, 1]);
//! let hw = spin_qubit_model(GateTimes::D0);
//! let result = adapt(&c, &hw, &AdaptContext::with_objective(Objective::Fidelity))?;
//! assert!(hw.circuit_fidelity(&result.circuit).unwrap()
//!     >= hw.circuit_fidelity(&result.reference).unwrap());
//! # Ok::<(), qca::adapt::AdaptError>(())
//! ```

#![warn(missing_docs)]

pub use qca_adapt as adapt;
pub use qca_baselines as baselines;
pub use qca_circuit as circuit;
pub use qca_engine as engine;
pub use qca_hw as hw;
pub use qca_lint as lint;
pub use qca_num as num;
pub use qca_perf as perf;
pub use qca_portfolio as portfolio;
pub use qca_sat as sat;
pub use qca_serve as serve;
pub use qca_sim as sim;
pub use qca_smt as smt;
pub use qca_store as store;
pub use qca_synth as synth;
pub use qca_trace as trace;
pub use qca_workloads as workloads;
